# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench reports examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reports:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		$(PYTHON) $$ex > /dev/null || exit 1; \
	done
	@echo "all examples ran clean"

all: test reports bench examples

clean:
	rm -rf .pytest_cache .hypothesis build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
