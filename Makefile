# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench reports examples precommit all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reports:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q

# What a commit must survive locally: the repo-specific linter over the
# files git considers changed (warm cache makes this sub-second), plus
# the linter's own test suite.  Wire it to git via .pre-commit-config.yaml
# or plain `make precommit`.
precommit:
	PYTHONPATH=src $(PYTHON) -m repro check src --changed-only --stats
	PYTHONPATH=src $(PYTHON) -m pytest tests/check -q

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		$(PYTHON) $$ex > /dev/null || exit 1; \
	done
	@echo "all examples ran clean"

all: test reports bench examples

clean:
	rm -rf .pytest_cache .hypothesis build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
