#!/usr/bin/env python
"""One-shot reproduction driver: regenerate every paper artefact inline.

Runs the measured side of each experiment (Tables 1-2, the Figure 2/3
structures, the total-generation bound, the synthesis model, the
replication ablation and the model comparison) on a single field size and
prints the paper-vs-measured reports -- a compact, self-contained version
of what ``pytest benchmarks/ --benchmark-disable`` archives under
``benchmarks/results/``.

Run:  python examples/full_reproduction.py [n]
"""

import sys

import repro
from repro.analysis import (
    compare_models,
    compare_table1,
    compare_table2,
    measured_total,
    render_model_comparison,
    render_table1,
    render_table2,
    render_totals,
)
from repro.core.machine import connected_components_interpreter
from repro.core.trace import figure3_patterns
from repro.hardware import ReadStrategy, ablation, paper_report, synthesize


def main() -> None:
    # tolerate foreign argv (e.g. when executed by the smoke tests)
    n = int(sys.argv[1]) if len(sys.argv) > 1 and sys.argv[1].isdigit() else 8
    graph = repro.random_graph(n, 0.3, seed=n)
    print(f"reproduction run on G({n}, 0.3), seed {n}: {graph.edge_count} edges\n")

    run = connected_components_interpreter(graph)
    oracle = repro.canonical_labels(graph)
    assert (run.labels == oracle).all(), "labels diverged from oracle!"
    print(f"labels verified against union-find "
          f"({run.component_count} components)\n")

    # --- Tables 1 and 2, totals -----------------------------------------
    print(render_table1(n, compare_table1(n, run.access_log)), "\n")
    print(render_table2(n, compare_table2(n, run.access_log)), "\n")
    print(render_totals([measured_total(n, run.access_log)]), "\n")

    # --- Figure 3 (n = 4 panels, counts only here) -----------------------
    patterns = figure3_patterns(4)
    actives = {label: p.active_count for label, p in patterns.items()}
    print(f"Figure 3 (n = 4) active cells per generation: {actives}\n")

    # --- Section 4 -------------------------------------------------------
    print("Section 4 synthesis:")
    print(f"  paper: {paper_report().summary()}")
    print(f"  model: {synthesize(16).summary()}\n")

    print("replication ablation (measured cycles):")
    for row in ablation(run.access_log, n):
        print(f"  {row.strategy.value:>10}: {row.total_cycles} cycles")
    print()

    # --- model comparison --------------------------------------------------
    print(render_model_comparison(compare_models(graph)))


if __name__ == "__main__":
    main()
