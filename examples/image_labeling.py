#!/usr/bin/env python
"""Connected-component labelling of a binary image with the GCA algorithm.

Connected-component labelling is the classic application behind the
paper's graph-algorithm motivation: foreground pixels of a binary image
form a 4-connectivity graph, and the regions of the image are exactly the
graph's connected components.  This example builds the pixel graph, runs
the GCA algorithm, and prints the labelled image.

Run:  python examples/image_labeling.py
"""

import numpy as np

import repro
from repro.graphs.generators import image_to_graph


IMAGE = np.array(
    [
        [1, 1, 0, 0, 0, 1, 1, 0],
        [1, 0, 0, 1, 0, 0, 1, 0],
        [0, 0, 1, 1, 1, 0, 0, 0],
        [0, 0, 0, 1, 0, 0, 1, 1],
        [1, 0, 0, 0, 0, 0, 1, 0],
        [1, 1, 0, 1, 1, 0, 0, 0],
    ],
    dtype=np.int64,
)


def main() -> None:
    rows, cols = IMAGE.shape
    print("input image (1 = foreground):")
    for r in range(rows):
        print("  " + " ".join("#" if v else "." for v in IMAGE[r]))

    # Pixel graph: one node per pixel, edges between 4-adjacent foreground
    # pixels; background pixels stay isolated nodes.
    graph, node_of_pixel = image_to_graph(IMAGE)
    result = repro.gca_connected_components(graph)

    # Map component representatives to compact region ids (foreground only).
    labels = result.labels
    region_of: dict = {}
    labelled = np.full(IMAGE.shape, -1, dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            if IMAGE[r, c]:
                rep = int(labels[node_of_pixel[r, c]])
                region_of.setdefault(rep, len(region_of))
                labelled[r, c] = region_of[rep]

    print(f"\nfound {len(region_of)} foreground regions:")
    for r in range(rows):
        print(
            "  "
            + " ".join(
                chr(ord("A") + labelled[r, c]) if labelled[r, c] >= 0 else "."
                for c in range(cols)
            )
        )

    # Sanity: pixels in one region are connected, different regions are not.
    a, b = node_of_pixel[0, 0], node_of_pixel[1, 0]
    assert result.same_component(a, b), "vertically adjacent pixels must join"
    c0, c5 = node_of_pixel[0, 0], node_of_pixel[0, 5]
    assert not result.same_component(c0, c5), "separate blobs must not join"
    print("\nadjacency sanity checks passed")


if __name__ == "__main__":
    main()
