#!/usr/bin/env python
"""Reachability, spanning forests and the n-cell design — the extensions.

Three capabilities beyond the paper's core experiment, all on the same
engines:

1. transitive closure by Boolean squaring on a two-handed GCA field
   (Hirschberg's STOC'76 companion problem / the paper's announced
   future work);
2. a spanning forest extracted from the hook choices of the CC run;
3. the n-cell design alternative of Section 3's design decision.

Run:  python examples/reachability.py
"""

import numpy as np

import repro
from repro.core.row_machine import RowGCA, row_total_generations
from repro.core.schedule import total_generations
from repro.extensions import spanning_forest, transitive_closure_gca


def main() -> None:
    # A transport network: two islands of stations.
    edges = [(0, 1), (1, 2), (2, 5), (5, 0),      # island A: 0,1,2,5
             (3, 7), (7, 8), (8, 9)]              # island B: 3,7,8,9
    n = 10
    graph = repro.from_edges(n, edges)
    print(f"network: {n} stations, {graph.edge_count} tracks")

    # --- all-pairs reachability -----------------------------------------
    closure = transitive_closure_gca(graph)
    print(f"\ntransitive closure: {closure.total_generations} generations "
          f"({closure.squarings} squarings)")
    print("can you ride from 0 to 5?", closure.reachable(0, 5))
    print("can you ride from 0 to 9?", closure.reachable(0, 9))
    reachable_from_0 = sorted(np.flatnonzero(closure.closure[0]).tolist())
    print("stations reachable from 0:", reachable_from_0)

    # components fall out of the closure (Hirschberg'76's other direction)
    labels = closure.component_labels()
    assert np.array_equal(labels, repro.canonical_labels(graph))

    # --- a minimal track plan (spanning forest) -------------------------
    forest = spanning_forest(graph)
    print(f"\nspanning forest: {forest.edge_count} tracks suffice "
          f"(of {graph.edge_count}):")
    for it, batch in enumerate(forest.per_iteration_edges):
        if batch:
            print(f"  iteration {it}: {batch}")

    # --- the n-cell design alternative ----------------------------------
    row = RowGCA(graph).run()
    assert np.array_equal(row.labels, labels)
    print(
        f"\ndesign comparison for n = {n}: "
        f"{n * (n + 1)} cells / {total_generations(n)} generations (paper) "
        f"vs {n} cells / {row_total_generations(n)} generations (row design)"
    )
    print(f"row-machine peak congestion: {row.access_log.peak_congestion} "
          "(scans are rotation-balanced)")


if __name__ == "__main__":
    main()
