#!/usr/bin/env python
"""Weighted routing on the field fabric — the numerical application class.

Models a delivery grid: intersections are nodes, road segments carry
integer travel times, and single-source shortest paths are computed by
repeated min-plus matrix-vector products on the same cell field that runs
the connected-components algorithm. BFS levels (or-and semiring) come
from the identical fabric.

Run:  python examples/shortest_paths.py
"""

import numpy as np

from repro.gca.numerical import (
    UNREACHED,
    gca_bfs_levels,
    gca_sssp,
    generations_per_matvec,
)
from repro.graphs.generators import grid_graph
from repro.util.rng import as_generator

ROWS, COLS = 4, 5


def main() -> None:
    n = ROWS * COLS
    grid = grid_graph(ROWS, COLS)
    rng = as_generator(7)
    # random travel times 1..9 on the grid's edges
    weights = grid.matrix.astype(np.int64) * 0
    for u, v in grid.edges():
        w = int(rng.integers(1, 10))
        weights[u, v] = weights[v, u] = w
    # close one road to make the routing non-trivial
    blocked = (1 * COLS + 2, 2 * COLS + 2)
    weights[blocked[0], blocked[1]] = weights[blocked[1], blocked[0]] = 0

    source = 0
    dist, gens = gca_sssp(weights, source)
    hops, _ = gca_bfs_levels(grid, source)

    print(f"{ROWS}x{COLS} street grid, source = intersection {source}")
    print(f"min-plus products cost {generations_per_matvec(n)} generations "
          f"each; this run used {gens} generations total\n")

    print("travel times from the depot (rows = grid):")
    for r in range(ROWS):
        cells = []
        for c in range(COLS):
            d = dist[r * COLS + c]
            cells.append(" ∞ " if d >= UNREACHED else f"{d:3d}")
        print("  " + " ".join(cells))

    print("\nhop distances (BFS levels) for comparison:")
    for r in range(ROWS):
        print("  " + " ".join(f"{hops[r * COLS + c]:3d}" for c in range(COLS)))

    # sanity: shortest travel time can never beat hops * min edge weight
    positive = weights[weights > 0]
    assert all(
        dist[i] >= hops[i] * int(positive.min())
        for i in range(n) if hops[i] > 0
    )
    # and the closed road forces a detour: time distance uses more hops
    far = 3 * COLS + 2
    print(f"\nintersection {far}: {dist[far]} minutes over >= {hops[far]} hops "
          "(one road closed)")
    print("sanity checks passed")


if __name__ == "__main__":
    main()
