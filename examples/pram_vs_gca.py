#!/usr/bin/env python
"""PRAM vs GCA vs sequential: the cost-model comparison of Sections 1/3.

Runs the same graph through (a) the GCA field algorithm, (b) the Listing-1
program on the access-checked PRAM simulator, and (c) the sequential
baseline, and prints the native cost metrics side by side.  Also
demonstrates the model-checking: the program is CROW-clean but violates
EREW.

Run:  python examples/pram_vs_gca.py
"""

import repro
from repro.analysis import compare_models, render_model_comparison
from repro.analysis.complexity import pram_work_optimal_processors
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.pram import AccessMode, ReadConflictError


def main() -> None:
    graph = repro.random_graph(16, 0.2, seed=5)
    print(f"input: {graph}\n")

    # --- cost comparison --------------------------------------------------
    rows = compare_models(graph)
    print(render_model_comparison(rows))
    gca_row = next(r for r in rows if r.model == "gca")
    seq_row = next(r for r in rows if r.model == "sequential")
    print(
        f"\nGCA time {gca_row.time_units} << sequential {seq_row.time_units}, "
        f"but GCA work {gca_row.work} >> sequential {seq_row.work}:\n"
        "work-optimality is the wrong lens for a GCA -- its n^2 cells cost "
        "little more than the n^2 memory any implementation needs (Sec. 3)."
    )

    # --- Brent's theorem ----------------------------------------------------
    p_opt = pram_work_optimal_processors(graph.n)
    few = hirschberg_on_pram(graph, processors=p_opt)
    full = hirschberg_on_pram(graph, processors=graph.n ** 2)
    print(
        f"\nBrent scheduling: p={graph.n ** 2} -> time {full.time}; "
        f"p={p_opt} (work-optimal count) -> time {few.time} "
        f"(same {few.parallel_steps} steps, virtual PEs serialised)"
    )

    # --- access-mode checking ------------------------------------------------
    crow = hirschberg_on_pram(graph, mode=AccessMode.CROW)
    print(
        f"\nCROW run: ok (peak read congestion "
        f"{crow.peak_read_congestion}) -- 'only a CROW PRAM is really needed'"
    )
    try:
        hirschberg_on_pram(graph, mode=AccessMode.EREW)
    except ReadConflictError as exc:
        print(f"EREW run: rejected as expected -> {exc}")


if __name__ == "__main__":
    main()
