#!/usr/bin/env python
"""Explore the FPGA cost model (the Section 4 reproduction).

Prints the model's synthesis estimate next to the paper's published
Cyclone II result, sweeps the field size, and quantifies the
replication-vs-congestion trade-off the paper discusses.

Run:  python examples/hardware_explorer.py
"""

import repro
from repro.core.machine import connected_components_interpreter
from repro.hardware import (
    ReadStrategy,
    ablation,
    largest_feasible_n,
    mux_input_summary,
    paper_report,
    replication_cost,
    synthesize,
)
from repro.util.formatting import render_table


def main() -> None:
    # --- the published data point vs the model --------------------------
    paper = paper_report()
    model = synthesize(paper.n)
    print("Section 4 synthesis result (n = 16):")
    print(f"  paper: {paper.summary()}")
    print(f"  model: {model.summary()}")
    print(f"  device utilisation (EP2C70): {model.device_utilisation:.1%}")

    # --- sweep -----------------------------------------------------------
    rows = []
    for n in (4, 8, 16, 32, 64):
        est = synthesize(n)
        rows.append([n, est.cells, f"{est.logic_elements:,}",
                     f"{est.register_bits:,}", est.fmax_mhz])
    print()
    print(render_table(
        ["n", "cells", "logic elements", "register bits", "fmax MHz"],
        rows, title="Model sweep"))
    print(f"\nlargest n fitting the EP2C70 (model): {largest_feasible_n()}")

    # --- cell structure ----------------------------------------------------
    muxes = mux_input_summary(16)
    print("\nneighbour-mux inputs at n = 16 (derived from the rule set):")
    for kind, inputs in muxes.items():
        print(f"  {kind.value:>8}: {inputs} static sources")

    # --- replication ablation (Section 4 discussion) ----------------------
    n = 8
    g = repro.random_graph(n, 0.4, seed=11)
    run = connected_components_interpreter(g)
    print(f"\nreplication ablation on a measured run (n = {n}):")
    for row in ablation(run.access_log, n):
        print(
            f"  {row.strategy.value:>10}: {row.total_cycles:4d} cycles, "
            f"+{row.extra_register_bits} register bits, "
            f"{row.extended_cells} extended cells"
        )
    cost = replication_cost(n)
    print(
        f"  (replication upgrades {cost.extended_cell_increase} cells "
        f"to extended)"
    )


if __name__ == "__main__":
    main()
