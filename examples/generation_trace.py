#!/usr/bin/env python
"""Replay the GCA algorithm generation by generation (Figure 3 material).

Traces the ``n = 4`` example field: for every generation it shows which
cells are active, which cell each active cell reads (the paper's Figure 3
access patterns), and the D matrix afterwards.

Run:  python examples/generation_trace.py
"""

import repro
from repro.core.trace import TraceRecorder, figure3_patterns


def main() -> None:
    # The Figure 3 schematic patterns (first iteration, n = 4).
    print("access patterns, n = 4 (cell entries = linear index read):")
    for label, pattern in figure3_patterns(4).items():
        print(f"\n[{label}] active cells: {pattern.active_count}")
        print(pattern.render())

    # A full traced run on a concrete graph: two components {0,1,3} / {2}.
    graph = repro.from_edges(4, [(0, 1), (1, 3)])
    recorder = TraceRecorder(graph)
    recorder.run()
    print("\n" + "=" * 60)
    print(f"full trace on edges {graph.edge_list()}:")
    print("=" * 60)
    print(recorder.render())


if __name__ == "__main__":
    main()
