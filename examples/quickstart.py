#!/usr/bin/env python
"""Quickstart: connected components on the Global Cellular Automaton.

Builds a small graph, runs the paper's GCA algorithm through the public
API, and cross-checks the result against the sequential baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.graphs.components import canonical_labels


def main() -> None:
    # A graph with three components: a triangle, a path and an isolated node.
    #   component {0, 1, 2}: triangle
    #   component {3, 4, 5}: path 3-4-5
    #   component {6}:       isolated
    graph = repro.from_edges(
        7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]
    )
    print(f"input: {graph}")

    # One call; method="vectorized" is the fast default.
    result = repro.gca_connected_components(graph)
    print(f"labels:     {result.labels.tolist()}")
    print(f"components: {result.components()}")
    print(f"count:      {result.component_count}")

    # Every node is labelled with the smallest node index of its component
    # (the paper's super-node convention); the sequential oracle agrees.
    oracle = canonical_labels(graph)
    assert np.array_equal(result.labels, oracle), "GCA result != oracle"
    print("matches the union-find oracle: yes")

    # The same computation, cell-accurately interpreted with congestion
    # instrumentation (slow; use for measurement):
    interp = repro.gca_connected_components(graph, method="interpreter")
    assert np.array_equal(interp.labels, oracle)
    log = interp.detail.access_log
    print(
        f"interpreter: {log.total_generations} generations, "
        f"{log.total_reads} global reads, peak congestion {log.peak_congestion}"
    )


if __name__ == "__main__":
    main()
