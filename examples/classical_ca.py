#!/usr/bin/env python
"""The GCA as a generalisation of the classical CA.

The paper introduces the GCA as "an universal extension of the CA model":
fix the pointers to local neighbours and a GCA is an ordinary cellular
automaton.  This example runs Conway's Game of Life and a majority-vote
automaton on the same engine that executes the connected-components
algorithm.

Run:  python examples/classical_ca.py
"""

import numpy as np

from repro.gca import CellularAutomaton, game_of_life_rule, majority_rule


def show(grid: np.ndarray, title: str) -> None:
    print(title)
    for row in grid:
        print("  " + " ".join("#" if v else "." for v in row))


def main() -> None:
    # --- Game of Life: a glider moves one cell diagonally per 4 steps ----
    grid = np.zeros((8, 8), dtype=np.int64)
    for r, c in [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)]:   # glider
        grid[r, c] = 1
    life = CellularAutomaton(8, 8, game_of_life_rule, initial=grid)
    show(life.grid, "Game of Life, t = 0:")
    life.step(4)
    show(life.grid, "t = 4 (glider shifted by (1, 1)):")
    shifted = np.roll(np.roll(grid, 1, axis=0), 1, axis=1)
    assert np.array_equal(life.grid, shifted), "glider did not translate"
    print("glider translation verified\n")

    # --- majority smoothing: noise collapses to consensus patches ---------
    rng = np.random.default_rng(3)
    noisy = (rng.random((10, 10)) < 0.45).astype(np.int64)
    majority = CellularAutomaton(10, 10, majority_rule, initial=noisy)
    show(majority.grid, "majority vote, t = 0 (noise):")
    majority.step(6)
    show(majority.grid, "t = 6 (smoothed):")


if __name__ == "__main__":
    main()
