#!/usr/bin/env python
"""Community discovery in a synthetic social network.

Plants a known community structure (each community internally connected,
no cross-community ties), shuffles the member ids, and shows the GCA
algorithm recovering the communities in ``ceil(log2 n)`` iterations --
including the per-iteration convergence the paper's halving argument
predicts (the number of surviving components at least halves while any
remain mergeable).

Run:  python examples/social_network.py
"""

import numpy as np

import repro
from repro.graphs.components import canonical_labels
from repro.hirschberg.reference import hirschberg_reference


def main() -> None:
    sizes = [14, 9, 7, 5, 5, 3, 3, 2]          # eight communities, 48 people
    graph = repro.planted_components(sizes, intra_p=0.35, seed=42)
    n = graph.n
    print(f"network: {n} people, {graph.edge_count} ties, "
          f"{len(sizes)} planted communities")

    # Watch the component count fall iteration by iteration.
    counts = []

    def on_iteration(k: int, C: np.ndarray, T: np.ndarray) -> None:
        counts.append(int(np.unique(C).size))

    ref = hirschberg_reference(graph, on_iteration=on_iteration)
    print("components after each iteration:", [n] + counts)
    for before, after in zip([n] + counts, counts):
        # Every mergeable component merges with at least one other, so the
        # count at least halves until the planted count is reached.
        assert after <= max(len(sizes), (before + 1) // 2 + len(sizes)), (
            before, after)

    # The GCA engine finds the same communities.
    result = repro.gca_connected_components(graph)
    assert np.array_equal(result.labels, ref.labels)
    assert np.array_equal(result.labels, canonical_labels(graph))
    assert result.component_count == len(sizes)

    print(f"\nrecovered {result.component_count} communities:")
    for community in result.components():
        print(f"  leader {community[0]:2d}: members {community}")

    # Community membership queries through the public API.
    a, b = result.components()[0][:2]
    print(f"\nsame_component({a}, {b}) = {result.same_component(a, b)}")


if __name__ == "__main__":
    main()
