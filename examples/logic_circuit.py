#!/usr/bin/env python
"""Logic simulation on the GCA — another of the paper's application classes.

Builds an 8-bit ripple-carry adder as a gate netlist, compiles it onto
the GCA engine (one cell per gate, pointers = input nets), and simulates
additions; the circuit settles in ``depth`` synchronous generations.

Run:  python examples/logic_circuit.py
"""

from repro.gca.logic_simulation import LogicSimulator, ripple_carry_adder

BITS = 8


def main() -> None:
    circuit, a_in, b_in, carry_in = ripple_carry_adder(BITS)
    sim = LogicSimulator(circuit)
    print(
        f"{BITS}-bit ripple-carry adder: {circuit.size} gates "
        f"(incl. {len(circuit.input_ids)} inputs), depth {sim.depth} "
        f"-> {sim.depth} GCA generations per addition"
    )

    def add(x: int, y: int, c: int = 0) -> int:
        inputs = {a_in[i]: (x >> i) & 1 for i in range(BITS)}
        inputs.update({b_in[i]: (y >> i) & 1 for i in range(BITS)})
        inputs[carry_in] = c
        out = sim.run(inputs)
        return sum(out[f"sum{i}"] << i for i in range(BITS)) + (
            out["carry_out"] << BITS
        )

    cases = [(0, 0), (1, 1), (100, 55), (200, 56), (255, 255), (170, 85)]
    for x, y in cases:
        result = add(x, y)
        marker = "ok" if result == x + y else "WRONG"
        print(f"  {x:3d} + {y:3d} = {result:3d}   [{marker}]")
        assert result == x + y

    # with carry-in
    assert add(10, 20, 1) == 31
    print("  10 +  20 + cin = 31   [ok]")
    print("\nall additions verified against Python arithmetic")


if __name__ == "__main__":
    main()
