"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so the legacy
editable-install path (``pip install -e . --no-use-pep517``) works in
offline environments whose setuptools lacks the ``bdist_wheel`` command.
"""

from setuptools import setup

setup()
