"""Command-line interface.

Installed as ``python -m repro`` (see ``__main__.py``). Sub-commands:

``solve``
    Compute the connected components of a graph (edge-list file or a
    built-in generator) with a selectable engine.
``tables``
    Print the Table 1 / Table 2 / total-generation reproductions for one
    field size.
``synthesize``
    Print the Section 4 hardware estimate for one field size.
``trace``
    Replay a small instance generation by generation (Figure 3 style).
``closure``
    All-pairs reachability via the GCA transitive-closure machine.
``sweep``
    Run an oracle-verified engine sweep and print the summary (optionally
    archiving the raw records as JSON).
``sparse-sweep``
    The sparse-scale counterpart: random edge lists shared with worker
    processes via zero-copy shared memory.
``serve``
    Run the request server behind the asyncio socket gateway
    (``--listen HOST:PORT``): binary wire protocol, JSON lines and a
    small HTTP surface on one port.  SIGTERM/SIGINT drain before
    stopping, bounded by ``--drain-timeout``.
``serve-bench``
    Drive the micro-batching request server with an open- or closed-loop
    workload and print throughput, occupancy, tail latency and the
    shed/deadline counters (optionally against the naive sequential
    baseline).  With ``--listen`` the same workload travels the binary
    wire protocol over ``--connections`` persistent loopback sockets
    through an in-process gateway, labels are verified against the
    oracle, and the report adds client-side wire latency percentiles.
``reproduce``
    Run the acceptance harness: a quick PASS/FAIL verdict for every
    experiment E1-E20.
``check``
    Run the repo-specific static analysis (CROW discipline,
    double-buffer hygiene, shm/concurrency hygiene) over source paths;
    text, ``--json`` or ``--sarif`` output, optional ``--baseline``.

Examples::

    python -m repro check src/ --stats
    python -m repro check src/ --json --baseline check_baseline.json
    python -m repro solve --random 16 --method interpreter --sanitize
    python -m repro serve-bench --executor pool --sanitize-shm
    python -m repro solve graph.edges --method vectorized
    python -m repro solve --random 64 --p 0.1 --seed 7
    python -m repro solve --random-sparse 100000 300000 --method auto
    python -m repro solve --random-sparse 500000 2000000 --method parallel \
        --variant fastsv --kernel-workers 4
    python -m repro solve --random-sparse 2000000 8000000 --method sharded \
        --shards 4 --memory-budget 256M
    python -m repro tables --n 8
    python -m repro synthesize --n 16
    python -m repro trace --n 4 --edges 0-1,1-3
    python -m repro closure --n 6 --edges 0-1,1-2,4-5 --query 0-2
    python -m repro sweep --sizes 8,16 --engines vectorized,unionfind
    python -m repro sparse-sweep --sizes 10000,50000 --jobs 4
    python -m repro serve --listen 127.0.0.1:7421 --workers 2
    python -m repro serve --listen 0.0.0.0:7421 --cache-bytes 64M
    python -m repro serve-bench --count 200 --baseline
    python -m repro serve-bench --rps 2000 --deadline 0.05 --json serve.json
    python -m repro serve-bench --executor pool --process-workers 2
    python -m repro serve-bench --cache-bytes 1048576 --duplicate-fraction 0.5
    python -m repro serve-bench --listen --connections 1000 --rps 4000
    python -m repro reproduce [--only E1,E6]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.analysis import (
    compare_table1,
    compare_table2,
    measured_total,
    render_table1,
    render_table2,
    render_totals,
)
from repro.core.api import GraphLike, connected_components
from repro.core.machine import connected_components_interpreter
from repro.core.trace import TraceRecorder
from repro.graphs.generators import from_edges, random_graph
from repro.graphs.io import load_edge_list
from repro.hardware import paper_report, synthesize
from repro.hirschberg.edgelist import random_edge_list


def _parse_edges(spec: str) -> List[tuple]:
    """Parse ``"0-1,1-3"`` into ``[(0, 1), (1, 3)]``."""
    edges = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split("-")
        if len(pieces) != 2:
            raise ValueError(f"malformed edge {part!r}; expected 'a-b'")
        edges.append((int(pieces[0]), int(pieces[1])))
    return edges


_BYTE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def _parse_bytes(spec: str) -> int:
    """Parse ``"512M"`` / ``"2G"`` / ``"1073741824"`` into bytes."""
    text = spec.strip().upper()
    if text.endswith("B"):
        text = text[:-1]
    factor = 1
    if text and text[-1] in _BYTE_SUFFIXES:
        factor = _BYTE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * factor)
    except ValueError:
        raise ValueError(
            f"malformed byte size {spec!r}; expected e.g. 512M, 2G or a "
            f"plain byte count"
        ) from None
    if value < 1:
        raise ValueError(f"byte size must be >= 1, got {spec!r}")
    return value


def _load_graph(args: argparse.Namespace) -> GraphLike:
    if args.graph_file:
        return load_edge_list(args.graph_file)
    if args.random_sparse:
        n, m = args.random_sparse
        return random_edge_list(n, m, seed=args.seed)
    if args.random:
        return random_graph(args.random, args.p, seed=args.seed)
    raise SystemExit(
        "solve: provide an edge-list file, --random N or --random-sparse N M"
    )


#: ``solve`` suppresses the per-component listing above this many nodes
#: (the listing is a Python loop; at sparse scale it would dwarf the solve).
_LISTING_LIMIT = 10_000


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    budget = _parse_bytes(args.memory_budget) if args.memory_budget else None
    result = connected_components(
        graph, engine=args.method, early_exit=args.early_exit,
        sanitize=args.sanitize, shards=args.shards, memory_budget=budget,
        variant=args.variant, kernel_workers=args.kernel_workers,
    )
    shown = (f"auto -> {result.method}" if args.method == "auto"
             else args.method)
    print(f"n = {graph.n}, edges = {graph.edge_count}, method = {shown}")
    if result.method == "parallel" and result.detail is not None:
        d = result.detail
        mode = (f"pooled x{d.workers}" if d.pooled else "inline")
        print(f"parallel: variant={d.variant}, rounds={d.rounds} "
              f"(+{d.confirm_rounds} confirm), chunks={d.chunks}, {mode}")
    print(f"components: {result.component_count}")
    if args.sanitize and getattr(result.detail, "sanitizer", None) is not None:
        print(result.detail.sanitizer.summary())
    if args.early_exit and result.detail.converged_at_iteration is not None:
        print(f"converged at iteration {result.detail.converged_at_iteration} "
              f"({result.detail.total_generations} generations)")
    if args.labels:
        print("labels:", " ".join(map(str, result.labels.tolist())))
    elif graph.n <= _LISTING_LIMIT:
        for component in result.components():
            print(f"  [{component[0]}] {component}")
    else:
        print(f"(component listing suppressed for n > {_LISTING_LIMIT}; "
              f"use --labels for the raw vector)")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    n = args.n
    graph = random_graph(n, 0.3, seed=args.seed)
    res = connected_components_interpreter(graph)
    print(render_table1(n, compare_table1(n, res.access_log)))
    print()
    print(render_table2(n, compare_table2(n, res.access_log)))
    print()
    print(render_totals([measured_total(n, res.access_log)]))
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    report = synthesize(args.n)
    print(f"model  (n={args.n:3d}): {report.summary()}")
    if args.n == paper_report().n:
        print(f"paper  (n= 16): {paper_report().summary()}")
    print(f"device utilisation (EP2C70): {report.device_utilisation:.1%}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    edges = _parse_edges(args.edges) if args.edges else []
    graph = from_edges(args.n, edges)
    recorder = TraceRecorder(graph)
    recorder.run()
    print(recorder.render())
    return 0


def _cmd_closure(args: argparse.Namespace) -> int:
    from repro.extensions.transitive_closure import transitive_closure_gca

    edges = _parse_edges(args.edges) if args.edges else []
    graph = from_edges(args.n, edges)
    result = transitive_closure_gca(graph, record_access=False)
    print(f"n = {args.n}, edges = {graph.edge_count}, "
          f"squarings = {result.squarings}")
    if args.query:
        for a, b in _parse_edges(args.query):
            print(f"reachable({a}, {b}) = {result.reachable(a, b)}")
    else:
        for i in range(args.n):
            reach = np.flatnonzero(result.closure[i]).tolist()
            print(f"  {i}: {reach}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import SweepSpec, dumps_records, run_sweep, summarize
    from repro.util.formatting import render_table

    spec = SweepSpec(
        name="cli",
        sizes=[int(x) for x in args.sizes.split(",") if x],
        engines=[e for e in args.engines.split(",") if e],
        densities=[args.p],
        workload=args.workload,
        seeds=list(range(args.repeats)),
    )
    records = run_sweep(spec, jobs=args.jobs)
    print(render_table(
        ["engine", "n", "runs", "median ms", "all correct", "generations"],
        summarize(records),
        title=f"sweep: {spec.run_count} runs, workload={spec.workload}",
    ))
    if not all(r.correct for r in records):
        print("error: some runs diverged from the oracle", file=sys.stderr)
        return 1
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(dumps_records(records))
        print(f"records written to {args.json}")
    return 0


def _cmd_sparse_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import (
        SparseSweepSpec,
        dumps_records,
        run_sparse_sweep,
    )
    from repro.util.formatting import render_table

    spec = SparseSweepSpec(
        name="cli-sparse",
        sizes=[int(x) for x in args.sizes.split(",") if x],
        edge_factors=[float(x) for x in args.edge_factors.split(",") if x],
        engines=[e for e in args.engines.split(",") if e],
        seeds=list(range(args.repeats)),
    )
    records = run_sparse_sweep(spec, jobs=args.jobs)
    rows = [
        [r.engine, r.resolved_engine, r.n, r.m,
         round(r.seconds * 1e3, 3), r.correct]
        for r in records
    ]
    print(render_table(
        ["engine", "resolved", "n", "m", "ms", "correct"],
        rows,
        title=f"sparse sweep: {spec.run_count} runs (shared-memory workers)",
    ))
    if not all(r.correct for r in records):
        print("error: some runs diverged from the oracle", file=sys.stderr)
        return 1
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(dumps_records(records))
        print(f"records written to {args.json}")
    return 0


def _parse_listen(spec: str) -> tuple:
    """Parse ``"HOST:PORT"`` (or ``":PORT"`` for all interfaces)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        raise ValueError(
            f"malformed listen address {spec!r}; expected HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"malformed port in listen address {spec!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in listen address {spec!r}")
    return (host or "0.0.0.0", port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.gateway import GatewayConfig, run_gateway
    from repro.serve.server import Server, ServerConfig

    host, port = _parse_listen(args.listen)
    config = ServerConfig(
        workers=args.workers,
        max_wait=args.max_wait,
        max_queue=args.max_queue,
        admission=args.admission,
        calibration=args.calibration,
        executor=args.executor,
        process_workers=args.process_workers,
        cache_bytes=(_parse_bytes(args.cache_bytes)
                     if args.cache_bytes else 0),
        cache_verify=args.cache_verify,
    )
    gw_config = GatewayConfig(
        host=host,
        port=port,
        max_payload_bytes=_parse_bytes(args.max_payload),
        chunk_labels=args.chunk_labels,
        default_deadline=args.deadline if args.deadline > 0 else None,
        drain_timeout=args.drain_timeout,
    )

    def announce(bound_host: str, bound_port: int) -> None:
        print(f"serving on {bound_host}:{bound_port} "
              f"(binary wire protocol + JSON lines + HTTP)", flush=True)

    with Server(config) as server:
        drained = run_gateway(server, gw_config, announce=announce)
    if drained:
        print("drained and stopped cleanly")
        return 0
    print(f"error: drain exceeded {args.drain_timeout:g}s; "
          f"pending requests were cancelled", file=sys.stderr)
    return 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import (
        LoadSpec,
        make_workload,
        naive_seconds,
        oracle_labels,
        run_closed_loop,
        run_open_loop,
        run_socket_closed_loop,
        run_socket_open_loop,
    )
    from repro.serve.server import Server, ServerConfig

    if args.listen and args.dense_fraction:
        print("error: --listen carries edge lists only; "
              "use --dense-fraction 0", file=sys.stderr)
        return 2

    spec = LoadSpec(
        count=args.count,
        sizes=tuple(int(x) for x in args.sizes.split(",") if x),
        size_skew=args.size_skew,
        edge_factor=args.edge_factor,
        dense_fraction=args.dense_fraction,
        duplicate_fraction=args.duplicate_fraction,
        seed=args.seed,
    )
    graphs = make_workload(spec)
    config = ServerConfig(
        workers=args.workers,
        max_wait=args.max_wait,
        calibration=args.calibration,
        executor=args.executor,
        process_workers=args.process_workers,
        cache_bytes=args.cache_bytes,
        cache_verify=args.cache_verify,
    )
    deadline = args.deadline if args.deadline > 0 else None

    naive = naive_seconds(graphs) if args.baseline else None
    shm_report = None
    if args.sanitize_shm:
        from contextlib import ExitStack

        from repro.check.sanitizer import shm_sanitizer

        stack = ExitStack()
        shm_report = stack.enter_context(shm_sanitizer(strict=False))
    else:
        stack = None
    wire_results = None
    try:
        with Server(config) as server:
            if args.listen:
                from repro.serve.gateway import GatewayHandle

                with GatewayHandle(server) as gateway:
                    start = time.perf_counter()
                    if args.rps > 0:
                        wire_results = run_socket_open_loop(
                            gateway.address, graphs, offered_rps=args.rps,
                            connections=args.connections, deadline=deadline,
                            seed=spec.seed,
                            settle_timeout=args.wait_timeout,
                        )
                    else:
                        wire_results = run_socket_closed_loop(
                            gateway.address, graphs,
                            connections=args.connections, deadline=deadline,
                        )
                    served = time.perf_counter() - start
                    snapshot = server.metrics_snapshot()
            else:
                start = time.perf_counter()
                if args.rps > 0:
                    handles = run_open_loop(server, graphs,
                                            offered_rps=args.rps,
                                            deadline=deadline, seed=spec.seed)
                else:
                    handles = run_closed_loop(server, graphs,
                                              concurrency=args.concurrency,
                                              deadline=deadline)
                responses = [h.response(timeout=args.wait_timeout)
                             for h in handles]
                served = time.perf_counter() - start
                snapshot = server.metrics_snapshot()
    finally:
        if stack is not None:
            stack.close()
    if shm_report is not None:
        print(shm_report.summary())
        from repro.check.sanitizer import ShmSanitizerError

        try:
            shm_report.verify()
        except ShmSanitizerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    wire_client = None
    mismatches = 0
    if wire_results is not None:
        total = len(wire_results)
        answered = [r for r in wire_results if r is not None]
        oks = [r for r in answered if r.ok]
        for r in oks:
            if not np.array_equal(r.labels, oracle_labels(
                    graphs[r.request_id])):
                mismatches += 1
        ok = len(oks) - mismatches
        lat_ms = np.array([r.latency_seconds for r in oks]) * 1e3 \
            if oks else np.array([0.0])
        wire_client = {
            "connections": args.connections,
            "answered": len(answered),
            "ok": len(oks),
            "label_mismatches": mismatches,
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 4),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 4),
            "mean_ms": round(float(lat_ms.mean()), 4),
        }
        print(f"wire: {len(oks)}/{total} ok over {args.connections} "
              f"connection(s) in {served * 1e3:.1f} ms "
              f"({total / served:.0f} rps offered-side)")
        print(f"wire latency ms: p50 {wire_client['p50_ms']}, "
              f"p99 {wire_client['p99_ms']} "
              f"(client-side, end to end)")
        if mismatches:
            print(f"error: {mismatches} label vector(s) diverged from "
                  f"the oracle", file=sys.stderr)
        responses = answered  # counted below as the served set
    else:
        ok = sum(r.ok for r in responses)
    print(f"served {ok}/{len(responses)} ok in {served * 1e3:.1f} ms "
          f"({len(responses) / served:.0f} rps)")
    if naive is not None:
        print(f"naive sequential baseline: {naive * 1e3:.1f} ms "
              f"(speedup {naive / served:.2f}x)")
    occupancy = snapshot["batch_occupancy"]
    print(f"batches: {snapshot['counters']['batches']} "
          f"(mean occupancy {occupancy['mean']}, max {occupancy['max']})")
    counters = snapshot["counters"]
    print(f"shed: {counters['shed']}, timed out: {counters['timed_out']}, "
          f"deadline misses: {counters['deadline_misses']}")
    latency = snapshot["latency"]
    if latency["count"]:
        print(f"latency ms: p50 {latency['p50_ms']}, "
              f"p95 {latency['p95_ms']}, p99 {latency['p99_ms']}")
    if args.executor == "pool":
        gauges = snapshot["gauges"]
        print(f"pool: restarts {gauges['pool_restarts']}, dispatch "
              f"overhead {gauges['pool_dispatch_overhead_s'] * 1e3:.2f} ms")
    if "cache" in snapshot:
        cache = snapshot["cache"]
        print(f"cache: {cache['hits']} hits, {cache['misses']} misses, "
              f"{cache['evictions']} evictions, "
              f"{cache['bytes_used']} bytes used")
    if args.json:
        from pathlib import Path

        payload = dict(snapshot)
        payload["bench"] = {
            "count": len(graphs),
            "ok": ok,
            "served_seconds": served,
            "naive_seconds": naive,
        }
        if wire_client is not None:
            payload["bench"]["wire_client"] = wire_client
        Path(args.json).write_text(json.dumps(payload, indent=2,
                                              sort_keys=True) + "\n")
        print(f"snapshot written to {args.json}")
    return 0 if ok == len(graphs) or args.allow_failures else 1


def _changed_python_files(paths: List[str]) -> Optional[Set[str]]:
    """Posix paths of tracked-but-modified plus untracked ``.py`` files
    under ``paths``, from git; ``None`` when git is unavailable."""
    import subprocess

    changed: Set[str] = set()
    for argv in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    roots = [Path(p).as_posix().rstrip("/") for p in paths]
    return {
        f for f in changed
        if any(f == r or f.startswith(r + "/") for r in roots)
    }


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import (
        CheckEngine,
        StaleBaselineError,
        all_rules,
        load_baseline,
        write_baseline,
    )

    only = [r for r in args.rules.split(",") if r] or None
    cache_path = None if args.no_cache else args.cache
    engine = CheckEngine(all_rules(only=only), cache_path=cache_path)
    baseline = load_baseline(args.baseline) if args.baseline else None
    restrict: Optional[Set[str]] = None
    if args.changed_only:
        restrict = _changed_python_files(args.paths)
        if restrict is None:
            print(
                "repro check: --changed-only needs a git checkout "
                "(git diff failed)",
                file=sys.stderr,
            )
            return 2
    try:
        report = engine.check_paths(
            args.paths, baseline=baseline, restrict=restrict
        )
    except StaleBaselineError as exc:
        print(f"repro check: stale baseline: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(
            report.findings + report.baselined, args.write_baseline
        )
        print(f"baseline with {len(report.findings) + len(report.baselined)} "
              f"finding(s) written to {args.write_baseline}")
        return 0
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.sarif:
        print(json.dumps(report.to_sarif(engine.rules), indent=2))
    else:
        print(report.render_text())
    if args.stats:
        print(report.render_stats())
    return 0 if report.ok else 1


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.reproduce import render, run_all

    only = [x for x in args.only.split(",") if x] if args.only else None
    results = run_all(only=only)
    print(render(results))
    return 0 if results and all(r.passed for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hirschberg's connected-components algorithm on a Global "
            "Cellular Automaton (IPPS 2007 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="compute connected components")
    solve.add_argument("graph_file", nargs="?", help="edge-list file")
    solve.add_argument("--random", type=int, metavar="N",
                       help="use a random G(N, p) instead of a file")
    solve.add_argument("--random-sparse", type=int, nargs=2,
                       metavar=("N", "M"),
                       help="use a sparse random edge list with N nodes "
                            "and up to M edges (never densified)")
    solve.add_argument("--p", type=float, default=0.1,
                       help="edge probability for --random (default 0.1)")
    solve.add_argument("--seed", type=int, default=None, help="random seed")
    solve.add_argument(
        "--method",
        choices=["auto", "vectorized", "batched", "edgelist", "contracting",
                 "parallel", "sharded", "interpreter", "reference", "pram"],
        default="vectorized",
        help="execution engine; 'auto' dispatches on (n, m) via the "
             "measured cost model (including the memory and parallelism "
             "dimensions) and reports its choice",
    )
    solve.add_argument("--variant",
                       choices=["sv", "fastsv", "stochastic"],
                       default=None,
                       help="update rule for --method parallel "
                            "(default fastsv)")
    solve.add_argument("--kernel-workers", type=int, default=None,
                       metavar="W",
                       help="shm pool workers for --method parallel "
                            "(1 = inline serial kernels; default: probed "
                            "core count under --method auto, else 1)")
    solve.add_argument("--shards", type=int, default=None, metavar="K",
                       help="shard count for --method sharded "
                            "(default: planned from the memory budget)")
    solve.add_argument("--memory-budget", default="", metavar="BYTES",
                       help="resident memory budget for --method sharded, "
                            "e.g. 512M or 2G (default: half of the host's "
                            "available memory)")
    solve.add_argument("--labels", action="store_true",
                       help="print the raw label vector")
    solve.add_argument("--early-exit", action="store_true",
                       help="stop at the label fixed point "
                            "(vectorized method only)")
    solve.add_argument("--sanitize", action="store_true",
                       help="run on the CROW write-barrier interpreter: "
                            "any cross-cell write raises and the read "
                            "accounting is cross-checked (method must be "
                            "auto or interpreter; slow)")
    solve.set_defaults(func=_cmd_solve)

    tables = sub.add_parser("tables", help="print the Table 1/2 reproductions")
    tables.add_argument("--n", type=int, default=8, help="field size")
    tables.add_argument("--seed", type=int, default=0)
    tables.set_defaults(func=_cmd_tables)

    synth = sub.add_parser("synthesize", help="hardware cost estimate")
    synth.add_argument("--n", type=int, default=16, help="field size")
    synth.set_defaults(func=_cmd_synthesize)

    trace = sub.add_parser("trace", help="generation-by-generation replay")
    trace.add_argument("--n", type=int, default=4, help="node count")
    trace.add_argument("--edges", default="",
                       help="comma-separated edges, e.g. 0-1,1-3")
    trace.set_defaults(func=_cmd_trace)

    closure = sub.add_parser("closure", help="all-pairs reachability (GCA)")
    closure.add_argument("--n", type=int, default=4, help="node count")
    closure.add_argument("--edges", default="",
                         help="comma-separated edges, e.g. 0-1,1-3")
    closure.add_argument("--query", default="",
                         help="reachability queries, e.g. 0-3,1-2")
    closure.set_defaults(func=_cmd_closure)

    sweep = sub.add_parser("sweep", help="oracle-verified engine sweep")
    sweep.add_argument("--sizes", default="8,16", help="comma-separated n")
    sweep.add_argument("--engines", default="vectorized,unionfind")
    sweep.add_argument("--p", type=float, default=0.1, help="edge probability")
    sweep.add_argument("--workload", default="random",
                       choices=["random", "path", "tree", "planted"])
    sweep.add_argument("--repeats", type=int, default=1, help="seeds per cell")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the grid cells (default 1)")
    sweep.add_argument("--json", default="", help="archive records to file")
    sweep.set_defaults(func=_cmd_sweep)

    sparse = sub.add_parser(
        "sparse-sweep",
        help="verified sparse-engine sweep over shared-memory edge lists",
    )
    sparse.add_argument("--sizes", default="10000,50000",
                        help="comma-separated n")
    sparse.add_argument("--edge-factors", default="2.0",
                        help="comma-separated m/n ratios (default 2.0)")
    sparse.add_argument("--engines", default="edgelist,contracting",
                        help="comma-separated subset of "
                             "edgelist,contracting,auto")
    sparse.add_argument("--repeats", type=int, default=1,
                        help="seeds per cell")
    sparse.add_argument("--jobs", type=int, default=1,
                        help="worker processes attaching zero-copy views "
                             "(default 1)")
    sparse.add_argument("--json", default="", help="archive records to file")
    sparse.set_defaults(func=_cmd_sparse_sweep)

    listen = sub.add_parser(
        "serve",
        help="run the request server behind the asyncio socket gateway",
    )
    listen.add_argument("--listen", required=True, metavar="HOST:PORT",
                        help="bind address, e.g. 127.0.0.1:7421 "
                             "(port 0 picks an ephemeral port)")
    listen.add_argument("--workers", type=int, default=1,
                        help="server worker threads (default 1)")
    listen.add_argument("--executor", choices=["inline", "pool"],
                        default="inline",
                        help="'pool' executes flushed batches on a "
                             "persistent multi-process worker pool")
    listen.add_argument("--process-workers", type=int, default=0,
                        help="pool processes (0 = one per core with "
                             "--executor pool)")
    listen.add_argument("--max-wait", type=float, default=0.002,
                        help="batching window seconds (default 0.002)")
    listen.add_argument("--max-queue", type=int, default=1024,
                        help="admission queue depth (default 1024)")
    listen.add_argument("--admission", choices=["block", "shed", "fail"],
                        default="shed",
                        help="full-queue policy; 'shed' answers with a "
                             "typed SHED error frame (default)")
    listen.add_argument("--cache-bytes", default="", metavar="BYTES",
                        help="content-addressed result cache budget, "
                             "e.g. 64M (default: cache off)")
    listen.add_argument("--cache-verify", action="store_true",
                        help="re-solve and compare on each entry's first "
                             "cache hit before trusting it")
    listen.add_argument("--deadline", type=float, default=0.0,
                        help="default deadline seconds for wire requests "
                             "that carry none; 0 = none")
    listen.add_argument("--max-payload", default="256M", metavar="BYTES",
                        help="per-frame edge payload ceiling "
                             "(default 256M)")
    listen.add_argument("--chunk-labels", type=int, default=65536,
                        help="label values per streamed response chunk "
                             "(default 65536)")
    listen.add_argument("--drain-timeout", type=float, default=10.0,
                        help="bound in seconds on the SIGTERM/SIGINT "
                             "drain (default 10)")
    listen.add_argument(
        "--calibration", choices=["default", "cached", "recalibrate"],
        default="default",
        help="'cached' loads/measures the per-host cost-model cache; "
             "'recalibrate' forces a fresh measurement",
    )
    listen.set_defaults(func=_cmd_serve)

    serve = sub.add_parser(
        "serve-bench",
        help="micro-batching server benchmark (open or closed loop)",
    )
    serve.add_argument("--count", type=int, default=200,
                       help="requests in the workload (default 200)")
    serve.add_argument("--sizes", default="8,16,32,64,128,256",
                       help="comma-separated node-count ladder")
    serve.add_argument("--size-skew", type=float, default=1.0,
                       help="weight ~ n^-skew; small requests dominate "
                            "(default 1.0)")
    serve.add_argument("--edge-factor", type=float, default=2.0,
                       help="edges per node for sparse requests")
    serve.add_argument("--dense-fraction", type=float, default=0.0,
                       help="fraction of dense adjacency requests")
    serve.add_argument("--duplicate-fraction", type=float, default=0.0,
                       help="probability a request repeats an earlier "
                            "graph (exercises the result cache)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--workers", type=int, default=1,
                       help="worker threads (default 1)")
    serve.add_argument("--executor", choices=["inline", "pool"],
                       default="inline",
                       help="'pool' executes flushed batches on a "
                            "persistent multi-process worker pool")
    serve.add_argument("--process-workers", type=int, default=0,
                       help="pool processes (0 = one per core with "
                            "--executor pool)")
    serve.add_argument("--cache-bytes", type=int, default=0,
                       help="content-addressed result cache budget in "
                            "bytes (0 = cache off)")
    serve.add_argument("--cache-verify", action="store_true",
                       help="re-solve and compare on each entry's first "
                            "cache hit before trusting it")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="batching window seconds (default 0.002)")
    serve.add_argument("--rps", type=float, default=0.0,
                       help="open-loop offered rate; 0 = closed loop")
    serve.add_argument("--concurrency", type=int, default=8,
                       help="closed-loop client threads (default 8)")
    serve.add_argument("--listen", action="store_true",
                       help="drive the workload over the binary wire "
                            "protocol through an in-process gateway on "
                            "a loopback socket, verifying every label "
                            "vector against the oracle")
    serve.add_argument("--connections", type=int, default=64,
                       help="persistent wire connections with --listen "
                            "(default 64)")
    serve.add_argument("--deadline", type=float, default=0.0,
                       help="per-request deadline seconds; 0 = none")
    serve.add_argument("--wait-timeout", type=float, default=120.0,
                       help="seconds to wait for each response")
    serve.add_argument(
        "--calibration", choices=["default", "cached", "recalibrate"],
        default="default",
        help="'cached' loads/measures the per-host cost-model cache; "
             "'recalibrate' forces a fresh measurement",
    )
    serve.add_argument("--baseline", action="store_true",
                       help="also time the naive sequential baseline")
    serve.add_argument("--allow-failures", action="store_true",
                       help="exit 0 even when some requests did not "
                            "resolve ok (overload experiments)")
    serve.add_argument("--sanitize-shm", action="store_true",
                       help="observe the shared-memory layer for the whole "
                            "bench: leaked segments, double-acquired slabs "
                            "and write-epoch races fail the run")
    serve.add_argument("--json", default="",
                       help="write the metrics snapshot to a file")
    serve.set_defaults(func=_cmd_serve_bench)

    reproduce = sub.add_parser(
        "reproduce", help="PASS/FAIL verdict for every experiment"
    )
    reproduce.add_argument("--only", default="",
                           help="comma-separated experiment ids, e.g. E1,E6")
    reproduce.set_defaults(func=_cmd_reproduce)

    check = sub.add_parser(
        "check",
        help="repo-specific static analysis (CROW / double-buffer / shm "
             "hygiene rules)",
    )
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to lint (default: src)")
    check.add_argument("--rules", default="",
                       help="comma-separated rule ids to run "
                            "(default: all)")
    check.add_argument("--json", action="store_true",
                       help="print the findings as JSON")
    check.add_argument("--sarif", action="store_true",
                       help="print the findings as SARIF 2.1.0")
    check.add_argument("--stats", action="store_true",
                       help="append the per-rule trend summary (CI logs)")
    check.add_argument("--baseline", default="",
                       help="baseline file; only findings not recorded "
                            "there fail the run")
    check.add_argument("--write-baseline", default="", metavar="PATH",
                       help="record the current findings as the baseline "
                            "and exit 0")
    check.add_argument("--changed-only", action="store_true",
                       help="report findings only for files git considers "
                            "changed (all files are still summarized so "
                            "cross-module rules stay sound)")
    check.add_argument("--cache", default=".check_cache.json",
                       metavar="PATH",
                       help="incremental cache file (default: "
                            ".check_cache.json)")
    check.add_argument("--no-cache", action="store_true",
                       help="disable the incremental cache")
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, IndexError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
