"""The acceptance harness: every experiment's verdict in one call.

``python -m repro reproduce`` (or :func:`run_all`) executes a quick
version of every experiment E1-E20 from DESIGN.md's index and reports
PASS/FAIL per experiment -- the one-command answer to "does this
repository still reproduce the paper?".  The full-size runs and archived
reports live in ``benchmarks/``; these checks use small instances chosen
so the whole battery completes in seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class CheckResult:
    """One experiment's quick verdict."""

    experiment: str
    title: str
    passed: bool
    detail: str
    seconds: float


def _check(condition: bool, ok: str, bad: str) -> tuple:
    return bool(condition), ok if condition else bad


# ----------------------------------------------------------------------
# the individual checks (E1..E20)
# ----------------------------------------------------------------------

def _e1_table1() -> tuple:
    from repro.analysis import compare_table1
    from repro.core.machine import connected_components_interpreter
    from repro.graphs.generators import random_graph

    n = 8
    log = connected_components_interpreter(random_graph(n, 0.4, seed=1)).access_log
    rows = {c.generation: c for c in compare_table1(n, log)}
    exact = all(rows[g].active_matches for g in (0, 1, 2, 4, 5, 6, 8, 11))
    bounded = all(c.congestion_within_paper_bound for c in rows.values())
    return _check(
        exact and bounded,
        "generations 0-8/11 match; 9/10 within documented deviations",
        "Table 1 counts diverged",
    )


def _e2_table2() -> tuple:
    from repro.analysis import compare_table2
    from repro.core.vectorized import run_vectorized
    from repro.graphs.generators import random_graph

    for n in (8, 12):
        log = run_vectorized(random_graph(n, 0.3, seed=n), record_access=True).access_log
        if not all(r.matches for r in compare_table2(n, log)):
            return False, f"Table 2 mismatch at n={n}"
    return True, "per-step generation counts exact (incl. non-power-of-two n)"


def _e3_state_machine() -> tuple:
    from repro.core.schedule import full_schedule
    from repro.core.state_machine import HirschbergStateMachine

    for n in (2, 4, 8):
        if [s.label for s in HirschbergStateMachine(n)] != [
            s.label for s in full_schedule(n)
        ]:
            return False, f"controller != schedule at n={n}"
    return True, "dynamic controller emits the static schedule exactly"


def _e4_access_patterns() -> tuple:
    from repro.core.trace import figure3_patterns

    p = figure3_patterns(4)
    ok = (
        p["gen1"].active_count == 20
        and p["gen2"].active_count == 16
        and p["gen3.sub0"].active_count == 8
        and p["gen1"].reads_of(0) == 5
    )
    return _check(ok, "n=4 panels match Figure 3", "Figure 3 panels diverged")


def _e5_total_generations() -> tuple:
    from repro.core.schedule import total_generations
    from repro.core.vectorized import run_vectorized
    from repro.graphs.generators import random_graph
    from repro.util.intmath import ceil_log2

    for n in (4, 8, 16):
        res = run_vectorized(random_graph(n, 0.3, seed=n))
        expected = 1 + ceil_log2(n) * (3 * ceil_log2(n) + 8)
        if res.total_generations != expected or total_generations(n) != expected:
            return False, f"bound broken at n={n}"
    return True, "1 + log n (3 log n + 8), measured = formula"


def _e6_synthesis() -> tuple:
    from repro.hardware import paper_report, synthesize

    return _check(
        synthesize(16).summary() == paper_report().summary(),
        "model reproduces 272 cells / 23,051 LEs / 2,192 bits / 71 MHz",
        "cost model diverged from the published point",
    )


def _e7_replication() -> tuple:
    from repro.core.machine import connected_components_interpreter
    from repro.graphs.generators import random_graph
    from repro.hardware import ReadStrategy, run_cycles

    log = connected_components_interpreter(random_graph(8, 0.4, seed=2)).access_log
    serial = run_cycles(log, ReadStrategy.SERIAL)
    replicated = run_cycles(log, ReadStrategy.REPLICATED)
    return _check(
        replicated == log.total_generations and serial > replicated,
        f"congestion 1 under replication ({serial} -> {replicated} cycles)",
        "replication did not reach congestion 1",
    )


def _e8_cost_models() -> tuple:
    from repro.analysis import compare_models
    from repro.graphs.generators import random_graph

    rows = {r.model: r for r in compare_models(random_graph(16, 0.3, seed=3))}
    ok = (
        all(r.labels_correct for r in rows.values())
        and rows["gca"].time_units < rows["sequential"].time_units
        and rows["sequential"].work <= rows["gca"].work
    )
    return _check(ok, "GCA wins time, sequential wins work; all correct",
                  "cost-model shape broken")


def _e9_crossover() -> tuple:
    from repro.graphs.generators import path_graph
    from repro.hirschberg.variants import label_propagation_rounds
    from repro.util.intmath import outer_iterations

    n = 64
    return _check(
        label_propagation_rounds(path_graph(n)) == n - 1
        and outer_iterations(n) == 6,
        "diameter rounds vs log n iterations as predicted",
        "crossover shape broken",
    )


def _e10_ncells() -> tuple:
    from repro.core.row_machine import RowGCA, row_total_generations
    from repro.core.schedule import total_generations
    from repro.graphs.components import canonical_labels
    from repro.graphs.generators import random_graph

    g = random_graph(8, 0.3, seed=4)
    res = RowGCA(g).run()
    ok = (
        np.array_equal(res.labels, canonical_labels(g))
        and res.total_generations == row_total_generations(8)
        and row_total_generations(8) > total_generations(8)
    )
    return _check(ok, "n-cell design correct, slower as predicted",
                  "row machine broken")


def _e11_multiplexed() -> tuple:
    from repro.core.schedule import total_generations
    from repro.hardware.multiplexed import estimate_multiplexed, frontier

    full = estimate_multiplexed(16, 272)
    points = frontier(16)
    pareto = all(
        b.total_cycles <= a.total_cycles and b.logic_elements > a.logic_elements
        for a, b in zip(points, points[1:])
    )
    return _check(
        full.total_cycles == total_generations(16) and pareto,
        "Pareto frontier; fully parallel endpoint = generation count",
        "frontier shape broken",
    )


def _e12_hashing() -> tuple:
    from repro.analysis.hashing import compare_mappings
    from repro.core.machine import connected_components_interpreter
    from repro.graphs.generators import random_graph

    n = 8
    log = connected_components_interpreter(random_graph(n, 0.4, seed=5)).access_log
    profiles = {p.mapping_name: p for p in compare_mappings(log, n, 4)}
    hashed = profiles["universal-hash (median of samples)"]
    ok = profiles["aware"].peak <= hashed.peak < profiles["adversarial"].peak
    return _check(ok, "aware <= hashed < adversarial", "mapping ordering broken")


def _e13_closure() -> tuple:
    from repro.extensions.transitive_closure import (
        closure_generations,
        transitive_closure_gca,
        transitive_closure_reference,
    )
    from repro.graphs.generators import random_graph

    g = random_graph(8, 0.25, seed=6)
    res = transitive_closure_gca(g)
    ok = (
        np.array_equal(res.closure, transitive_closure_reference(g))
        and res.total_generations == closure_generations(8)
    )
    return _check(ok, "closure exact; log n (n+1) generations",
                  "transitive closure broken")


def _e14_algorithms() -> tuple:
    from repro.gca.algorithms import gca_bitonic_sort, gca_prefix_sum, gca_reduce

    values = [9, -3, 4, 0, 7, 7, -1, 2]
    ok = (
        gca_reduce(values, "min") == -3
        and gca_prefix_sum(values) == list(np.cumsum(values))
        and gca_bitonic_sort(values) == sorted(values)
    )
    return _check(ok, "reduce/scan/sort kernels correct", "kernel broken")


def _e15_verilog() -> tuple:
    from repro.hardware.cells import CellKind, count_cells
    from repro.hardware.verilog import design_statistics, generate_verilog

    stats = design_statistics(generate_verilog(4))
    counts = count_cells(4)
    ok = (
        stats["standard_instances"] == counts[CellKind.STANDARD]
        and stats["extended_instances"] == counts[CellKind.EXTENDED]
        and stats["case_arms_extended"] == 12
    )
    return _check(ok, "generated design structurally tied to the cost model",
                  "Verilog generator diverged")


def _e16_logic() -> tuple:
    from repro.gca.logic_simulation import LogicSimulator, ripple_carry_adder

    bits = 3
    circuit, a, b, cin = ripple_carry_adder(bits)
    sim = LogicSimulator(circuit)
    for x, y in ((3, 4), (7, 7), (0, 5)):
        inputs = {a[i]: (x >> i) & 1 for i in range(bits)}
        inputs.update({b[i]: (y >> i) & 1 for i in range(bits)})
        inputs[cin] = 0
        out = sim.run(inputs)
        got = sum(out[f"sum{i}"] << i for i in range(bits)) + (out["carry_out"] << bits)
        if got != x + y:
            return False, f"adder computed {x}+{y}={got}"
    return True, "gate-per-cell adder exact"


def _e17_sweep() -> tuple:
    from repro.analysis.sweep import SweepSpec, run_sweep

    records = run_sweep(SweepSpec(name="quick", sizes=[6, 10],
                                  engines=["vectorized", "row", "unionfind"]))
    return _check(all(r.correct for r in records),
                  f"{len(records)} sweep runs oracle-verified",
                  "sweep produced incorrect runs")


def _e18_edgelist() -> tuple:
    from repro.graphs.union_find import UnionFind
    from repro.hirschberg.edgelist import (
        connected_components_edgelist,
        random_edge_list,
    )

    g = random_edge_list(20_000, 25_000, seed=7)
    res = connected_components_edgelist(g)
    uf = UnionFind(g.n)
    half = g.src.size // 2
    for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
        uf.union(u, v)
    return _check(
        np.array_equal(res.labels, uf.canonical_labels()),
        "20k-node edge-list run oracle-verified",
        "edge-list variant diverged",
    )


def _e19_butterfly() -> tuple:
    from repro.network.butterfly import ButterflyNetwork
    from repro.util.intmath import ceil_log2

    p = 64
    reqs = [(s, 0) for s in range(p)]
    combined = ButterflyNetwork(p, combining=True).route(reqs)
    plain = ButterflyNetwork(p, combining=False).route(reqs)
    ok = combined.cycles <= ceil_log2(p) + 1 and plain.cycles >= p
    return _check(ok, "broadcast: log p with combining vs p without",
                  "routing behaviour broken")


def _e20_numerical() -> tuple:
    from repro.gca.numerical import gca_bfs_levels, gca_matvec, gca_sssp
    from repro.graphs.generators import path_graph
    from repro.graphs.metrics import bfs_distances

    rng = np.random.default_rng(8)
    M = rng.integers(-5, 6, size=(6, 6))
    x = rng.integers(-5, 6, size=6)
    g = path_graph(7)
    levels, _ = gca_bfs_levels(g, 0)
    dist, _ = gca_sssp(g.matrix, 0)
    ok = (
        np.array_equal(gca_matvec(M, x).vector, M.astype(np.int64) @ x)
        and np.array_equal(levels, bfs_distances(g, 0))
        and dist[6] == 6
    )
    return _check(ok, "matvec/BFS/SSSP kernels exact", "fabric kernel broken")


#: The registry, in DESIGN.md order.
CHECKS: List[tuple] = [
    ("E1", "Table 1: active cells / reads / congestion", _e1_table1),
    ("E2", "Table 2: generations per step", _e2_table2),
    ("E3", "Figure 2: the state machine", _e3_state_machine),
    ("E4", "Figure 3: access patterns (n=4)", _e4_access_patterns),
    ("E5", "total generations = 1 + log n (3 log n + 8)", _e5_total_generations),
    ("E6", "Section 4 synthesis point", _e6_synthesis),
    ("E7", "replication -> congestion 1", _e7_replication),
    ("E8", "GCA vs PRAM vs sequential cost models", _e8_cost_models),
    ("E9", "diameter vs log n crossover", _e9_crossover),
    ("E10", "n-cell design alternative", _e10_ncells),
    ("E11", "time-multiplexed frontier", _e11_multiplexed),
    ("E12", "memory-mapping / universal hashing", _e12_hashing),
    ("E13", "transitive closure", _e13_closure),
    ("E14", "GCA algorithm library", _e14_algorithms),
    ("E15", "generated Verilog design", _e15_verilog),
    ("E16", "logic simulation (gate per cell)", _e16_logic),
    ("E17", "oracle-verified engine sweep", _e17_sweep),
    ("E18", "edge-list variant at scale", _e18_edgelist),
    ("E19", "butterfly routing with combining", _e19_butterfly),
    ("E20", "semiring matrix fabric", _e20_numerical),
]


def run_all(only: Optional[List[str]] = None) -> List[CheckResult]:
    """Run the experiment checks; ``only`` filters by experiment id."""
    wanted = {e.upper() for e in only} if only else None
    results = []
    for exp_id, title, fn in CHECKS:
        if wanted is not None and exp_id not in wanted:
            continue
        start = time.perf_counter()
        try:
            passed, detail = fn()
        except Exception as exc:  # a crash is a failure, not an abort
            passed, detail = False, f"raised {type(exc).__name__}: {exc}"
        results.append(
            CheckResult(
                experiment=exp_id,
                title=title,
                passed=passed,
                detail=detail,
                seconds=time.perf_counter() - start,
            )
        )
    return results


def render(results: List[CheckResult]) -> str:
    """Human-readable verdict table."""
    from repro.util.formatting import render_table

    rows = [
        [r.experiment, r.title, "PASS" if r.passed else "FAIL",
         f"{r.seconds * 1e3:.0f}", r.detail]
        for r in results
    ]
    verdict = "ALL EXPERIMENTS PASS" if all(r.passed for r in results) else \
        f"{sum(not r.passed for r in results)} EXPERIMENT(S) FAILED"
    return render_table(
        ["id", "experiment", "verdict", "ms", "detail"],
        rows,
        title=f"Reproduction acceptance harness -- {verdict}",
    )
