"""The AST-walking lint framework behind ``python -m repro check``.

The engine is deliberately small: a :class:`LintRule` receives one
parsed :class:`Module` (path, source, AST) and yields
:class:`Finding`\\ s; :class:`CheckEngine` walks the requested paths,
runs every applicable rule, applies inline suppressions and an optional
committed baseline, and renders the surviving findings as text, JSON or
SARIF.

Suppression syntax
------------------
A finding is suppressed by a trailing comment on the offending line (or
the line directly above it)::

    snap = cur.copy()  # repro-check: allow[DB101] snapshots are opt-in
    # repro-check: allow[SHM202] close handled by the caller
    dst = SharedArray.create(graph.dst)

``allow[*]`` suppresses every rule on that line.  A reason after the
bracket is conventional (and what review should insist on), but not
enforced.

Baseline
--------
A baseline file (JSON) records known findings by a line-insensitive key
(``path::rule::message``) so CI fails only on *new* findings while the
backlog is burned down.  ``python -m repro check --write-baseline``
regenerates it; an empty baseline means the tree is clean.
"""

from __future__ import annotations

import ast
import json
import re
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Inline suppression marker: ``# repro-check: allow[RULE1,RULE2] reason``.
_SUPPRESS_RE = re.compile(r"#\s*repro-check:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-insensitive identity used by the baseline file (stable
        across unrelated edits that only shift line numbers)."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


def suppression_table(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Build the line -> allowed-rule-ids table for one file's lines
    (shared by :class:`Module` and the cached-file path, which applies
    suppressions to project findings without re-parsing)."""
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = {
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        }
        table.setdefault(lineno, set()).update(ids)
        if text.lstrip().startswith("#"):
            table.setdefault(lineno + 1, set()).update(ids)
    return table


def is_suppressed_by(
    finding: "Finding", table: Dict[int, Set[str]]
) -> bool:
    allowed = table.get(finding.line, ())
    return "*" in allowed or finding.rule_id in allowed


class Module:
    """One parsed source file handed to the rules."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._suppressions: Optional[Dict[int, Set[str]]] = None

    @property
    def basename(self) -> str:
        return Path(self.path).name

    def suppressions(self) -> Dict[int, Set[str]]:
        """Mapping line -> rule ids allowed on that line (``"*"`` = all).

        A standalone suppression comment also covers the line below it,
        so the comment can sit above long statements.
        """
        if self._suppressions is None:
            self._suppressions = suppression_table(self.lines)
        return self._suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        return is_suppressed_by(finding, self.suppressions())


class LintRule(ABC):
    """One mechanical check.  Subclasses set the class attributes and
    implement :meth:`check`.

    ``basenames`` optionally restricts the rule to files with those
    names (the double-buffer rules only make sense inside the kernel
    modules); ``None`` means the rule is structural and runs everywhere.
    """

    rule_id: str = "RULE000"
    severity: str = "error"
    description: str = ""
    basenames: Optional[frozenset] = None
    #: True for cross-module rules (see
    #: :class:`repro.check.callgraph.ProjectRule`); the engine runs
    #: them once per invocation over the project index instead of once
    #: per module.
    project: bool = False

    def applies_to(self, module: Module) -> bool:
        return self.basenames is None or module.basename in self.basenames

    def configure(self, config: Optional[dict]) -> None:
        """Receive the resolved ``[tool.repro-check]`` config before a
        run; per-module rules usually ignore it."""

    @abstractmethod
    def check(self, module: Module) -> Iterator[Finding]:
        """Yield the rule's findings for one module."""

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# shared AST helpers (used by the concrete rules)
# ----------------------------------------------------------------------

def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` at the bottom of an attribute/subscript chain,
    e.g. ``self._slabs.acquire`` -> ``self``, ``D[0][1]`` -> ``D``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a call target, e.g.
    ``np.zeros``, ``SharedArray.create``, ``self._slabs.acquire``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(dotted_name(node.func) + "()")
    return ".".join(reversed(parts))


def name_chain(node: ast.AST) -> str:
    """Lower-cased dotted chain for fuzzy receiver matching."""
    return dotted_name(node).lower()


def param_names(fn: ast.AST) -> List[str]:
    """All parameter names of a function definition."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def walk_function(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas
    (a closure has its own scope and, usually, its own contract)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def local_names(fn: ast.AST) -> Set[str]:
    """Names bound by plain assignments / for targets / with-as inside
    the function (used to exempt locals from parameter-mutation rules)."""
    out: Set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)

    for node in walk_function(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            collect_target(node.target)
        elif isinstance(node, ast.For):
            collect_target(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            collect_target(node.optional_vars)
    return out


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def load_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; returns ``{baseline_key: count}``."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a repro-check baseline file")
    return {str(k): int(v) for k, v in payload["findings"].items()}


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Write the baseline covering ``findings`` (post-suppression)."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    payload = {
        "version": 1,
        "comment": (
            "Known repro-check findings; CI fails only on findings not "
            "recorded here. Regenerate with: "
            "python -m repro check src/ --write-baseline"
        ),
        "findings": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


class StaleBaselineError(ValueError):
    """The baseline names a rule id that no longer exists."""


def validate_baseline(
    baseline: Dict[str, int], known_rule_ids: Set[str]
) -> None:
    """Fail loudly when a baselined rule id has left the registry.

    Silently ignoring such keys would let the count-decrement machinery
    "rebase" debt onto a rule that can never fire again, hiding the
    fact that the baseline is stale; the fix is to regenerate it.
    """
    stale = sorted(
        {
            key.split("::")[1]
            for key in baseline
            if key.count("::") >= 2
            and key.split("::")[1] not in known_rule_ids
        }
    )
    malformed = [key for key in baseline if key.count("::") < 2]
    if malformed:
        raise StaleBaselineError(
            f"baseline keys not in path::rule::message form: {malformed[:3]}"
        )
    if stale:
        raise StaleBaselineError(
            f"baseline references retired rule ids {stale}; regenerate it "
            "with: python -m repro check src/ --write-baseline"
        )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

@dataclass
class CheckReport:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    cache_hits: int = 0
    files_reanalyzed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no new findings, no parse errors)."""
        return not self.findings and not self.parse_errors

    @property
    def all_findings(self) -> List[Finding]:
        return self.parse_errors + self.findings

    def per_rule_counts(self) -> Dict[str, int]:
        counts = {rule_id: 0 for rule_id in self.rules_run}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    # -- renderers -----------------------------------------------------
    def render_text(self) -> str:
        lines = [f.render() for f in self.all_findings]
        total = len(self.all_findings)
        lines.append(
            f"{total} finding{'s' if total != 1 else ''} "
            f"({self.suppressed} suppressed, {len(self.baselined)} "
            f"baselined) in {self.files_scanned} files"
        )
        return "\n".join(lines)

    def render_stats(self) -> str:
        """The ``--stats`` trend summary printed in CI logs."""
        rows = sorted(self.per_rule_counts().items())
        width = max((len(r) for r, _ in rows), default=4)
        lines = ["repro-check stats"]
        for rule_id, count in rows:
            lines.append(f"  {rule_id:<{width}}  {count}")
        lines.append(
            f"  files scanned: {self.files_scanned}, suppressed: "
            f"{self.suppressed}, baselined: {len(self.baselined)}, "
            f"runtime: {self.duration_s * 1e3:.1f} ms"
        )
        lines.append(
            f"  cache hits: {self.cache_hits}, reanalyzed: "
            f"{self.files_reanalyzed}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "findings": [
                {
                    "rule": f.rule_id,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in self.all_findings
            ],
            "stats": {
                "files_scanned": self.files_scanned,
                "suppressed": self.suppressed,
                "baselined": len(self.baselined),
                "per_rule": self.per_rule_counts(),
                "duration_s": self.duration_s,
                "cache_hits": self.cache_hits,
                "files_reanalyzed": self.files_reanalyzed,
            },
        }

    def to_sarif(self, rules: Sequence[LintRule]) -> dict:
        """SARIF 2.1.0 payload (the format code-scanning UIs ingest)."""
        by_id = {r.rule_id: r for r in rules}
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-check",
                            "informationUri": "https://example.invalid/repro",
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {
                                        "text": by_id[rule_id].description
                                    },
                                }
                                for rule_id in sorted(by_id)
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": f.rule_id,
                            "level": (
                                "error" if f.severity == "error" else "warning"
                            ),
                            "message": {"text": f.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": f.path},
                                        "region": {
                                            "startLine": f.line,
                                            "startColumn": f.col,
                                        },
                                    }
                                }
                            ],
                        }
                        for f in self.all_findings
                    ],
                }
            ],
        }


class CheckEngine:
    """Run a rule set over files and directories.

    ``rules`` may mix per-module :class:`LintRule`\\ s and cross-module
    project rules (``rule.project`` is True); the engine partitions
    them itself.  ``config`` is the ``[tool.repro-check]`` table --
    pass None to auto-discover the nearest ``pyproject.toml`` above the
    scanned paths.  ``cache_path`` enables the content-addressed
    incremental cache for :meth:`check_paths`.
    """

    def __init__(
        self,
        rules: Optional[Sequence[LintRule]] = None,
        *,
        config: Optional[dict] = None,
        cache_path: Optional[str] = None,
    ) -> None:
        if rules is None:
            from repro.check.rules import all_rules

            rules = all_rules()
        for rule in rules:
            if rule.severity not in _SEVERITIES:
                raise ValueError(
                    f"{rule.rule_id}: severity must be one of {_SEVERITIES}, "
                    f"got {rule.severity!r}"
                )
        self.rules = list(rules)
        self.config = config
        self.cache_path = cache_path

    @property
    def local_rules(self) -> List[LintRule]:
        return [r for r in self.rules if not getattr(r, "project", False)]

    @property
    def project_rules(self) -> List[LintRule]:
        return [r for r in self.rules if getattr(r, "project", False)]

    def _known_rule_ids(self) -> Set[str]:
        # only the *selected* rules can ever service a baseline entry;
        # an entry for anything else could never decrement, so treating
        # it as known would hide a stale baseline
        return {r.rule_id for r in self.rules} | {"PARSE"}

    # ------------------------------------------------------------------
    def _run_local(self, module: Module) -> Tuple[List[Finding], int]:
        kept: List[Finding] = []
        suppressed = 0
        for rule in self.local_rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if module.is_suppressed(finding):
                    suppressed += 1
                else:
                    kept.append(finding)
        return kept, suppressed

    def check_source(
        self, path: str, source: str
    ) -> Tuple[List[Finding], int]:
        """Run every applicable rule over one in-memory module; project
        rules see a single-module index (so intra-module lock order,
        async reachability etc. still fire).

        Returns ``(findings, suppressed_count)``; parse failures raise
        ``SyntaxError`` (the path-walking entry point converts them to
        findings instead).
        """
        from repro.check.callgraph import ProjectIndex, build_module_summary

        module = Module(path, source)
        kept, suppressed = self._run_local(module)
        config = self.config or {}
        index = ProjectIndex(
            {path: build_module_summary(module)}, config
        )
        for rule in self.project_rules:
            rule.configure(config)
            for finding in rule.check_project(index):
                if module.is_suppressed(finding):
                    suppressed += 1
                else:
                    kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return kept, suppressed

    def check_paths(
        self,
        paths: Sequence[str],
        baseline: Optional[Dict[str, int]] = None,
        restrict: Optional[Set[str]] = None,
    ) -> CheckReport:
        """Walk ``paths`` (files or directories) and lint every ``.py``.

        ``restrict`` limits *reported* findings to the given posix
        paths (``--changed-only``); every file is still summarised so
        the cross-module rules see the whole project.
        """
        from repro.check.cache import (
            CheckCache,
            findings_to_json,
            pack_fingerprint,
            source_digest,
        )
        from repro.check.callgraph import (
            ModuleSummary,
            ProjectIndex,
            build_module_summary,
        )

        started = time.perf_counter()
        report = CheckReport(rules_run=[r.rule_id for r in self.rules])
        if self.config is not None:
            config = self.config
        else:
            from repro.check.rules.layering import load_check_config

            config = load_check_config(paths[0] if paths else None)
        if baseline:
            validate_baseline(baseline, self._known_rule_ids())
        remaining = dict(baseline or {})

        files = self._collect(paths)
        cache = None
        if self.cache_path:
            fingerprint = pack_fingerprint(
                sorted(r.rule_id for r in self.rules), config
            )
            cache = CheckCache(self.cache_path, fingerprint)

        summaries: Dict[str, "ModuleSummary"] = {}
        tables: Dict[str, Dict[int, Set[str]]] = {}
        collected: List[Finding] = []
        for file_path in files:
            posix = file_path.as_posix()
            report.files_scanned += 1
            source = file_path.read_text()
            digest = source_digest(source)
            entry = cache.get(posix, digest) if cache else None
            if entry is not None:
                try:
                    if entry.get("parse_error"):
                        report.cache_hits += 1
                        report.parse_errors.append(
                            Finding(**entry["parse_error"])
                        )
                        continue
                    summaries[posix] = ModuleSummary.from_json(
                        entry["summary"]
                    )
                except (KeyError, TypeError, ValueError):
                    entry = None  # torn/stale entry: recompute
                else:
                    report.cache_hits += 1
                    report.suppressed += entry["suppressed"]
                    tables[posix] = {
                        int(line): set(ids)
                        for line, ids in entry["suppressions"].items()
                    }
                    collected.extend(
                        Finding(**f) for f in entry["findings"]
                    )
                    continue
            report.files_reanalyzed += 1
            try:
                module = Module(posix, source)
            except SyntaxError as exc:
                parse_finding = Finding(
                    rule_id="PARSE",
                    severity="error",
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"could not parse: {exc.msg}",
                )
                report.parse_errors.append(parse_finding)
                if cache:
                    cache.put(posix, digest, {
                        "parse_error": findings_to_json([parse_finding])[0],
                    })
                continue
            findings, suppressed = self._run_local(module)
            summary = build_module_summary(module)
            summaries[posix] = summary
            tables[posix] = module.suppressions()
            report.suppressed += suppressed
            collected.extend(findings)
            if cache:
                cache.put(posix, digest, {
                    "findings": findings_to_json(findings),
                    "suppressed": suppressed,
                    "suppressions": {
                        str(line): sorted(ids)
                        for line, ids in module.suppressions().items()
                    },
                    "summary": summary.to_json(),
                })

        # cross-module rules always run, over cached + fresh summaries
        index = ProjectIndex(summaries, config)
        for rule in self.project_rules:
            rule.configure(config)
            for finding in rule.check_project(index):
                table = tables.get(finding.path, {})
                if is_suppressed_by(finding, table):
                    report.suppressed += 1
                else:
                    collected.append(finding)

        if restrict is not None:
            collected = [f for f in collected if f.path in restrict]
            report.parse_errors = [
                f for f in report.parse_errors if f.path in restrict
            ]
        collected.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        for finding in collected:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        if cache:
            cache.prune([p.as_posix() for p in files])
            cache.save()
        report.duration_s = time.perf_counter() - started
        return report

    @staticmethod
    def _collect(paths: Sequence[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {raw}")
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
        return files
