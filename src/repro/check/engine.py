"""The AST-walking lint framework behind ``python -m repro check``.

The engine is deliberately small: a :class:`LintRule` receives one
parsed :class:`Module` (path, source, AST) and yields
:class:`Finding`\\ s; :class:`CheckEngine` walks the requested paths,
runs every applicable rule, applies inline suppressions and an optional
committed baseline, and renders the surviving findings as text, JSON or
SARIF.

Suppression syntax
------------------
A finding is suppressed by a trailing comment on the offending line (or
the line directly above it)::

    snap = cur.copy()  # repro-check: allow[DB101] snapshots are opt-in
    # repro-check: allow[SHM202] close handled by the caller
    dst = SharedArray.create(graph.dst)

``allow[*]`` suppresses every rule on that line.  A reason after the
bracket is conventional (and what review should insist on), but not
enforced.

Baseline
--------
A baseline file (JSON) records known findings by a line-insensitive key
(``path::rule::message``) so CI fails only on *new* findings while the
backlog is burned down.  ``python -m repro check --write-baseline``
regenerates it; an empty baseline means the tree is clean.
"""

from __future__ import annotations

import ast
import json
import re
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Inline suppression marker: ``# repro-check: allow[RULE1,RULE2] reason``.
_SUPPRESS_RE = re.compile(r"#\s*repro-check:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-insensitive identity used by the baseline file (stable
        across unrelated edits that only shift line numbers)."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


class Module:
    """One parsed source file handed to the rules."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._suppressions: Optional[Dict[int, Set[str]]] = None

    @property
    def basename(self) -> str:
        return Path(self.path).name

    def suppressions(self) -> Dict[int, Set[str]]:
        """Mapping line -> rule ids allowed on that line (``"*"`` = all).

        A standalone suppression comment also covers the line below it,
        so the comment can sit above long statements.
        """
        if self._suppressions is None:
            table: Dict[int, Set[str]] = {}
            for lineno, text in enumerate(self.lines, start=1):
                match = _SUPPRESS_RE.search(text)
                if not match:
                    continue
                ids = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                table.setdefault(lineno, set()).update(ids)
                if text.lstrip().startswith("#"):
                    table.setdefault(lineno + 1, set()).update(ids)
            self._suppressions = table
        return self._suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        allowed = self.suppressions().get(finding.line, ())
        return "*" in allowed or finding.rule_id in allowed


class LintRule(ABC):
    """One mechanical check.  Subclasses set the class attributes and
    implement :meth:`check`.

    ``basenames`` optionally restricts the rule to files with those
    names (the double-buffer rules only make sense inside the kernel
    modules); ``None`` means the rule is structural and runs everywhere.
    """

    rule_id: str = "RULE000"
    severity: str = "error"
    description: str = ""
    basenames: Optional[frozenset] = None

    def applies_to(self, module: Module) -> bool:
        return self.basenames is None or module.basename in self.basenames

    @abstractmethod
    def check(self, module: Module) -> Iterator[Finding]:
        """Yield the rule's findings for one module."""

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# shared AST helpers (used by the concrete rules)
# ----------------------------------------------------------------------

def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` at the bottom of an attribute/subscript chain,
    e.g. ``self._slabs.acquire`` -> ``self``, ``D[0][1]`` -> ``D``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a call target, e.g.
    ``np.zeros``, ``SharedArray.create``, ``self._slabs.acquire``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(dotted_name(node.func) + "()")
    return ".".join(reversed(parts))


def name_chain(node: ast.AST) -> str:
    """Lower-cased dotted chain for fuzzy receiver matching."""
    return dotted_name(node).lower()


def param_names(fn: ast.AST) -> List[str]:
    """All parameter names of a function definition."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def walk_function(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas
    (a closure has its own scope and, usually, its own contract)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def local_names(fn: ast.AST) -> Set[str]:
    """Names bound by plain assignments / for targets / with-as inside
    the function (used to exempt locals from parameter-mutation rules)."""
    out: Set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)

    for node in walk_function(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            collect_target(node.target)
        elif isinstance(node, ast.For):
            collect_target(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            collect_target(node.optional_vars)
    return out


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def load_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; returns ``{baseline_key: count}``."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a repro-check baseline file")
    return {str(k): int(v) for k, v in payload["findings"].items()}


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Write the baseline covering ``findings`` (post-suppression)."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    payload = {
        "version": 1,
        "comment": (
            "Known repro-check findings; CI fails only on findings not "
            "recorded here. Regenerate with: "
            "python -m repro check src/ --write-baseline"
        ),
        "findings": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

@dataclass
class CheckReport:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no new findings, no parse errors)."""
        return not self.findings and not self.parse_errors

    @property
    def all_findings(self) -> List[Finding]:
        return self.parse_errors + self.findings

    def per_rule_counts(self) -> Dict[str, int]:
        counts = {rule_id: 0 for rule_id in self.rules_run}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    # -- renderers -----------------------------------------------------
    def render_text(self) -> str:
        lines = [f.render() for f in self.all_findings]
        total = len(self.all_findings)
        lines.append(
            f"{total} finding{'s' if total != 1 else ''} "
            f"({self.suppressed} suppressed, {len(self.baselined)} "
            f"baselined) in {self.files_scanned} files"
        )
        return "\n".join(lines)

    def render_stats(self) -> str:
        """The ``--stats`` trend summary printed in CI logs."""
        rows = sorted(self.per_rule_counts().items())
        width = max((len(r) for r, _ in rows), default=4)
        lines = ["repro-check stats"]
        for rule_id, count in rows:
            lines.append(f"  {rule_id:<{width}}  {count}")
        lines.append(
            f"  files scanned: {self.files_scanned}, suppressed: "
            f"{self.suppressed}, baselined: {len(self.baselined)}, "
            f"runtime: {self.duration_s * 1e3:.1f} ms"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "findings": [
                {
                    "rule": f.rule_id,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in self.all_findings
            ],
            "stats": {
                "files_scanned": self.files_scanned,
                "suppressed": self.suppressed,
                "baselined": len(self.baselined),
                "per_rule": self.per_rule_counts(),
                "duration_s": self.duration_s,
            },
        }

    def to_sarif(self, rules: Sequence[LintRule]) -> dict:
        """SARIF 2.1.0 payload (the format code-scanning UIs ingest)."""
        by_id = {r.rule_id: r for r in rules}
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-check",
                            "informationUri": "https://example.invalid/repro",
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {
                                        "text": by_id[rule_id].description
                                    },
                                }
                                for rule_id in sorted(by_id)
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": f.rule_id,
                            "level": (
                                "error" if f.severity == "error" else "warning"
                            ),
                            "message": {"text": f.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": f.path},
                                        "region": {
                                            "startLine": f.line,
                                            "startColumn": f.col,
                                        },
                                    }
                                }
                            ],
                        }
                        for f in self.all_findings
                    ],
                }
            ],
        }


class CheckEngine:
    """Run a rule set over files and directories."""

    def __init__(self, rules: Optional[Sequence[LintRule]] = None):
        if rules is None:
            from repro.check.rules import all_rules

            rules = all_rules()
        for rule in rules:
            if rule.severity not in _SEVERITIES:
                raise ValueError(
                    f"{rule.rule_id}: severity must be one of {_SEVERITIES}, "
                    f"got {rule.severity!r}"
                )
        self.rules = list(rules)

    # ------------------------------------------------------------------
    def check_source(
        self, path: str, source: str
    ) -> Tuple[List[Finding], int]:
        """Run every applicable rule over one in-memory module.

        Returns ``(findings, suppressed_count)``; parse failures raise
        ``SyntaxError`` (the path-walking entry point converts them to
        findings instead).
        """
        module = Module(path, source)
        kept: List[Finding] = []
        suppressed = 0
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if module.is_suppressed(finding):
                    suppressed += 1
                else:
                    kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return kept, suppressed

    def check_paths(
        self,
        paths: Sequence[str],
        baseline: Optional[Dict[str, int]] = None,
    ) -> CheckReport:
        """Walk ``paths`` (files or directories) and lint every ``.py``."""
        started = time.perf_counter()
        report = CheckReport(rules_run=[r.rule_id for r in self.rules])
        remaining = dict(baseline or {})
        for file_path in self._collect(paths):
            report.files_scanned += 1
            try:
                source = file_path.read_text()
                findings, suppressed = self.check_source(
                    file_path.as_posix(), source
                )
            except SyntaxError as exc:
                report.parse_errors.append(
                    Finding(
                        rule_id="PARSE",
                        severity="error",
                        path=file_path.as_posix(),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"could not parse: {exc.msg}",
                    )
                )
                continue
            report.suppressed += suppressed
            for finding in findings:
                key = finding.baseline_key
                if remaining.get(key, 0) > 0:
                    remaining[key] -= 1
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
        report.duration_s = time.perf_counter() - started
        return report

    @staticmethod
    def _collect(paths: Sequence[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {raw}")
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
        return files
