"""ASYNC: event-loop discipline for the serve gateway.

One blocking call on the loop's thread stalls *every* connection the
gateway is multiplexing, and a dropped coroutine fails silently -- the
two failure classes PR 8's asyncio front door made possible.  The four
rules here lean on the CFG (lockset across ``await``) and the project
callgraph (blocking work reachable *through* sync helpers).

========  ============================================================
ASYNC401  blocking call reachable from an ``async def`` without a
          thread-pool bridge (``run_in_executor`` / ``to_thread``)
ASYNC402  a coroutine called but never awaited/scheduled
ASYNC403  task handles dropped (``create_task`` result discarded) and
          ``call_soon_threadsafe`` unguarded against the loop-closed
          ``RuntimeError`` race
ASYNC404  ``await`` while holding a *sync* lock (blocks the loop for
          every other task contending for the lock)
========  ============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.callgraph import (
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
)
from repro.check.cfg import build_cfg, function_defs, walk_stmt_expr
from repro.check.dataflow import iter_event_states
from repro.check.domain import lockset_transfer
from repro.check.engine import Finding, LintRule, Module

#: ``(label, where, via-chain)`` -- the resolution of one reachability query.
_Hit = Tuple[str, str, Tuple[str, ...]]


class BlockingInAsyncRule(ProjectRule):
    """ASYNC401: blocking work on the event loop's thread.

    From every ``async def`` the rule follows statically resolvable
    *sync* call edges (awaited async callees are analysed as their own
    entry points) and flags the first thread-blocking call each chain
    reaches.  Calls handed to ``run_in_executor``/``to_thread`` never
    appear as call edges, so bridged work is naturally exempt.
    """

    rule_id = "ASYNC401"
    severity = "error"
    description = "async code must bridge blocking calls to a thread pool"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        self._memo: Dict[Tuple[str, str], Optional[_Hit]] = {}
        for summary in index.summaries():
            for info in summary.functions.values():
                if not info.is_async:
                    continue
                for site in info.blocking:
                    yield self.finding_at(
                        summary.path,
                        site.line,
                        site.col,
                        f"async {info.qualname!r} blocks the event loop on "
                        f"{site.label!r}; bridge it through run_in_executor "
                        "or asyncio.to_thread",
                    )
                for call in info.calls:
                    if call.awaited or call.wrapped:
                        continue
                    resolved = index.resolve(summary, info, call.token)
                    if resolved is None:
                        continue
                    tmod, tinfo = resolved
                    if tinfo.is_async:
                        continue
                    hit = self._first_blocking(index, tmod, tinfo)
                    if hit is None:
                        continue
                    label, where, via = hit
                    chain = " -> ".join((tinfo.qualname,) + via)
                    yield self.finding_at(
                        summary.path,
                        call.line,
                        call.col,
                        f"async {info.qualname!r} reaches blocking "
                        f"{label!r} via {chain} ({where}) without a "
                        "thread-pool bridge",
                    )

    def _first_blocking(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        info: FunctionInfo,
    ) -> Optional[_Hit]:
        key = (summary.path, info.qualname)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard
        hit: Optional[_Hit] = None
        if info.blocking:
            site = info.blocking[0]
            hit = (site.label, f"{summary.path}:{site.line}", ())
        else:
            for call in info.calls:
                resolved = index.resolve(summary, info, call.token)
                if resolved is None:
                    continue
                tmod, tinfo = resolved
                if tinfo.is_async:
                    continue
                sub = self._first_blocking(index, tmod, tinfo)
                if sub is not None:
                    label, where, via = sub
                    hit = (label, where, (tinfo.qualname,) + via)
                    break
        self._memo[key] = hit
        return hit


class UnawaitedCoroutineRule(ProjectRule):
    """ASYNC402: a coroutine constructed and thrown away.

    ``self._flush()`` as a bare statement builds a coroutine object and
    discards it -- the body never runs, and Python only tells you via a
    ``RuntimeWarning`` at GC time.  Resolvable calls to ``async def``\\ s
    must be awaited or handed to a scheduling wrapper
    (``create_task``/``gather``/...).
    """

    rule_id = "ASYNC402"
    severity = "error"
    description = "coroutines must be awaited or scheduled, never dropped"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for summary in index.summaries():
            for info in summary.functions.values():
                for call in info.calls:
                    if not call.bare or call.awaited or call.wrapped:
                        continue
                    resolved = index.resolve(summary, info, call.token)
                    if resolved is None or not resolved[1].is_async:
                        continue
                    yield self.finding_at(
                        summary.path,
                        call.line,
                        call.col,
                        f"{info.qualname!r} calls coroutine "
                        f"{call.token!r} without awaiting or scheduling "
                        "it; the body never runs",
                    )


_SPAWNERS = frozenset({"create_task", "ensure_future",
                       "run_coroutine_threadsafe"})

_BROAD_CATCHES = frozenset({"RuntimeError", "Exception", "BaseException"})


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _catches_runtime_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else None
        )
        if name in _BROAD_CATCHES:
            return True
    return False


def _suppresses_runtime_error(item: ast.withitem) -> bool:
    expr = item.context_expr
    if not isinstance(expr, ast.Call) or _call_name(expr) != "suppress":
        return False
    for arg in expr.args:
        name = arg.attr if isinstance(arg, ast.Attribute) else (
            arg.id if isinstance(arg, ast.Name) else None
        )
        if name in _BROAD_CATCHES:
            return True
    return False


class DroppedHandleRule(LintRule):
    """ASYNC403: loop-scheduling results that must not be discarded.

    Two shapes: (a) ``asyncio.create_task(...)`` / ``ensure_future`` /
    ``run_coroutine_threadsafe`` as a bare statement drops the only
    strong reference to the task -- the loop keeps a *weak* one, so the
    task can be garbage-collected mid-flight; (b)
    ``loop.call_soon_threadsafe(...)`` raises ``RuntimeError`` if the
    loop closed between the check and the call (the shutdown race), so
    every call site must sit under a ``try``/``suppress`` catching it.
    A handler around a ``lambda`` does not count: the lambda body runs
    later, outside the handler.
    """

    rule_id = "ASYNC403"
    severity = "error"
    description = "keep task handles; guard call_soon_threadsafe shutdown"

    def check(self, module: Module) -> Iterator[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                if _call_name(node.value) in _SPAWNERS:
                    findings.append(
                        self.finding(
                            module,
                            node.value,
                            f"result of {_call_name(node.value)!r} is "
                            "dropped; keep the task handle so the task "
                            "cannot be garbage-collected mid-flight "
                            "and its exception is observed",
                        )
                    )
            if isinstance(node, ast.Call):
                if (
                    _call_name(node) == "call_soon_threadsafe"
                    and not guarded
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "call_soon_threadsafe can raise RuntimeError "
                            "when the loop closes concurrently; wrap it "
                            "in try/except RuntimeError",
                        )
                    )
            if isinstance(node, ast.Try):
                body_guarded = guarded or any(
                    _catches_runtime_error(h) for h in node.handlers
                )
                for child in node.body + node.orelse:
                    visit(child, body_guarded)
                for handler in node.handlers:
                    for child in handler.body:
                        visit(child, guarded)
                for child in node.finalbody:
                    visit(child, guarded)
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                body_guarded = guarded or any(
                    _suppresses_runtime_error(i) for i in node.items
                )
                for item in node.items:
                    visit(item.context_expr, guarded)
                for child in node.body:
                    visit(child, body_guarded)
                return
            if isinstance(
                node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # the body runs later, outside any enclosing handler
                for child in ast.iter_child_nodes(node):
                    visit(child, False)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        visit(module.tree, False)
        return iter(findings)


class AwaitUnderSyncLockRule(LintRule):
    """ASYNC404: ``await`` while holding a sync lock.

    A ``threading.Lock`` held across an ``await`` is held for as long
    as the *loop* takes to resume the task -- every thread contending
    for the lock blocks on scheduler latency, and a second task on the
    same loop trying to take the lock deadlocks the loop outright.
    Uses the lockset fixpoint, so releasing before the ``await`` on
    every path is recognised; ``asyncio`` locks (``async with``) are
    exempt.
    """

    rule_id = "ASYNC404"
    severity = "error"
    description = "never await while holding a synchronous lock"

    def check(self, module: Module) -> Iterator[Finding]:
        for qual, fn in function_defs(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(fn)
            reported: Set[int] = set()
            for event, state in iter_event_states(cfg, lockset_transfer):
                if not state:
                    continue
                held = ", ".join(sorted(str(t) for t in state))
                if event[0] == "enter_with" and event[2]:
                    item = event[1]
                    if id(item) not in reported:
                        reported.add(id(item))
                        yield self.finding(
                            module,
                            item.context_expr,
                            f"{qual!r} enters an async context while "
                            f"holding sync lock {held}; release it first",
                        )
                elif event[0] == "stmt":
                    for sub in walk_stmt_expr(event[1]):
                        if not isinstance(sub, ast.Await):
                            continue
                        if id(sub) in reported:
                            continue
                        reported.add(id(sub))
                        yield self.finding(
                            module,
                            sub,
                            f"{qual!r} awaits while holding sync lock "
                            f"{held}; the loop stalls every contender "
                            "until this task resumes",
                        )
