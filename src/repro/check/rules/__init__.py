"""The repo-specific rule set.

=======  ========  ==========================================================
id       severity  checks
=======  ========  ==========================================================
CROW001  error     a GCA rule method mutates its cell/neighbor view
CROW002  error     a GCA rule method mutates shared state through ``self``
CROW003  error     a Hirschberg step function mutates an input vector
DB101    warning   allocation inside a generation loop of a kernel module
DB102    error     a fused kernel reads the spare (write) buffer
DB103    error     ``apply_generation`` mutates the read-only field ``D``
SHM201   error     a shared-memory acquisition that can never be released
SHM202   warning   consecutive shm acquisitions without an error-path guard
SHM203   error     an ``np.memmap`` that is never unmapped
SHM204   error     a chunk worker writes a partitioned slab off-slice
LOCK301  error     a blocking pipe/queue/fork call while holding a lock
FORK302  warning   a thread is spawned before a worker process is forked
=======  ========  ==========================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.check.engine import LintRule
from repro.check.rules.crow import (
    NeighborWriteRule,
    SelfStateWriteRule,
    StepInplaceRule,
)
from repro.check.rules.double_buffer import (
    LoopAllocationRule,
    ReadFieldWriteRule,
    WriteBufferReadRule,
)
from repro.check.rules.concurrency import (
    ChunkOwnerWriteRule,
    LockAcrossBlockingRule,
    MemmapDisciplineRule,
    ThreadBeforeForkRule,
    UnguardedMultiAcquireRule,
    UnreleasedSegmentRule,
)

_ALL = (
    NeighborWriteRule,
    SelfStateWriteRule,
    StepInplaceRule,
    LoopAllocationRule,
    WriteBufferReadRule,
    ReadFieldWriteRule,
    UnreleasedSegmentRule,
    UnguardedMultiAcquireRule,
    MemmapDisciplineRule,
    ChunkOwnerWriteRule,
    LockAcrossBlockingRule,
    ThreadBeforeForkRule,
)


def all_rules(only: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the full rule set (or the ``only`` subset by id)."""
    rules: List[LintRule] = [cls() for cls in _ALL]
    if only is None:
        return rules
    wanted = {rule_id.strip().upper() for rule_id in only if rule_id.strip()}
    unknown = wanted - {r.rule_id for r in rules}
    if unknown:
        raise ValueError(
            f"unknown rule ids {sorted(unknown)}; have {rule_ids()}"
        )
    return [r for r in rules if r.rule_id in wanted]


def rule_ids() -> List[str]:
    """All known rule ids, sorted."""
    return sorted(cls.rule_id for cls in _ALL)
