"""The repo-specific rule set.

========  ========  ==========================================================
id        severity  checks
========  ========  ==========================================================
CROW001   error     a GCA rule method mutates its cell/neighbor view
CROW002   error     a GCA rule method mutates shared state through ``self``
CROW003   error     a Hirschberg step function mutates an input vector
DB101     warning   allocation inside a generation loop of a kernel module
DB102     error     a fused kernel reads the spare (write) buffer
DB103     error     ``apply_generation`` mutates the read-only field ``D``
SHM201    error     a shared-memory acquisition that can never be released
SHM202    warning   consecutive shm acquisitions without an error-path guard
SHM203    error     an ``np.memmap`` never unmapped (local) or handed to a
                    helper that forgets it (cross-function, via callgraph)
SHM204    error     a chunk worker writes a partitioned slab off-slice
LOCK301   error     a blocking pipe/queue/spawn call on a path holding a lock
                    (lockset dataflow over the CFG)
LOCK302   error     the same lock pair acquired in both orders (cross-module)
FORK302   warning   a thread is spawned before a worker process is forked
ASYNC401  error     blocking call reachable from ``async def`` unbridged
ASYNC402  error     a coroutine called but never awaited or scheduled
ASYNC403  error     task handle dropped / unguarded call_soon_threadsafe
ASYNC404  error     ``await`` while holding a synchronous lock
PROTO501  error     wire-decoded size reaches an allocation unvalidated
PROTO502  error     struct format vs size comments / pack arity drift
ARCH601   error     a top-level import crosses the declared layer map
========  ========  ==========================================================

Rules marked cross-module are :class:`~repro.check.callgraph.ProjectRule`\\ s:
they run once per engine invocation over the project index instead of
once per file, and therefore see relationships (lock order between
``serve/executor.py`` and ``analysis/shm.py``, blocking work two sync
frames below an ``async def``) that no per-file pass can.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.check.engine import LintRule
from repro.check.rules.crow import (
    NeighborWriteRule,
    SelfStateWriteRule,
    StepInplaceRule,
)
from repro.check.rules.double_buffer import (
    LoopAllocationRule,
    ReadFieldWriteRule,
    WriteBufferReadRule,
)
from repro.check.rules.concurrency import (
    ChunkOwnerWriteRule,
    MemmapDisciplineRule,
    MemmapHandoffRule,
    ThreadBeforeForkRule,
    UnguardedMultiAcquireRule,
    UnreleasedSegmentRule,
)
from repro.check.rules.lockset import (
    LockAcrossBlockingRule,
    LockOrderRule,
)
from repro.check.rules.async_rules import (
    AwaitUnderSyncLockRule,
    BlockingInAsyncRule,
    DroppedHandleRule,
    UnawaitedCoroutineRule,
)
from repro.check.rules.wire import (
    FrameTaintRule,
    StructLayoutRule,
)
from repro.check.rules.layering import ArchLayerRule

_ALL = (
    NeighborWriteRule,
    SelfStateWriteRule,
    StepInplaceRule,
    LoopAllocationRule,
    WriteBufferReadRule,
    ReadFieldWriteRule,
    UnreleasedSegmentRule,
    UnguardedMultiAcquireRule,
    MemmapDisciplineRule,
    MemmapHandoffRule,
    ChunkOwnerWriteRule,
    LockAcrossBlockingRule,
    LockOrderRule,
    ThreadBeforeForkRule,
    BlockingInAsyncRule,
    UnawaitedCoroutineRule,
    DroppedHandleRule,
    AwaitUnderSyncLockRule,
    FrameTaintRule,
    StructLayoutRule,
    ArchLayerRule,
)


def all_rules(only: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the full rule set (or the ``only`` subset by id)."""
    rules: List[LintRule] = [cls() for cls in _ALL]
    if only is None:
        return rules
    wanted = {rule_id.strip().upper() for rule_id in only if rule_id.strip()}
    unknown = wanted - {r.rule_id for r in rules}
    if unknown:
        raise ValueError(
            f"unknown rule ids {sorted(unknown)}; have {rule_ids()}"
        )
    return [r for r in rules if r.rule_id in wanted]


def rule_ids() -> List[str]:
    """All known rule ids, sorted (SHM203 has a local and a
    cross-function half sharing one id)."""
    return sorted({cls.rule_id for cls in _ALL})
