"""LOCKSET: path-sensitive lock discipline.

LOCK301 (upgraded): the original rule flagged blocking calls *textually*
inside a ``with lock:`` block, which both missed
``lock.acquire()``-style holds and false-positived on code that exits
the ``with`` before blocking.  The v2 rule runs the lockset dataflow
fixpoint over the function's CFG and flags a blocking call only when
some path actually reaches it with a lock held.

LOCK302: inconsistent lock acquisition *order*.  Two code paths taking
the same pair of locks in opposite orders deadlock the first time they
interleave; the edges come from the callgraph summaries, so the two
paths may live in different modules (the executor/shm pair is the
motivating case).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.callgraph import ProjectIndex, ProjectRule
from repro.check.cfg import build_cfg, function_defs
from repro.check.dataflow import iter_event_states
from repro.check.domain import blocking_calls_in, lockset_transfer
from repro.check.engine import Finding, LintRule, Module


class LockAcrossBlockingRule(LintRule):
    """LOCK301: a blocking pipe/queue/spawn call on a path holding a lock.

    Inside a critical section a ``conn.recv()`` (or worker spawn, which
    forks and builds pipes) stalls every other thread contending for
    the lock for as long as the peer takes -- the exact shape of the
    pool-wide stall the monitor loop once caused.  ``.wait()`` is
    exempt: condition variables release the lock while waiting.
    Release before blocking (on every path) and the rule stays quiet.
    """

    rule_id = "LOCK301"
    severity = "error"
    description = "no blocking pipe/queue/spawn call while a lock is held"

    def check(self, module: Module) -> Iterator[Finding]:
        for qual, fn in function_defs(module.tree):
            cfg = build_cfg(fn)
            reported: Set[int] = set()
            for event, state in iter_event_states(cfg, lockset_transfer):
                if event[0] != "stmt" or not state:
                    continue
                for call, label in blocking_calls_in(event[1]):
                    if id(call) in reported:
                        continue
                    reported.add(id(call))
                    held = ", ".join(sorted(str(t) for t in state))
                    yield self.finding(
                        module,
                        call,
                        f"{qual!r} calls blocking {label!r} while holding "
                        f"{held}; release the lock before blocking",
                    )


class LockOrderRule(ProjectRule):
    """LOCK302: the same pair of locks is taken in both orders.

    Every acquisition made while another lock is held contributes an
    edge ``held -> acquired`` (lock names are class-qualified, so
    ``PoolExecutor._lock`` and ``SlabPool._lock`` keep their identity
    across modules).  An edge pair ``A -> B`` and ``B -> A`` means two
    interleavable paths can each hold the lock the other wants.
    """

    rule_id = "LOCK302"
    severity = "error"
    description = "lock pairs must be acquired in one global order"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        # (held, acquired) -> list of (path, line, col)
        edges: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = {}
        for summary in index.summaries():
            for info in summary.functions.values():
                for order in info.lock_orders:
                    edges.setdefault(
                        (order.held, order.acquired), []
                    ).append((summary.path, order.line, order.col))
        seen: Set[Tuple[str, int, str, str]] = set()
        for (held, acquired), sites in sorted(edges.items()):
            reverse = edges.get((acquired, held))
            if not reverse:
                continue
            other = reverse[0]
            for path, line, col in sites:
                key = (path, line, held, acquired)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding_at(
                    path,
                    line,
                    col,
                    f"acquires {acquired} while holding {held}, but "
                    f"{other[0]}:{other[1]} acquires them in the opposite "
                    "order; pick one global order for this lock pair",
                )
