"""PROTO: wire-frame hardening for the binary serve protocol.

A length field decoded from an untrusted frame header that reaches an
allocation-sizing expression before being validated is a remote memory
amplifier: one crafted 40-byte header can demand a multi-gigabyte
``np.zeros``.  PROTO501 is a small flow-sensitive taint pass over the
CFG: ``struct.unpack`` results and header-parameter fields are taint
sources, allocation sizes / read lengths / slice bounds are sinks, and
a comparison mentioning the value (``if m > cap: raise``, ``assert``)
sanitises it on the paths beyond the test.

PROTO502 cross-checks the declared struct layouts themselves: the
``# NN`` byte-size comments against ``struct.calcsize``, and
``pack``/``unpack`` arity against the format's field count -- the
drift that silently shears every later field when someone widens one.

Both rules only engage in modules that import :mod:`struct`, so the
kernel code never pays for them.
"""

from __future__ import annotations

import ast
import re
import struct as struct_mod
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.check.cfg import Event, build_cfg, function_defs, walk_stmt_expr
from repro.check.dataflow import iter_event_states
from repro.check.engine import Finding, LintRule, Module, dotted_name

State = FrozenSet[Tuple[str, str]]

_HEADER_PARAM_NAMES = ("header", "hdr", "frame")
_SANITIZER_HINTS = ("valid", "check", "ensure", "clamp")
_ALLOC_FUNCS = frozenset({"empty", "zeros", "ones", "full"})
_READ_FUNCS = frozenset({"readexactly", "read_bytes", "read", "recv"})


def _module_imports_struct(module: Module) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(a.name == "struct" for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == "struct":
                return True
    return False


def _header_params(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for arg in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
        if arg.arg.lower() in _HEADER_PARAM_NAMES:
            names.add(arg.arg)
            continue
        ann = arg.annotation
        ann_name = None
        if isinstance(ann, ast.Name):
            ann_name = ann.id
        elif isinstance(ann, ast.Attribute):
            ann_name = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            ann_name = ann.value.split(".")[-1]
        if ann_name and ann_name.endswith("Header"):
            names.add(arg.arg)
    return names


class FrameTaintRule(LintRule):
    """PROTO501: unvalidated wire-header fields sizing allocations."""

    rule_id = "PROTO501"
    severity = "error"
    description = "wire-decoded sizes must be bounds-checked before use"

    def check(self, module: Module) -> Iterator[Finding]:
        if not _module_imports_struct(module):
            return
        for qual, fn in function_defs(module.tree):
            yield from self._check_function(module, qual, fn)

    # -- taint machinery ----------------------------------------------
    def _tokens_in(
        self, expr: ast.AST, header_params: Set[str]
    ) -> Set[str]:
        tokens: Set[str] = set()
        for sub in walk_stmt_expr(expr):
            if isinstance(sub, ast.Name):
                tokens.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                dotted = dotted_name(sub)
                parts = dotted.split(".")
                if len(parts) == 2 and parts[0] in header_params:
                    tokens.add(dotted)
        return tokens

    @staticmethod
    def _is_tainted(token: str, state: State, header_params: Set[str]) -> bool:
        if ("s", token) in state:
            return False
        if ("t", token) in state:
            return True
        return "." in token and token.split(".")[0] in header_params

    def _transfer(
        self, header_params: Set[str]
    ) -> Callable[[State, Event], State]:
        def transfer(state: State, event: Event) -> State:
            kind = event[0]
            if kind == "guard":
                expr = event[1]
                sanitized = set()
                for sub in walk_stmt_expr(expr):
                    if isinstance(sub, ast.Compare):
                        sanitized.update(
                            self._tokens_in(sub, header_params)
                        )
                if sanitized:
                    return state | {("s", tok) for tok in sanitized}
                return state
            if kind != "stmt":
                return state
            node = event[1]
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                names: List[str] = []
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Store
                        ):
                            names.append(sub.id)
                value = node.value
                if value is None:
                    return state
                if isinstance(value, ast.Call):
                    callee = dotted_name(value.func).split(".")[-1].lower()
                    if any(h in callee for h in _SANITIZER_HINTS):
                        # m = _validated_m(header.m): the validator's
                        # return value is trusted by construction
                        out = {
                            fact for fact in state
                            if fact[1] not in names
                        }
                        out.update(("s", name) for name in names)
                        return frozenset(out)
                from_unpack = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("unpack", "unpack_from")
                    for sub in walk_stmt_expr(value)
                )
                rhs_tainted = from_unpack or any(
                    self._is_tainted(tok, state, header_params)
                    for tok in self._tokens_in(value, header_params)
                )
                out = {
                    fact for fact in state if fact[1] not in names
                }
                if rhs_tainted:
                    out.update(("t", name) for name in names)
                return frozenset(out)
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                name = dotted_name(call.func).split(".")[-1].lower()
                if any(hint in name for hint in _SANITIZER_HINTS):
                    sanitized = set()
                    for arg in list(call.args) + [
                        k.value for k in call.keywords
                    ]:
                        sanitized.update(
                            self._tokens_in(arg, header_params)
                        )
                    if sanitized:
                        return state | {("s", t) for t in sanitized}
            return state

        return transfer

    # -- sinks ---------------------------------------------------------
    def _sink_exprs(
        self, node: ast.AST
    ) -> Iterator[Tuple[ast.AST, str, ast.AST]]:
        """``(sizing_expr, sink_kind, report_node)`` triples."""
        for sub in walk_stmt_expr(node):
            if isinstance(sub, ast.Call):
                last = dotted_name(sub.func).split(".")[-1]
                if last == "frombuffer":
                    for kw in sub.keywords:
                        if kw.arg == "count":
                            yield kw.value, "np.frombuffer count", sub
                elif last in _ALLOC_FUNCS and sub.args:
                    yield sub.args[0], f"np.{last} shape", sub
                elif last in ("bytes", "bytearray") and sub.args:
                    arg = sub.args[0]
                    if not isinstance(arg, (ast.Constant, ast.Bytes)):
                        yield arg, f"{last}() size", sub
                elif last in _READ_FUNCS and sub.args:
                    yield sub.args[0], f"{last}() length", sub
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.slice, ast.Slice
            ):
                for bound in (sub.slice.lower, sub.slice.upper):
                    if bound is not None and not isinstance(
                        bound, ast.Constant
                    ):
                        yield bound, "slice bound", sub

    def _check_function(
        self, module: Module, qual: str, fn: ast.AST
    ) -> Iterator[Finding]:
        header_params = _header_params(fn)
        cfg = build_cfg(fn)
        transfer = self._transfer(header_params)
        reported: Set[Tuple[int, str]] = set()
        for event, state in iter_event_states(cfg, transfer):
            if event[0] != "stmt":
                continue
            for sizing, kind, report in self._sink_exprs(event[1]):
                for token in sorted(
                    self._tokens_in(sizing, header_params)
                ):
                    if not self._is_tainted(token, state, header_params):
                        continue
                    key = (id(report), token)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.finding(
                        module,
                        report,
                        f"wire-decoded {token!r} reaches {kind} in "
                        f"{qual!r} before any bounds check; validate "
                        "it against the payload cap first",
                    )


# ----------------------------------------------------------------------
# PROTO502: struct layout consistency
# ----------------------------------------------------------------------

_SIZE_COMMENT_RE = re.compile(r"#\s*(\d+)\s*(?:bytes?)?\s*$")


def _format_fields(fmt: str) -> int:
    """Number of values ``pack``/``unpack`` exchange for a format."""
    count = 0
    repeat = ""
    for ch in fmt:
        if ch in "@=<>!":
            continue
        if ch.isdigit():
            repeat += ch
            continue
        if ch == "x":
            repeat = ""
            continue
        if ch in ("s", "p"):
            count += 1  # one bytes object regardless of repeat
        else:
            count += int(repeat) if repeat else 1
        repeat = ""
    return count


class StructLayoutRule(LintRule):
    """PROTO502: packed layouts must match their documented shape.

    Checks, for every ``NAME = struct.Struct("...")`` in the module:
    a trailing ``# NN`` size comment on ``X = NAME.size`` lines against
    ``struct.calcsize``; tuple-unpack arity of ``NAME.unpack(...)``
    against the format's field count; and ``NAME.pack(...)`` argument
    arity likewise.
    """

    rule_id = "PROTO502"
    severity = "error"
    description = "struct format, size comments and arity must agree"

    def check(self, module: Module) -> Iterator[Finding]:
        if not _module_imports_struct(module):
            return
        layouts: Dict[str, Tuple[str, int, int]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and dotted_name(value.func).split(".")[-1] == "Struct"
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)
            ):
                continue
            fmt = value.args[0].value
            try:
                size = struct_mod.calcsize(fmt)
            except struct_mod.error:
                continue
            layouts[target.id] = (fmt, size, _format_fields(fmt))
            line = module.lines[node.lineno - 1]
            match = _SIZE_COMMENT_RE.search(line)
            if match and int(match.group(1)) != size:
                yield self.finding(
                    module,
                    node,
                    f"size comment says {match.group(1)} bytes but "
                    f"struct.calcsize({fmt!r}) is {size}; fix the "
                    "comment or the format",
                )

        if not layouts:
            return
        for node in ast.walk(module.tree):
            yield from self._check_node(module, node, layouts)

    def _check_node(
        self,
        module: Module,
        node: ast.AST,
        layouts: Dict[str, Tuple[str, int, int]],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Attribute
        ):
            value = node.value
            if (
                value.attr == "size"
                and isinstance(value.value, ast.Name)
                and value.value.id in layouts
            ):
                fmt, size, _ = layouts[value.value.id]
                line = module.lines[node.lineno - 1]
                match = _SIZE_COMMENT_RE.search(line)
                if match and int(match.group(1)) != size:
                    yield self.finding(
                        module,
                        node,
                        f"size comment says {match.group(1)} bytes but "
                        f"struct.calcsize({fmt!r}) is {size}; fix the "
                        "comment or the format",
                    )
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            call = node.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("unpack", "unpack_from")
                and isinstance(func.value, ast.Name)
                and func.value.id in layouts
                and len(node.targets) == 1
                and isinstance(node.targets[0], (ast.Tuple, ast.List))
            ):
                fmt, _, nfields = layouts[func.value.id]
                got = len(node.targets[0].elts)
                if got != nfields:
                    yield self.finding(
                        module,
                        node,
                        f"unpacking {func.value.id} ({fmt!r}, {nfields} "
                        f"fields) into {got} names; every later field "
                        "shears",
                    )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pack"
                and isinstance(func.value, ast.Name)
                and func.value.id in layouts
                and not any(isinstance(a, ast.Starred) for a in node.args)
                and not node.keywords
            ):
                fmt, _, nfields = layouts[func.value.id]
                if node.args and len(node.args) != nfields:
                    yield self.finding(
                        module,
                        node,
                        f"{func.value.id}.pack() called with "
                        f"{len(node.args)} values but {fmt!r} has "
                        f"{nfields} fields",
                    )
