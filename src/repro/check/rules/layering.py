"""ARCH601: layering enforcement from a declared layer map.

The layer map lives in ``pyproject.toml``::

    [tool.repro-check.layers]
    "repro.core" = ["repro.gca", "repro.graphs", "repro.util"]

    [tool.repro-check.closed-layers]
    "repro.check" = ["numpy"]

A module belongs to the *longest* declared prefix that matches its
dotted name; its **top-level** imports of other declared layers must
appear in its allow-list (imports inside functions are the sanctioned
escape hatch for genuinely lazy coupling -- they are deliberately not
flagged).  A layer listed under ``closed-layers`` additionally
restricts its *external* top-level imports to stdlib plus the given
allow-list, which is how "``repro.check`` imports nothing but
stdlib+numpy" is enforced rather than asserted in a docstring.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.check.callgraph import ProjectIndex, ProjectRule
from repro.check.engine import Finding

_STDLIB = frozenset(
    getattr(sys, "stdlib_module_names", ())
) or frozenset({
    # 3.9 fallback: the names this repo could plausibly import
    "abc", "argparse", "array", "ast", "asyncio", "collections",
    "contextlib", "copy", "csv", "ctypes", "dataclasses", "enum",
    "errno", "functools", "gc", "hashlib", "heapq", "html", "http",
    "importlib", "inspect", "io", "itertools", "json", "logging",
    "math", "mmap", "multiprocessing", "os", "pathlib", "pickle",
    "platform", "queue", "random", "re", "resource", "secrets",
    "select", "selectors", "shutil", "signal", "socket", "sqlite3",
    "stat", "string", "struct", "subprocess", "sys", "tempfile",
    "textwrap", "threading", "time", "timeit", "tomllib", "traceback",
    "types", "typing", "unittest", "urllib", "uuid", "warnings",
    "weakref", "zlib",
})


def load_check_config(start: Optional[str] = None) -> dict:
    """Locate and parse ``[tool.repro-check]`` from the nearest
    ``pyproject.toml`` at or above ``start`` (default: cwd).  Returns
    ``{}`` when no config exists -- the layering rule then no-ops."""
    here = Path(start or ".").resolve()
    if here.is_file():
        here = here.parent
    for candidate in [here] + list(here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.exists():
            return parse_check_config(pyproject.read_text())
    return {}


def parse_check_config(text: str) -> dict:
    """Parse the ``[tool.repro-check.*]`` tables out of pyproject text."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: minimal fallback parser
        return _parse_fallback(text)
    data = tomllib.loads(text)
    tool = data.get("tool", {}).get("repro-check", {})
    return {
        "layers": dict(tool.get("layers", {})),
        "closed-layers": dict(tool.get("closed-layers", {})),
    }


_SECTION_RE = re.compile(r"^\[tool\.repro-check\.([a-z-]+)\]\s*$")
_ANY_SECTION_RE = re.compile(r"^\[")
_ENTRY_RE = re.compile(r'^"?([\w.-]+)"?\s*=\s*\[(.*)\]\s*$')


def _parse_fallback(text: str) -> dict:
    """A just-enough TOML subset parser (``"key" = ["a", "b"]`` lines
    inside ``[tool.repro-check.*]`` sections) for Python 3.9/3.10."""
    config: Dict[str, Dict[str, List[str]]] = {}
    section: Optional[str] = None
    for line in text.splitlines():
        line = line.strip()
        match = _SECTION_RE.match(line)
        if match:
            section = match.group(1)
            config.setdefault(section, {})
            continue
        if _ANY_SECTION_RE.match(line):
            section = None
            continue
        if section is None or not line or line.startswith("#"):
            continue
        entry = _ENTRY_RE.match(line)
        if entry:
            values = [
                part.strip().strip('"').strip("'")
                for part in entry.group(2).split(",")
                if part.strip()
            ]
            config[section][entry.group(1)] = values
    return {
        "layers": config.get("layers", {}),
        "closed-layers": config.get("closed-layers", {}),
    }


def _in_layer(dotted: str, prefix: str) -> bool:
    return dotted == prefix or dotted.startswith(prefix + ".")


class ArchLayerRule(ProjectRule):
    """ARCH601: a module imports across the declared layer boundaries."""

    rule_id = "ARCH601"
    severity = "error"
    description = "top-level imports must respect the declared layer map"

    def _layer_of(self, dotted: str, layers: Dict[str, list]) -> Optional[str]:
        best: Optional[str] = None
        for prefix in layers:
            if _in_layer(dotted, prefix):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return best

    @staticmethod
    def _resolve_allow(entry: str, layers: Dict[str, list]) -> str:
        """Map a short allow-list entry (``"core"``) to its declared
        layer key (``"repro.core"``); full keys pass through."""
        if entry in layers:
            return entry
        for key in layers:
            if key.endswith("." + entry):
                return key
        return entry

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        layers: Dict[str, list] = self.config.get("layers") or {}
        closed: Dict[str, list] = self.config.get("closed-layers") or {}
        if not layers and not closed:
            return
        for summary in index.summaries():
            own = self._layer_of(summary.module, layers)
            if own is None:
                continue
            allowed = {
                self._resolve_allow(entry, layers)
                for entry in layers.get(own, ())
            }
            external_ok = closed.get(own)
            for dotted, line, col in summary.top_imports:
                if not dotted:
                    continue  # ``from . import x`` resolved empty
                target = self._layer_of(dotted, layers)
                if target is not None:
                    if target == own or target in allowed:
                        continue
                    yield self.finding_at(
                        summary.path,
                        line,
                        col,
                        f"layer {own!r} must not import layer {target!r} "
                        f"({dotted}); allowed: "
                        f"{sorted(allowed) or 'nothing'}",
                    )
                elif external_ok is not None:
                    root = dotted.split(".")[0]
                    if root in _STDLIB or root in external_ok:
                        continue
                    if _in_layer(dotted, own):
                        continue
                    yield self.finding_at(
                        summary.path,
                        line,
                        col,
                        f"closed layer {own!r} imports {dotted!r}; only "
                        f"stdlib and {sorted(external_ok)} are allowed "
                        "at the top level",
                    )
