"""Shared-memory and process-pool hygiene rules.

The serving stack (:mod:`repro.serve`) and the shared-memory layer
(:mod:`repro.analysis.shm`) juggle three resources whose misuse is
invisible to the type system and usually invisible to tests:

* **POSIX shm segments** leak kernel objects until reboot if a create
  is not paired with ``close``/``unlink`` on *every* path (SHM201,
  SHM202);
* **locks held across blocking calls** (pipe recv, queue get, worker
  spawn) turn a slow worker into a stalled pool (LOCK301);
* **threads started before the pool forks** leave the forked children
  with locks held by threads that do not exist in the child (FORK302);
* **memory mappings without an unmap** keep every touched page in the
  resident set until garbage collection gets around to the array --
  which defeats the windowed out-of-core reads of
  :mod:`repro.analysis.shards` precisely when memory is tightest
  (SHM203);
* **partitioned slabs written outside the owner's chunk slice** race
  under the chunk-parallel label kernels, corrupting a neighbour
  chunk's rows only when run concurrently (SHM204).

These rules are heuristic by necessity -- they trade a few suppression
comments for catching the leak/deadlock patterns that actually bit
this codebase (see ``repro.analysis.shm.share_edge_list`` and
``PoolExecutor._monitor_loop`` history).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.check.callgraph import (
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
)
from repro.check.engine import (
    Finding,
    LintRule,
    Module,
    dotted_name,
    name_chain,
    param_names,
    walk_function,
)

#: Constructors whose result owns a shared-memory segment (or mapping).
_SHM_FACTORIES = frozenset({"create", "zeros", "attach"})

#: Attribute calls that release a segment or hand ownership onward.
_RELEASERS = frozenset({"close", "unlink", "release", "close_all"})


def _is_shm_acquire(node: ast.Call) -> Optional[str]:
    """A short label if ``node`` acquires a shared-memory resource."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _SHM_FACTORIES and "sharedarray" in name_chain(func):
            return f"SharedArray.{func.attr}"
        receiver = name_chain(func.value)
        if func.attr == "acquire" and (
            "slab" in receiver or "pool" in receiver
        ):
            return "SlabPool.acquire"
    name = dotted_name(func)
    if name is not None and name.split(".")[-1] == "SharedMemory":
        return "SharedMemory"
    return None


def _escapes(fn: ast.FunctionDef, var: str, after_line: int) -> bool:
    """True if local ``var`` leaves the function's hands after binding:
    passed to a call, returned/yielded, stored into a container or
    attribute, released directly, or used as a context manager."""
    for node in walk_function(fn):
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno < after_line:
            continue
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == var:
                        return True
            func = node.func
            if isinstance(func, ast.Attribute):
                root = func.value
                if isinstance(root, ast.Name) and root.id == var:
                    if func.attr in _RELEASERS:
                        return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and sub.id == var:
                        return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id == var:
                            return True
        elif isinstance(node, ast.withitem):
            for sub in ast.walk(node.context_expr):
                if isinstance(sub, ast.Name) and sub.id == var:
                    return True
    return False


class UnreleasedSegmentRule(LintRule):
    """SHM201: a shared-memory acquisition that can never be released.

    Flags ``x = SharedArray.create(...)`` (and friends) where ``x`` is a
    plain local that is never closed, unlinked, returned, stored, or
    passed onward -- the segment outlives the process and leaks a
    kernel object.
    """

    rule_id = "SHM201"
    severity = "error"
    description = "every shm segment acquired must be released or escape"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            for node in walk_function(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                label = _is_shm_acquire(node.value)
                if label is None:
                    continue
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue  # attribute/subscript targets escape by definition
                if not _escapes(fn, target.id, node.lineno):
                    yield self.finding(
                        module,
                        node,
                        f"{label}() result {target.id!r} in {fn.name!r} is "
                        "never closed, unlinked, returned, or stored; the "
                        "segment leaks",
                    )


def _memmap_closed(fn: ast.FunctionDef, var: str, after_line: int) -> bool:
    """True if ``var._mmap.close()`` appears after ``after_line``."""
    for node in walk_function(fn):
        if not isinstance(node, ast.Call):
            continue
        if getattr(node, "lineno", 0) < after_line:
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "close"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "_mmap"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == var
        ):
            return True
    return False


class MemmapDisciplineRule(LintRule):
    """SHM203: an ``np.memmap`` that is never unmapped.

    A memmap'd array holds its mapping until the *array object* is
    collected -- ``del`` is not enough under reference cycles, and the
    touched pages count toward RSS the whole time.  The out-of-core
    paths (:func:`repro.analysis.shards.open_memmap_window`) rely on
    eager unmapping to keep their peak-memory promise, so every
    ``x = np.memmap(...)`` bound to a plain local must either be used
    as a context manager, explicitly unmapped with ``x._mmap.close()``,
    or hand the mapping onward (returned, stored, passed to a callee
    that owns the close).
    """

    rule_id = "SHM203"
    severity = "error"
    description = "every np.memmap must be unmapped or hand off ownership"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            for node in walk_function(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                name = dotted_name(node.value.func)
                if name is None or name.split(".")[-1] != "memmap":
                    continue
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue  # attribute/subscript targets escape by definition
                if _memmap_closed(fn, target.id, node.lineno):
                    continue
                if _escapes(fn, target.id, node.lineno):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"memmap {target.id!r} in {fn.name!r} is never "
                    "unmapped; call ._mmap.close() (or use "
                    "open_memmap_window) so the pages leave the "
                    "resident set deterministically",
                )


def _enclosing_guard(stack: List[ast.AST]) -> bool:
    """True if any enclosing statement is a try with handlers/finally
    or a with block (i.e. some error path exists for cleanup)."""
    for node in stack:
        if isinstance(node, ast.Try) and (node.handlers or node.finalbody):
            return True
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return True
    return False


class UnguardedMultiAcquireRule(LintRule):
    """SHM202: consecutive shm acquisitions without an error-path guard.

    ``a = SharedArray.create(...); b = SharedArray.create(...)`` leaks
    ``a`` whenever the second create throws (ENOSPC, name collision,
    worker crash).  The second and later acquisitions in a function must
    sit inside a ``try``/``with`` so the earlier ones can be rolled
    back.
    """

    rule_id = "SHM202"
    severity = "warning"
    description = "multi-segment acquisition needs an error-path guard"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            yield from self._check_function(module, fn)

    def _check_function(
        self, module: Module, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        acquires: List[tuple] = []  # (call node, guarded?)

        def visit(node: ast.AST, stack: List[ast.AST]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not fn:
                return
            if isinstance(node, ast.Call) and _is_shm_acquire(node):
                acquires.append((node, _enclosing_guard(stack)))
            stack.append(node)
            for child in ast.iter_child_nodes(node):
                visit(child, stack)
            stack.pop()

        visit(fn, [])
        for call, guarded in acquires[1:]:
            if not guarded:
                label = _is_shm_acquire(call)
                yield self.finding(
                    module,
                    call,
                    f"{label}() in {fn.name!r} follows an earlier "
                    "acquisition with no try/with guard; a failure here "
                    "leaks the earlier segment",
                )


def _mentions_bounds(node: ast.AST) -> bool:
    """True if the subtree references the chunk bounds ``lo``/``hi``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in ("lo", "hi"):
            return True
    return False


def _is_exact_chunk_slice(sub: ast.Subscript) -> bool:
    """True for exactly ``X[lo:hi]`` -- no step, no arithmetic."""
    sl = sub.slice
    return (
        isinstance(sl, ast.Slice)
        and isinstance(sl.lower, ast.Name) and sl.lower.id == "lo"
        and isinstance(sl.upper, ast.Name) and sl.upper.id == "hi"
        and sl.step is None
    )


class ChunkOwnerWriteRule(LintRule):
    """SHM204: a chunk worker writes a partitioned slab outside its slice.

    The chunk-parallel kernels (:mod:`repro.core.parallel_kernels`) run
    concurrently on *one* shared output slab with no per-element locks;
    that is race-free only under owner-write discipline: a worker given
    the bounds ``lo``/``hi`` may write a **partitioned** slab through
    exactly ``slab[lo:hi]`` and nothing else.  ``slab[lo:hi + 1]``
    overlaps the next chunk's slice, and a scatter
    (``np.minimum.at(slab, idx, ...)``) writes wherever ``idx`` points
    -- both are ghost writes that corrupt a neighbour's rows and only
    fail under concurrency.

    Heuristic: inside any function whose parameters include both ``lo``
    and ``hi`` (the chunk-worker convention), a parameter is treated as
    *partitioned* the moment the function slices it with those bounds.
    Every subscript store to a partitioned parameter must then be the
    exact ``[lo:hi]`` slice, and partitioned parameters must not be
    scatter targets.  Private per-worker slabs (written full-slab, never
    sliced by the bounds -- e.g. the hook phase's sentinel-initialised
    partial) are intentionally exempt.
    """

    rule_id = "SHM204"
    severity = "error"
    description = "chunk workers write partitioned slabs only via [lo:hi]"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            params = set(param_names(fn))
            if not {"lo", "hi"} <= params:
                continue
            yield from self._check_worker(module, fn, params)

    def _check_worker(
        self, module: Module, fn: ast.FunctionDef, params: set
    ) -> Iterator[Finding]:
        partitioned = set()
        for node in walk_function(fn):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in params
                and isinstance(node.slice, ast.Slice)
                and _mentions_bounds(node.slice)
            ):
                partitioned.add(node.value.id)
        if not partitioned:
            return
        for node in walk_function(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in partitioned
                    ):
                        continue
                    if _is_exact_chunk_slice(target):
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{fn.name!r} writes partitioned slab "
                        f"{target.value.id!r} outside its exact [lo:hi] "
                        "slice; concurrent chunks ghost-write each "
                        "other's rows",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "at"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in partitioned
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{fn.name!r} scatters into partitioned slab "
                        f"{node.args[0].id!r} through arbitrary indices; "
                        "scatter into a private per-worker slab and "
                        "MIN-combine instead",
                    )


class ThreadBeforeForkRule(LintRule):
    """FORK302: a thread is spawned before a worker process is forked.

    A ``fork()`` copies only the calling thread; any lock another
    thread holds at fork time is copied *locked forever* in the child.
    Start the pool first, threads after (the executor's monitor thread
    follows this order).
    """

    rule_id = "FORK302"
    severity = "warning"
    description = "fork the worker pool before starting any threads"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            threads: List[int] = []
            forks: List[ast.Call] = []
            # walk_function yields in stack order, not source order --
            # collect both sides first, compare line numbers after
            for node in walk_function(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                last = name.split(".")[-1] if name else ""
                if last == "Thread":
                    threads.append(node.lineno)
                elif last == "Process" or last.startswith("spawn_worker"):
                    forks.append(node)
            if not threads:
                continue
            first_thread = min(threads)
            for node in forks:
                if node.lineno > first_thread:
                    yield self.finding(
                        module,
                        node,
                        f"{fn.name!r} forks a worker process after "
                        f"starting a thread (line {first_thread}); forked "
                        "children inherit locks held by threads that no "
                        "longer exist",
                    )


class MemmapHandoffRule(ProjectRule):
    """SHM203 (cross-function half): a memmap handed to a helper that
    forgets it.

    The local SHM203 rule accepts "passed to a call" as a disposal
    route on faith -- which is exactly how the false negative through
    one call level hid: ``m = np.memmap(...); helper(m)`` where
    ``helper`` neither unmaps, stores, returns nor forwards ``m``.
    With the callgraph the receiving parameter's disposition is checked
    for real (following forwards up to two levels); an unresolvable
    callee stays conservatively trusted.
    """

    rule_id = "SHM203"
    severity = "error"
    description = "a memmap handed to a helper must be disposed by it"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for summary in index.summaries():
            for info in summary.functions.values():
                for token, pos, var, line, col in info.memmap_handoffs:
                    resolved = index.resolve(summary, info, token)
                    if resolved is None:
                        continue
                    tmod, tinfo = resolved
                    param = self._receiving_param(token, tinfo, pos)
                    if param is None:
                        continue
                    if self._disposes(index, tmod, tinfo, param, depth=2):
                        continue
                    yield self.finding_at(
                        summary.path,
                        line,
                        col,
                        f"memmap {var!r} is handed to "
                        f"{tinfo.qualname!r}, which neither unmaps, "
                        "stores nor forwards it; the mapping leaks "
                        "until garbage collection",
                    )

    @staticmethod
    def _receiving_param(
        token: str, tinfo: FunctionInfo, pos: int
    ) -> Optional[str]:
        params = list(tinfo.params)
        if params and params[0] in ("self", "cls") and (
            token.startswith("self.") or token.startswith("cls.")
        ):
            params = params[1:]
        return params[pos] if pos < len(params) else None

    def _disposes(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        info: FunctionInfo,
        param: str,
        depth: int,
    ) -> bool:
        if param in info.closes_params or param in info.escapes_params:
            return True
        if depth <= 0:
            return False
        for token, fwd_param, pos in info.forwards:
            if fwd_param != param:
                continue
            resolved = index.resolve(summary, info, token)
            if resolved is None:
                return True  # unresolvable onward hand-off: trust it
            tmod, tinfo = resolved
            nxt = self._receiving_param(token, tinfo, pos)
            if nxt is not None and self._disposes(
                index, tmod, tinfo, nxt, depth - 1
            ):
                return True
        return False
