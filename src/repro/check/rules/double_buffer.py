"""Double-buffer hygiene rules for the vectorised kernel modules.

The fused engines (:mod:`repro.core.vectorized`,
:mod:`repro.core.batched`) get their speed from three disciplines:

* the generation loop is **allocation-free** -- every buffer is
  preallocated in a workspace and reused (DB101);
* broadcast generations write the spare buffer and ping-pong; the spare
  holds **stale garbage** until the write, so it must never be *read*
  within a generation (DB102);
* the pure per-generation transform (:func:`apply_generation`) takes
  the field ``D`` read-only and returns a new array -- the
  interpreter cross-validation depends on ``D`` surviving the call
  (DB103).

DB101 is path-scoped to the kernel modules (allocation in a loop is
perfectly normal elsewhere); DB102/DB103 are structural on the kernel
signatures (``(cur, other)`` / ``apply_generation*(D, ...)``) and run
everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check.engine import (
    Finding,
    LintRule,
    Module,
    dotted_name,
    param_names,
    root_name,
    walk_function,
)

#: Array-allocating callables that must not appear inside generation
#: loops (in-place ops like ``np.copyto``/``np.minimum(..., out=)`` are
#: the sanctioned alternative).
_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full", "copy", "ascontiguousarray",
    "stack", "concatenate", "tile", "zeros_like", "empty_like",
    "ones_like", "full_like", "vstack", "hstack",
})

#: Roots under which the allocator names count (``np.zeros``,
#: ``numpy.empty``) -- plus bare method ``.copy()`` on anything.
_NUMPY_ROOTS = frozenset({"np", "numpy"})


def _allocator_call(node: ast.Call) -> Optional[str]:
    """The allocator's name if ``node`` allocates an array, else None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "copy" and not node.args:
            return dotted_name(func)
        if func.attr in _ALLOCATORS and isinstance(func.value, ast.Name) \
                and func.value.id in _NUMPY_ROOTS:
            return dotted_name(func)
    return None


class LoopAllocationRule(LintRule):
    """DB101: an array allocation inside a generation loop.

    Scoped to the kernel modules by basename.  Hoist the buffer into the
    workspace, or suppress with a reason when the allocation is on an
    opt-in slow path (snapshots, instrumentation, retirement).
    """

    rule_id = "DB101"
    severity = "warning"
    description = "no array allocation inside kernel generation loops"
    basenames = frozenset({"vectorized.py", "batched.py"})

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            seen = set()
            for loop in walk_function(fn):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    name = _allocator_call(node)
                    key = (node.lineno, node.col_offset)
                    if name is not None and key not in seen:
                        seen.add(key)
                        yield self.finding(
                            module,
                            node,
                            f"{name}() allocates inside a generation loop "
                            f"of {fn.name!r}; preallocate in the workspace "
                            "or write through out=/np.copyto",
                        )


class WriteBufferReadRule(LintRule):
    """DB102: a fused kernel reads the spare (write) buffer.

    In a ``(cur, other)`` double-buffer kernel, ``other`` holds stale
    data from two generations ago until the broadcast overwrites it;
    any subscript *load* of ``other`` is reading garbage.
    """

    rule_id = "DB102"
    severity = "error"
    description = "fused kernels must not read the spare write buffer"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            params = set(param_names(fn))
            if not {"cur", "other"} <= params:
                continue
            for node in walk_function(fn):
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and root_name(node) == "other"
                ):
                    yield self.finding(
                        module,
                        node,
                        f"kernel {fn.name!r} reads the spare buffer "
                        "'other'; it holds stale data until the broadcast "
                        "write -- read from 'cur' only",
                    )


class ReadFieldWriteRule(LintRule):
    """DB103: ``apply_generation`` mutates the read-only field ``D``.

    The un-fused transform documents "``D`` is not modified" and the
    interpreter cross-validation relies on it.  Flags stores through
    ``D``, ``out=D`` keywords and ``np.copyto(D, ...)``.
    """

    rule_id = "DB103"
    severity = "error"
    description = "apply_generation must treat the field D as read-only"

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            if not fn.name.startswith("apply_generation"):
                continue
            params = set(param_names(fn))
            if "D" not in params or "other" in params:
                continue  # the fused (cur, other) variant is in-place by design
            for node in walk_function(fn):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    targets = []
                for target in targets:
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and root_name(target) == "D":
                        yield self.finding(
                            module,
                            node,
                            f"{fn.name!r} writes the read-only field D; "
                            "build the result in a fresh array",
                        )
                if isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg == "out" and root_name(kw.value) == "D":
                            yield self.finding(
                                module,
                                node,
                                f"{fn.name!r} targets the read-only field "
                                "D via out=",
                            )
                    if (
                        dotted_name(node.func) in ("np.copyto", "numpy.copyto")
                        and node.args
                        and root_name(node.args[0]) == "D"
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{fn.name!r} overwrites the read-only field D "
                            "via np.copyto",
                        )
