"""CROW (concurrent-read, owner-write) discipline rules.

The paper's execution contract: during a generation every cell may
*read* any other cell but may *write* only its own state, and all writes
commit synchronously at the generation boundary.  In this codebase that
contract has two faces:

* **rule objects** (:mod:`repro.gca.rules`) -- a rule's ``update`` /
  ``step`` / ``pointer`` receives immutable views and must return a
  ``CellUpdate``; it must never mutate the views, the read snapshot, or
  shared state hanging off ``self``;
* **step functions** (:mod:`repro.hirschberg.steps`) -- the vectorised
  reference steps are *pure* transformations: they return new vectors
  and never write their inputs in place (several callers hold the same
  arrays across steps, e.g. step 6 needs the step-3 ``T`` unchanged).

All three rules here are structural: they trigger on classes whose base
name ends in ``Rule`` and on module-level functions named ``step<k>_*``
or ``one_iteration``, so fixtures and future modules are covered without
path lists.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.check.engine import (
    Finding,
    LintRule,
    Module,
    param_names,
    root_name,
    walk_function,
)

#: Methods of a rule class that execute inside a generation.
_RULE_METHODS = frozenset({"is_active", "pointer", "update", "step"})


def _is_rule_class(node: ast.ClassDef) -> bool:
    """A class taking part in the rule protocol: any base whose name
    ends in ``Rule`` (``Rule``, ``FunctionRule``, ``RuleTable``, ...).
    ``LintRule`` subclasses are excluded -- the linter is not a GCA."""
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(
            base, "id", ""
        )
        if name.endswith("Rule") and name != "LintRule":
            return True
    return False


def _rule_methods(
    module: Module,
) -> Iterator[Tuple[ast.ClassDef, ast.FunctionDef]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and _is_rule_class(node):
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in _RULE_METHODS
                ):
                    yield node, item


def _store_targets(node: ast.AST) -> List[ast.AST]:
    """The targets a statement writes through (assign/augassign/del)."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _flatten_targets(targets: List[ast.AST]) -> List[ast.AST]:
    out: List[ast.AST] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            out.extend(_flatten_targets(list(target.elts)))
        else:
            out.append(target)
    return out


class NeighborWriteRule(LintRule):
    """CROW001: a rule method writes through a cell/neighbor parameter.

    ``neighbor.data = x`` or ``cell.aux["a"] = 1`` inside ``update`` is
    a cross-cell (or snapshot) write -- the engine commits only the
    returned ``CellUpdate``, so such writes are at best dead and at
    worst corrupt the read snapshot other cells are still reading.
    """

    rule_id = "CROW001"
    severity = "error"
    description = (
        "GCA rule methods must not mutate their cell/neighbor views"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for _cls, fn in _rule_methods(module):
            params = {p for p in param_names(fn) if p != "self"}
            if not params:
                continue
            for node in walk_function(fn):
                for target in _flatten_targets(_store_targets(node)):
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = root_name(target)
                    if root in params:
                        yield self.finding(
                            module,
                            node,
                            f"rule method {fn.name!r} writes through "
                            f"parameter {root!r}; CROW allows a rule to "
                            "write only via the returned CellUpdate",
                        )


class SelfStateWriteRule(LintRule):
    """CROW002: a rule method mutates state reachable through ``self``.

    A rule object is shared by every cell of the field in the same
    generation; ``self._field[j] = x`` (or even ``self.count += 1``)
    is a hidden cross-cell channel that breaks the synchronous-commit
    semantics and makes congestion accounting meaningless.
    """

    rule_id = "CROW002"
    severity = "error"
    description = "GCA rule methods must be pure (no writes through self)"

    def check(self, module: Module) -> Iterator[Finding]:
        for _cls, fn in _rule_methods(module):
            for node in walk_function(fn):
                for target in _flatten_targets(_store_targets(node)):
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and root_name(target) == "self":
                        yield self.finding(
                            module,
                            node,
                            f"rule method {fn.name!r} mutates shared state "
                            "through self; rules run once per cell per "
                            "generation and must stay pure",
                        )


def _is_step_function(fn: ast.FunctionDef) -> bool:
    name = fn.name
    if name == "one_iteration":
        return True
    if not name.startswith("step"):
        return False
    rest = name[4:]
    return bool(rest) and rest[0].isdigit()


class StepInplaceRule(LintRule):
    """CROW003: a Hirschberg step function mutates an input in place.

    The step functions are the shared specification the interpreter,
    the PRAM rendering and the GCA mapping are all validated against;
    they must return fresh vectors.  Flags subscript/attribute stores
    and augmented assignments rooted at a parameter, and ``out=``
    keywords aliasing a parameter.
    """

    rule_id = "CROW003"
    severity = "error"
    description = "Hirschberg step functions must not mutate their inputs"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_step_function(node):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        params: Set[str] = set(param_names(fn))
        for node in walk_function(fn):
            for target in _flatten_targets(_store_targets(node)):
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = root_name(target)
                    if root in params:
                        yield self.finding(
                            module,
                            node,
                            f"step function {fn.name!r} writes input "
                            f"{root!r} in place; steps must return fresh "
                            "vectors (callers reuse the inputs)",
                        )
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id in params
                ):
                    yield self.finding(
                        module,
                        node,
                        f"step function {fn.name!r} augments parameter "
                        f"{target.id!r} in place",
                    )
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and root_name(kw.value) in params:
                        yield self.finding(
                            module,
                            node,
                            f"step function {fn.name!r} passes input "
                            f"{root_name(kw.value)!r} as out=; steps must "
                            "not overwrite their inputs",
                        )
        # locals shadowing a parameter via plain rebinding (C = C[C]) are
        # fine -- only writes *through* the parameter alias the caller's
        # array, and those are caught above.
