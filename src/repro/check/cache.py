"""Content-addressed incremental checking (``.check_cache.json``).

Same discipline as the serve layer's ``ResultCache``: the key is *what
the answer depends on*, nothing else.  A cache entry stores, per file,
the source digest plus everything the engine would recompute for an
unchanged file -- local findings, the suppression table, and the
JSON-round-tripped :class:`~repro.check.callgraph.ModuleSummary` the
project rules consume.  The whole file is guarded by a **pack
fingerprint**: a hash over the ``repro.check`` package sources, the
selected rule ids and the resolved config, so editing any rule (or the
layer map) invalidates every entry at once instead of serving stale
verdicts.

Project rules always re-run (they are cross-file by definition and
cheap next to parsing); what a warm run skips is the parse + local-rule
pass per unchanged file -- the dominant cost.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

CACHE_SCHEMA = 1

DEFAULT_CACHE_PATH = ".check_cache.json"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


def pack_fingerprint(rule_ids: Sequence[str], config: Optional[dict]) -> str:
    """Hash of everything besides file content that findings depend on:
    the check package's own sources, the active rule ids, the config."""
    h = hashlib.sha256()
    h.update(f"schema:{CACHE_SCHEMA}".encode())
    package_dir = Path(__file__).parent
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        h.update(path.relative_to(package_dir).as_posix().encode())
        h.update(hashlib.sha256(path.read_bytes()).digest())
    h.update(json.dumps(sorted(rule_ids)).encode())
    h.update(json.dumps(config or {}, sort_keys=True, default=str).encode())
    return h.hexdigest()


class CheckCache:
    """Per-file result store keyed by source digest + pack fingerprint."""

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._files: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("fingerprint") != self.fingerprint
        ):
            # stale pack: start over rather than mix vintages
            self._dirty = True
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files

    def get(self, file_path: str, digest: str) -> Optional[dict]:
        entry = self._files.get(file_path)
        if entry is not None and entry.get("digest") == digest:
            return entry
        return None

    def put(self, file_path: str, digest: str, entry: dict) -> None:
        entry = dict(entry)
        entry["digest"] = digest
        self._files[file_path] = entry
        self._dirty = True

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files no longer part of the scanned set."""
        wanted = set(keep)
        stale = [p for p in self._files if p not in wanted]
        for path in stale:
            del self._files[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": self._files,
        }
        # atomic replace so a crashed run never leaves a torn cache
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent.as_posix() or ".",
            prefix=self.path.name,
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = False


def findings_to_json(findings: Sequence) -> List[dict]:
    return [
        {
            "rule_id": f.rule_id,
            "severity": f.severity,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in findings
    ]
