"""Module summaries, name resolution and project-wide rules.

Per-file analysis alone cannot see a blocking call two frames below an
``async def``, an inverted lock order split across two modules, or a
memmap handed to a helper that forgets to unmap it.  This module builds
a compact, **JSON-serialisable** :class:`ModuleSummary` per file --
imports, function call sites, blocking sites, lock-order edges and
parameter dispositions -- and a :class:`ProjectIndex` that resolves
call tokens across the summaries.  Because summaries round-trip through
JSON they are exactly what the incremental cache stores: a warm run
rebuilds the whole-project index without re-parsing unchanged files.

:class:`ProjectRule` is the cross-module counterpart of
:class:`~repro.check.engine.LintRule`: it runs once per engine
invocation over the full index instead of once per module.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.cfg import build_cfg, function_defs, walk_stmt_expr
from repro.check.dataflow import iter_event_states
from repro.check.domain import (
    awaited_call_ids,
    blocking_call_label,
    lock_acquisitions,
    lockset_transfer,
)
from repro.check.engine import Finding, LintRule, Module, dotted_name

SUMMARY_VERSION = 1

#: Calls that take a coroutine/callable and own its execution.
_WRAPPERS = frozenset({
    "create_task", "ensure_future", "gather", "wait", "wait_for", "run",
    "run_coroutine_threadsafe", "as_completed", "shield", "run_until_complete",
})

#: Calls that move a callable onto a worker thread (the sanctioned
#: bridge for blocking work reachable from the event loop).
_BRIDGES = frozenset({"run_in_executor", "to_thread", "submit"})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    token: str
    line: int
    col: int
    awaited: bool
    bare: bool      # the whole statement is this call (``Expr(Call)``)
    wrapped: bool   # passed into create_task/gather/... as an argument


@dataclass(frozen=True)
class BlockingSite:
    """A thread-blocking call (pipe/queue/sleep/subprocess/spawn)."""

    label: str
    token: str
    line: int
    col: int


@dataclass(frozen=True)
class LockOrder:
    """``acquired`` was taken while ``held`` was already held."""

    held: str
    acquired: str
    line: int
    col: int


@dataclass
class FunctionInfo:
    """Flow summary of one function definition."""

    qualname: str
    line: int
    col: int
    is_async: bool
    class_name: Optional[str]
    params: List[str]
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    lock_orders: List[LockOrder] = field(default_factory=list)
    closes_params: List[str] = field(default_factory=list)
    escapes_params: List[str] = field(default_factory=list)
    #: ``(callee_token, param_name, arg_position)``
    forwards: List[Tuple[str, str, int]] = field(default_factory=list)
    #: ``(callee_token, arg_position, var, line, col)`` -- a local memmap
    #: whose only disposal route is the call it is handed to.
    memmap_handoffs: List[Tuple[str, int, str, int, int]] = field(
        default_factory=list
    )


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    module: str
    path: str
    import_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    top_imports: List[Tuple[str, int, int]] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["version"] = SUMMARY_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ModuleSummary":
        if payload.get("version") != SUMMARY_VERSION:
            raise ValueError("stale summary payload")
        functions = {}
        for qual, raw in payload["functions"].items():
            functions[qual] = FunctionInfo(
                qualname=raw["qualname"],
                line=raw["line"],
                col=raw["col"],
                is_async=raw["is_async"],
                class_name=raw["class_name"],
                params=list(raw["params"]),
                calls=[CallSite(**c) for c in raw["calls"]],
                blocking=[BlockingSite(**b) for b in raw["blocking"]],
                lock_orders=[LockOrder(**o) for o in raw["lock_orders"]],
                closes_params=list(raw["closes_params"]),
                escapes_params=list(raw["escapes_params"]),
                forwards=[tuple(f) for f in raw["forwards"]],
                memmap_handoffs=[
                    tuple(h) for h in raw["memmap_handoffs"]
                ],
            )
        return cls(
            module=payload["module"],
            path=payload["path"],
            import_aliases=dict(payload["import_aliases"]),
            from_imports={
                k: tuple(v) for k, v in payload["from_imports"].items()
            },
            top_imports=[tuple(t) for t in payload["top_imports"]],
            functions=functions,
        )


def module_name_for(path: str) -> str:
    """Dotted module name derived from the package layout: climb while
    an ``__init__.py`` marks the parent as a package.  Works for the
    ``src/`` layout (``src/repro/serve/gateway.py`` ->
    ``repro.serve.gateway``) and leaves loose files as bare names."""
    p = Path(path)
    parts = [p.stem] if p.stem != "__init__" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


# ----------------------------------------------------------------------
# summary construction
# ----------------------------------------------------------------------

def _walk_own(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body skipping nested defs and lambdas (each
    nested def gets its own FunctionInfo)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _param_names(fn: ast.AST) -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _collect_imports(summary: ModuleSummary, tree: ast.AST) -> None:
    own_package = summary.module.split(".")[:-1]

    def resolve_from(node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        base = own_package[: len(own_package) - (node.level - 1)]
        if node.module:
            base = base + [node.module]
        return ".".join(base)

    def visit(node: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for alias in child.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else local
                    summary.import_aliases[local] = dotted
                    if top:
                        summary.top_imports.append(
                            (alias.name, child.lineno, child.col_offset + 1)
                        )
            elif isinstance(child, ast.ImportFrom):
                target = resolve_from(child)
                for alias in child.names:
                    local = alias.asname or alias.name
                    summary.from_imports[local] = (target, alias.name)
                if top:
                    summary.top_imports.append(
                        (target, child.lineno, child.col_offset + 1)
                    )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, top=False)
            elif isinstance(child, ast.ClassDef):
                visit(child, top=False)
            else:
                # imports under top-level if/try still run at import time
                visit(child, top=top)

    visit(tree, top=True)


_CLOSERS = frozenset({"close", "unlink", "release", "terminate"})


def _direct_escape_names(value: ast.AST) -> Iterator[str]:
    """Names an expression hands onward as *the object itself* --
    ``return mm`` / ``return mm, other`` escape the mapping,
    ``return int(mm.sum())`` only escapes a derived scalar."""
    if isinstance(value, ast.Name):
        yield value.id
    elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for elt in value.elts:
            yield from _direct_escape_names(elt)
    elif isinstance(value, ast.Starred):
        yield from _direct_escape_names(value.value)
    elif isinstance(value, ast.IfExp):
        yield from _direct_escape_names(value.body)
        yield from _direct_escape_names(value.orelse)
    elif isinstance(value, ast.NamedExpr):
        yield from _direct_escape_names(value.value)


def _canonical_lock(
    token: str,
    module: str,
    class_name: Optional[str],
    aliases: Dict[str, str],
    from_imports: Dict[str, Tuple[str, str]],
) -> str:
    """Like :func:`canonical_lock_token`, but resolving imported names
    to their *defining* module so ``from a import LOCK`` in two modules
    still names one lock."""
    parts = token.split(".")
    root = parts[0]
    if root in ("self", "cls") and class_name:
        return ".".join([module, class_name] + parts[1:])
    if root in from_imports:
        target_mod, orig = from_imports[root]
        return ".".join([target_mod, orig] + parts[1:])
    if root in aliases:
        return ".".join([aliases[root]] + parts[1:])
    return f"{module}.{token}"


def _function_info(
    module: str,
    qual: str,
    fn: ast.AST,
    aliases: Optional[Dict[str, str]] = None,
    from_imports: Optional[Dict[str, Tuple[str, str]]] = None,
) -> FunctionInfo:
    aliases = aliases or {}
    from_imports = from_imports or {}
    parts = qual.split(".")
    class_name = parts[-2] if len(parts) >= 2 else None
    info = FunctionInfo(
        qualname=qual,
        line=fn.lineno,
        col=fn.col_offset + 1,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
        class_name=class_name,
        params=_param_names(fn),
    )
    awaited = set()
    wrapped = set()
    bare = set()
    calls: List[ast.Call] = []
    for node in _walk_own(fn):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            bare.add(id(node.value))
        elif isinstance(node, ast.Call):
            calls.append(node)
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else attr
            if name in _WRAPPERS or name in _BRIDGES:
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Call):
                        wrapped.add(id(arg))
        elif isinstance(node, ast.Expr):
            inner = node.value
            if isinstance(inner, ast.Await) and isinstance(
                inner.value, ast.Call
            ):
                bare.add(id(inner.value))

    params = set(info.params)
    for call in calls:
        token = dotted_name(call.func)
        if not token:
            continue
        info.calls.append(
            CallSite(
                token=token,
                line=call.lineno,
                col=call.col_offset + 1,
                awaited=id(call) in awaited,
                bare=id(call) in bare,
                wrapped=id(call) in wrapped,
            )
        )
        label = blocking_call_label(call)
        if label is not None and id(call) not in awaited:
            info.blocking.append(
                BlockingSite(
                    label=label,
                    token=token,
                    line=call.lineno,
                    col=call.col_offset + 1,
                )
            )
        # parameter dispositions (memmap/segment ownership handoff)
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOSERS
        ):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in params:
                info.closes_params.append(root.id)
        for pos, arg in enumerate(
            list(call.args) + [k.value for k in call.keywords]
        ):
            if isinstance(arg, ast.Name) and arg.id in params:
                info.forwards.append((token, arg.id, pos))

    for node in _walk_own(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for name in _direct_escape_names(value):
                    if name in params:
                        info.escapes_params.append(name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in _direct_escape_names(node.value):
                        if name in params:
                            info.escapes_params.append(name)

    info.closes_params = sorted(set(info.closes_params))
    info.escapes_params = sorted(set(info.escapes_params))
    _collect_memmap_handoffs(fn, info)

    # lock-order edges from the lockset fixpoint
    cfg = build_cfg(fn)
    seen = set()
    for event, state in iter_event_states(cfg, lockset_transfer):
        if not state:
            continue
        for token, line, col in lock_acquisitions(event):
            canon = _canonical_lock(
                token, module, class_name, aliases, from_imports
            )
            for held in state:
                if held == token:
                    continue
                held_canon = _canonical_lock(
                    held, module, class_name, aliases, from_imports
                )
                key = (held_canon, canon, line, col)
                if key in seen:
                    continue
                seen.add(key)
                info.lock_orders.append(
                    LockOrder(held=held_canon, acquired=canon,
                              line=line, col=col)
                )
    return info


def _collect_memmap_handoffs(fn: ast.AST, info: FunctionInfo) -> None:
    """Record locals bound to ``np.memmap(...)`` whose only disposal
    route is being passed to a callee -- the SHM203 shape the local
    rule accepts on faith and the project rule verifies."""
    mapped: Dict[str, ast.Assign] = {}
    for node in _walk_own(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and dotted_name(node.value.func).split(".")[-1] == "memmap"
        ):
            mapped[node.targets[0].id] = node
    if not mapped:
        return
    closed: Set[str] = set()
    escaped: Set[str] = set()
    handoffs: Dict[str, List[Tuple[str, int, int, int]]] = {}
    for node in _walk_own(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "close":
                root = func.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in mapped:
                    closed.add(root.id)
            token = dotted_name(func)
            for pos, arg in enumerate(
                list(node.args) + [k.value for k in node.keywords]
            ):
                if isinstance(arg, ast.Name) and arg.id in mapped and token:
                    handoffs.setdefault(arg.id, []).append(
                        (token, pos, node.lineno, node.col_offset + 1)
                    )
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                for name in _direct_escape_names(node.value):
                    if name in mapped:
                        escaped.add(name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in _direct_escape_names(node.value):
                        if name in mapped:
                            escaped.add(name)
        elif isinstance(node, ast.withitem):
            for sub in walk_stmt_expr(node.context_expr):
                if isinstance(sub, ast.Name) and sub.id in mapped:
                    escaped.add(sub.id)
    for var, sites in handoffs.items():
        if var in closed or var in escaped:
            continue
        for token, pos, line, col in sites:
            info.memmap_handoffs.append((token, pos, var, line, col))


def build_module_summary(module: Module) -> ModuleSummary:
    """Summarise one parsed module for the project rules + cache."""
    summary = ModuleSummary(
        module=module_name_for(module.path), path=module.path
    )
    _collect_imports(summary, module.tree)
    for qual, fn in function_defs(module.tree):
        summary.functions[qual] = _function_info(
            summary.module,
            qual,
            fn,
            summary.import_aliases,
            summary.from_imports,
        )
    return summary


# ----------------------------------------------------------------------
# the project index
# ----------------------------------------------------------------------

class ProjectIndex:
    """All module summaries of one engine run, with call resolution."""

    def __init__(
        self,
        summaries: Dict[str, ModuleSummary],
        config: Optional[dict] = None,
    ) -> None:
        self.by_path = dict(summaries)
        self.config = config or {}
        self.by_name: Dict[str, ModuleSummary] = {}
        for summary in self.by_path.values():
            self.by_name.setdefault(summary.module, summary)

    def summaries(self) -> List[ModuleSummary]:
        return [self.by_path[p] for p in sorted(self.by_path)]

    def resolve(
        self,
        summary: ModuleSummary,
        caller: Optional[FunctionInfo],
        token: str,
    ) -> Optional[Tuple[ModuleSummary, FunctionInfo]]:
        """Resolve a call token to its target function, if the target
        is statically nameable within the scanned tree.  Unresolvable
        tokens (``self.server.submit``, dynamic dispatch) return None --
        the rules treat them conservatively."""
        parts = token.split(".")
        if parts[0] in ("self", "cls") and caller is not None:
            if len(parts) == 2 and caller.class_name:
                qual = f"{caller.class_name}.{parts[1]}"
                if qual in summary.functions:
                    return summary, summary.functions[qual]
            return None
        if len(parts) == 1:
            name = parts[0]
            # nested scope chain, innermost first
            if caller is not None:
                prefix = caller.qualname.split(".")
                while prefix:
                    qual = ".".join(prefix + [name])
                    if qual in summary.functions:
                        return summary, summary.functions[qual]
                    prefix.pop()
            if name in summary.functions:
                return summary, summary.functions[name]
            if name in summary.from_imports:
                target_mod, orig = summary.from_imports[name]
                other = self.by_name.get(target_mod)
                if other and orig in other.functions:
                    return other, other.functions[orig]
            return None
        root, rest = parts[0], ".".join(parts[1:])
        if root in summary.import_aliases:
            other = self.by_name.get(summary.import_aliases[root])
            if other and rest in other.functions:
                return other, other.functions[rest]
            return None
        if root in summary.from_imports:
            target_mod, orig = summary.from_imports[root]
            # ``from pkg import submodule`` -> look inside the submodule
            sub = self.by_name.get(f"{target_mod}.{orig}")
            if sub and rest in sub.functions:
                return sub, sub.functions[rest]
            # ``from pkg import Class`` -> Class.method in pkg
            other = self.by_name.get(target_mod)
            if other:
                qual = f"{orig}.{rest}"
                if qual in other.functions:
                    return other, other.functions[qual]
        # local class: ``Worker.run`` / instance built locally is not
        # tracked, but direct ``Class.method`` tokens resolve here
        if token in summary.functions:
            return summary, summary.functions[token]
        return None


class ProjectRule(LintRule):
    """A rule that runs once over the whole :class:`ProjectIndex`."""

    project = True

    def __init__(self) -> None:
        self.config: dict = {}

    def configure(self, config: Optional[dict]) -> None:
        self.config = config or {}

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )
