"""Repo-specific static analysis and runtime sanitizers.

The whole stack rests on invariants nothing in Python enforces by
itself:

* **CROW** -- every cell may read any other cell but writes only its own
  state (the paper's execution contract; rule objects must be pure);
* **double-buffer hygiene** -- the fused kernels ping-pong between a
  read field and a write field, never allocating inside the generation
  loop, never reading the spare buffer, never mutating a field
  documented read-only;
* **shared-memory hygiene** -- every segment created is closed and
  unlinked on *every* path, no lock is held across a blocking pipe or
  queue call, and no thread is spawned before the pool forks.

:mod:`repro.check.engine` is a small AST-walking lint framework;
:mod:`repro.check.cfg` / :mod:`repro.check.dataflow` add per-function
control-flow graphs and a forward fixpoint for the flow-sensitive
rules; :mod:`repro.check.callgraph` builds the cross-module summaries
behind the project-wide rules and the incremental cache
(:mod:`repro.check.cache`); :mod:`repro.check.rules` holds the
repo-specific rules; :mod:`repro.check.sanitizer` provides the
*runtime* counterparts: a write-barrier interpreter that raises on any
cross-cell write and an shm sanitizer that stamps write epochs on
shared slabs.

Run the linter with ``python -m repro check src/`` and the sanitizers
with ``connected_components(..., sanitize=True)`` /
``python -m repro serve-bench --sanitize-shm``.
"""

from repro.check.engine import (
    CheckEngine,
    CheckReport,
    Finding,
    LintRule,
    StaleBaselineError,
    load_baseline,
    validate_baseline,
    write_baseline,
)
from repro.check.rules import all_rules, rule_ids

#: Runtime sanitizer names, re-exported lazily so that importing
#: ``repro.check`` (the linter) never drags in numpy or the GCA stack
#: -- the check layer is *closed* over stdlib by design (ARCH601).
_SANITIZER_EXPORTS = (
    "SanitizerMismatch",
    "SanitizerReport",
    "ShmSanitizer",
    "ShmSanitizerError",
    "run_sanitized",
    "shm_sanitizer",
)


def __getattr__(name: str) -> object:
    if name in _SANITIZER_EXPORTS:
        from repro.check import sanitizer

        return getattr(sanitizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CheckEngine",
    "CheckReport",
    "Finding",
    "LintRule",
    "StaleBaselineError",
    "load_baseline",
    "validate_baseline",
    "write_baseline",
    "all_rules",
    "rule_ids",
    *_SANITIZER_EXPORTS,
]
