"""Per-function control-flow graphs for the flow-sensitive rules.

:func:`build_cfg` lowers one ``def``/``async def`` body into a graph of
:class:`Block`\\ s whose contents are *events* -- a flat, analysis-
friendly encoding of what happens on a path:

``("stmt", node)``
    A simple statement executed (or the header of a compound one, e.g.
    the ``for`` target binding).
``("test", expr)``
    A branch condition evaluated (``if``/``while``).
``("guard", expr, sense)``
    Control continued with ``expr`` known truthy (``sense=True``) or
    falsy (``sense=False``).  Emitted at the top of each branch arm, so
    a validation test like ``if m > cap: raise`` sanitises the
    fall-through path in a taint analysis.
``("enter_with", withitem, is_async)`` / ``("exit_with", withitem, is_async)``
    A context manager entered/exited.  Exits are also emitted when a
    ``return``/``raise``/``break``/``continue`` jumps out of the
    ``with`` body, which is what makes a lockset analysis on this CFG
    path-accurate instead of textual.

The graph is deliberately an over-approximation in two places, both
safe for the *may*-analyses built on it (false positives possible,
silent false negatives not):

* exceptional edges into ``except`` handlers are added at statement
  boundaries of the ``try`` body's top level only (an exception raised
  deep inside a nested compound statement joins at the next boundary);
* ``finally`` blocks are sequenced on the normal fall-through path (a
  ``return`` inside ``try`` jumps straight to the function exit).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

#: One CFG event; see the module docstring for the vocabulary.
Event = Tuple[object, ...]

_MATCH = getattr(ast, "Match", ())
_TRY_STAR = getattr(ast, "TryStar", ())


@dataclass
class Block:
    """A straight-line run of events with outgoing edges."""

    id: int
    events: List[Event] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """The control-flow graph of one function definition."""

    fn: ast.AST
    blocks: List[Block]
    entry: int
    exit: int

    def reachable(self) -> List[int]:
        """Block ids reachable from the entry, in a stable BFS order."""
        seen = [self.entry]
        marked = {self.entry}
        i = 0
        while i < len(seen):
            for succ in self.blocks[seen[i]].succs:
                if succ not in marked:
                    marked.add(succ)
                    seen.append(succ)
            i += 1
        return seen


def walk_stmt_expr(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an event's subtree without descending into nested scopes.

    Comprehension bodies execute inline and are kept; ``lambda`` bodies
    and nested ``def``\\ s run later under a different dynamic context
    and are skipped.
    """
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(cur))


class _Builder:
    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.blocks: List[Block] = []
        self.entry = self._new()
        self.exit = self._new()
        self.cur: Optional[int] = self.entry
        # (head_block, after_block, with_depth) per enclosing loop
        self.loops: List[Tuple[int, int, int]] = []
        # (withitem, is_async) per statically enclosing with-item
        self.withs: List[Tuple[ast.withitem, bool]] = []

    # -- plumbing ------------------------------------------------------
    def _new(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: Optional[int], dst: int) -> None:
        if src is not None and dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def _emit(self, event: Event) -> None:
        if self.cur is not None:
            self.blocks[self.cur].events.append(event)

    def _branch(self, pred: Optional[int]) -> int:
        nid = self._new()
        self._edge(pred, nid)
        return nid

    def _unwind_withs(self, depth: int) -> None:
        """Emit exit events for every with entered above ``depth`` (a
        jump out of their bodies still runs their ``__exit__``)."""
        for item, is_async in reversed(self.withs[depth:]):
            self._emit(("exit_with", item, is_async))

    # -- statement dispatch --------------------------------------------
    def _stmts(
        self, body: List[ast.stmt], exc: Optional[List[int]] = None
    ) -> None:
        for stmt in body:
            if self.cur is None:
                return  # unreachable tail (after return/raise/break)
            if exc:
                for handler in exc:
                    self._edge(self.cur, handler)
            self._stmt(stmt)
        if self.cur is not None and exc:
            for handler in exc:
                self._edge(self.cur, handler)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, isinstance(stmt, ast.AsyncWith))
        elif isinstance(stmt, ast.Try) or (
            _TRY_STAR and isinstance(stmt, _TRY_STAR)
        ):
            self._try(stmt)
        elif _MATCH and isinstance(stmt, _MATCH):
            self._match(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._emit(("stmt", stmt))
            self._unwind_withs(0)
            self._edge(self.cur, self.exit)
            self.cur = None
        elif isinstance(stmt, ast.Break):
            self._jump(stmt, to_head=False)
        elif isinstance(stmt, ast.Continue):
            self._jump(stmt, to_head=True)
        elif isinstance(stmt, ast.Assert):
            self._emit(("stmt", stmt))
            self._emit(("guard", stmt.test, True))
        else:
            # simple statements, incl. nested def/class headers
            self._emit(("stmt", stmt))

    def _jump(self, stmt: ast.stmt, to_head: bool) -> None:
        self._emit(("stmt", stmt))
        if self.loops:
            head, after, depth = self.loops[-1]
            self._unwind_withs(depth)
            self._edge(self.cur, head if to_head else after)
        self.cur = None

    # -- compound statements -------------------------------------------
    def _if(self, stmt: ast.If) -> None:
        self._emit(("test", stmt.test))
        cond = self.cur
        then_b = self._branch(cond)
        self.blocks[then_b].events.append(("guard", stmt.test, True))
        self.cur = then_b
        self._stmts(stmt.body)
        then_end = self.cur
        else_b = self._branch(cond)
        self.blocks[else_b].events.append(("guard", stmt.test, False))
        self.cur = else_b
        if stmt.orelse:
            self._stmts(stmt.orelse)
        else_end = self.cur
        ends = [e for e in (then_end, else_end) if e is not None]
        if not ends:
            self.cur = None
        elif len(ends) == 1:
            self.cur = ends[0]
        else:
            join = self._new()
            for end in ends:
                self._edge(end, join)
            self.cur = join

    def _while(self, stmt: ast.While) -> None:
        head = self._branch(self.cur)
        self.cur = head
        self._emit(("test", stmt.test))
        body = self._branch(head)
        self.blocks[body].events.append(("guard", stmt.test, True))
        after = self._new()
        always = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if not always:
            self._edge(head, after)
            self.blocks[after].events.append(("guard", stmt.test, False))
        self.loops.append((head, after, len(self.withs)))
        self.cur = body
        self._stmts(stmt.body)
        self._edge(self.cur, head)
        self.loops.pop()
        self.cur = after
        if stmt.orelse:
            self._stmts(stmt.orelse)

    def _for(self, stmt: ast.stmt) -> None:
        head = self._branch(self.cur)
        self.blocks[head].events.append(("stmt", stmt))  # iter + target bind
        body = self._branch(head)
        after = self._branch(head)
        self.loops.append((head, after, len(self.withs)))
        self.cur = body
        self._stmts(stmt.body)
        self._edge(self.cur, head)
        self.loops.pop()
        self.cur = after
        if stmt.orelse:
            self._stmts(stmt.orelse)

    def _with(self, stmt: ast.stmt, is_async: bool) -> None:
        for item in stmt.items:
            self._emit(("enter_with", item, is_async))
            self.withs.append((item, is_async))
        self._stmts(stmt.body)
        for item in reversed(stmt.items):
            self.withs.pop()
            self._emit(("exit_with", item, is_async))

    def _try(self, stmt: ast.stmt) -> None:
        handler_entries = [self._new() for _ in stmt.handlers]
        self._stmts(stmt.body, exc=handler_entries or None)
        if stmt.orelse and self.cur is not None:
            self._stmts(stmt.orelse)
        ends = [] if self.cur is None else [self.cur]
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.cur = entry
            self._emit(("stmt", handler))  # models the ``as name`` binding
            self._stmts(handler.body)
            if self.cur is not None:
                ends.append(self.cur)
        if not ends:
            self.cur = None
            return
        if len(ends) == 1:
            self.cur = ends[0]
        else:
            join = self._new()
            for end in ends:
                self._edge(end, join)
            self.cur = join
        if stmt.finalbody:
            self._stmts(stmt.finalbody)

    def _match(self, stmt: ast.stmt) -> None:
        self._emit(("stmt", stmt))  # subject evaluation
        subject_end = self.cur
        ends: List[int] = []
        for case in stmt.cases:
            arm = self._branch(subject_end)
            self.cur = arm
            self._stmts(case.body)
            if self.cur is not None:
                ends.append(self.cur)
        ends.append(subject_end)  # no arm matched
        join = self._new()
        for end in ends:
            self._edge(end, join)
        self.cur = join

    # -- entry point ---------------------------------------------------
    def build(self) -> CFG:
        self._stmts(self.fn.body)
        self._edge(self.cur, self.exit)
        return CFG(self.fn, self.blocks, self.entry, self.exit)


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg wants a function def, got {type(fn)}")
    return _Builder(fn).build()


def function_defs(tree: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, def-node)`` for every function in ``tree``,
    including methods (``Cls.meth``) and nested defs (``outer.inner``).
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")
