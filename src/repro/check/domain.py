"""Domain helpers shared by the flow-sensitive rule packs.

Lock identity, blocking-call detection and the lockset transfer
function live here so the LOCKSET rules, the async-discipline rules and
the callgraph summaries all agree on what "a lock" and "a blocking
call" mean.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.check.cfg import Event, walk_stmt_expr
from repro.check.engine import dotted_name, name_chain

#: Attribute calls that block on a peer (pipe/queue/process traffic).
BLOCKING_ATTRS = frozenset({
    "recv", "recv_bytes", "send", "send_bytes", "join", "select",
    "accept", "connect", "recvfrom", "sendall",
})

#: ``get``/``put`` block only on queue-ish receivers.
QUEUEISH = ("queue", "pipe", "conn", "chan", "inbox", "outbox", "result")

#: ``sleep`` on these roots is a coroutine, not a thread-blocking call.
_ASYNC_ROOTS = ("asyncio", "anyio", "trio", "curio")

#: ``subprocess`` entry points that wait on the child.
_SUBPROCESS_BLOCKERS = frozenset({"run", "check_call", "check_output", "call"})


def blocking_call_label(node: ast.Call) -> Optional[str]:
    """A short label if ``node`` blocks the calling thread, else None.

    ``.wait()`` is deliberately exempt: condition variables release
    their lock while waiting, so it is not a lock-hold hazard, and
    ``asyncio.wait`` is a coroutine.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    receiver = name_chain(func.value)
    if attr == "sleep":
        root = receiver.split(".")[0] if receiver else ""
        if root in _ASYNC_ROOTS:
            return None
        return "sleep"
    if attr in BLOCKING_ATTRS:
        return attr
    if attr in ("get", "put"):
        if any(q in receiver for q in QUEUEISH):
            return attr
    if attr in _SUBPROCESS_BLOCKERS and receiver.split(".")[0] == "subprocess":
        return f"subprocess.{attr}"
    if attr.startswith("spawn"):
        # worker-process spawns fork and build pipes; a private
        # ``_spawn`` task-tracking helper is not one of these
        return attr
    return None


def awaited_call_ids(node: ast.AST) -> Set[int]:
    """``id()`` of every Call that is the direct operand of an await."""
    return {
        id(sub.value)
        for sub in walk_stmt_expr(node)
        if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call)
    }


def blocking_calls_in(node: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """Non-awaited blocking calls in one statement's subtree."""
    awaited = awaited_call_ids(node)
    for sub in walk_stmt_expr(node):
        if isinstance(sub, ast.Call) and id(sub) not in awaited:
            label = blocking_call_label(sub)
            if label is not None:
                yield sub, label


# ----------------------------------------------------------------------
# lock identity + lockset transfer
# ----------------------------------------------------------------------

def lock_token(expr: ast.AST) -> Optional[str]:
    """A stable token naming the lock an expression denotes, or None if
    the expression is not lock-ish (no segment mentions lock/mutex)."""
    token = dotted_name(expr)
    if not token:
        return None
    for segment in token.lower().split("."):
        if "lock" in segment or "mutex" in segment:
            return token
    return None


def canonical_lock_token(
    token: str, module: str, class_name: Optional[str]
) -> str:
    """Qualify a lock token so the same lock object gets the same name
    across modules: ``self._lock`` inside ``SlabPool`` becomes
    ``repro.analysis.shm.SlabPool._lock``."""
    parts = token.split(".")
    if parts[0] in ("self", "cls") and class_name:
        return ".".join([module, class_name] + parts[1:])
    return f"{module}.{token}"


def _acquire_release_tokens(
    node: ast.AST,
) -> Iterator[Tuple[str, str, ast.Call]]:
    """``(op, token, call)`` for explicit ``x.acquire()``/``x.release()``
    calls on lock-ish receivers inside one statement."""
    for sub in walk_stmt_expr(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("acquire", "release", "release_lock"):
            continue
        token = lock_token(func.value)
        if token is None:
            continue
        op = "acquire" if func.attr == "acquire" else "release"
        yield op, token, sub

def lockset_transfer(
    state: FrozenSet[object], event: Event
) -> FrozenSet[object]:
    """Dataflow transfer tracking the set of *sync* lock tokens held.

    ``async with`` items are ignored -- an asyncio lock never blocks
    the loop's thread; ASYNC404 is about *sync* locks held across
    awaits.
    """
    kind = event[0]
    if kind == "enter_with" and not event[2]:
        token = lock_token(event[1].context_expr)
        if token is not None:
            return state | {token}
    elif kind == "exit_with" and not event[2]:
        token = lock_token(event[1].context_expr)
        if token is not None:
            return state - {token}
    elif kind == "stmt":
        changed = False
        out = set(state)
        for op, token, _call in _acquire_release_tokens(event[1]):
            changed = True
            if op == "acquire":
                out.add(token)
            else:
                out.discard(token)
        if changed:
            return frozenset(out)
    return state


def lock_acquisitions(event: Event) -> List[Tuple[str, int, int]]:
    """``(token, line, col)`` for every lock acquisition an event
    performs (``with``-entry or explicit ``.acquire()``)."""
    kind = event[0]
    out: List[Tuple[str, int, int]] = []
    if kind == "enter_with" and not event[2]:
        item = event[1]
        token = lock_token(item.context_expr)
        if token is not None:
            node = item.context_expr
            out.append((token, node.lineno, node.col_offset + 1))
    elif kind == "stmt":
        for op, token, call in _acquire_release_tokens(event[1]):
            if op == "acquire":
                out.append((token, call.lineno, call.col_offset + 1))
    return out
