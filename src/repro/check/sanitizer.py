"""Runtime sanitizers: the dynamic half of :mod:`repro.check`.

The lint rules prove discipline *syntactically*; the sanitizers enforce
it *at runtime*:

* :class:`SanitizedAutomaton` is the interpreter engine with a
  **write barrier** on its state planes.  While a cell's rule executes,
  the planes are locked to that cell: any store to a foreign index --
  however deviously reached (``engine._data[j] = x`` from inside a
  rule, a leaked snapshot, a mutated aux view) -- raises
  :class:`~repro.gca.errors.OwnerWriteViolation` at the exact write,
  turning the paper's CROW contract from documentation into an
  assertion.  It also re-counts every global read independently of the
  engine's :class:`~repro.gca.instrumentation.ReadRecorder` and raises
  :class:`SanitizerMismatch` when the two disagree -- a cross-check of
  the Table 1 congestion accounting itself.
* :class:`ShmSanitizer` observes the shared-memory layer
  (:mod:`repro.analysis.shm`): it tracks every segment created, attached
  and unlinked during its window, stamps a **write epoch** into the
  spare tail of every pooled slab handed out and verifies the stamp on
  release (a concurrent writer overrunning its requested region clobbers
  the stamp), and flags double-acquisition of a live slab.  On exit it
  fails loudly on any segment the window leaked.

Entry points: ``connected_components(..., sanitize=True)``,
:func:`run_sanitized`, and the :func:`shm_sanitizer` context manager
(``python -m repro serve-bench --sanitize-shm`` wires it around the
pool).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis import shm as shm_mod
from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import CellUpdate, CellView, Neighbor
from repro.gca.errors import GCAError, OwnerWriteViolation
from repro.gca.instrumentation import GenerationStats
from repro.gca.rules import Rule


class SanitizerMismatch(GCAError):
    """The sanitizer's independent read tally disagrees with the
    engine's congestion instrumentation -- one of the two is lying."""


# ----------------------------------------------------------------------
# the CROW write barrier
# ----------------------------------------------------------------------
class _Guard:
    """Shared write-lock state of one automaton's planes.

    ``owner is None`` -- unlocked (engine bookkeeping between cells and
    between generations).  ``owner == i`` -- only element ``i`` may be
    stored; everything else raises.
    """

    __slots__ = ("owner",)

    def __init__(self) -> None:
        self.owner: Optional[int] = None


class GuardedArray(np.ndarray):
    """An int64 plane whose ``__setitem__`` enforces owner-only writes.

    The guard propagates through views (``__array_finalize__``) and the
    anchor records the plane's buffer span, so a write through *any*
    alias -- ``engine._pointer[1:]``, a reversed view, a smuggled
    slice -- is mapped back to the absolute cell index it lands on
    before the owner check.  Copies are private memory and exempt: a
    rule may scratch on them freely, and the moment a result is stored
    back into a real plane the barrier sees it.
    """

    _guard: Optional[_Guard] = None
    _anchor: Optional[Tuple[int, int]] = None  # plane buffer [start, end)

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._guard = getattr(obj, "_guard", None)
            self._anchor = getattr(obj, "_anchor", None)

    def __setitem__(self, key, value) -> None:
        guard = self._guard
        if (
            guard is not None
            and guard.owner is not None
            and self._overlaps_plane()
        ):
            self._check_owner_write(key, guard.owner)
        super().__setitem__(key, value)

    def _overlaps_plane(self) -> bool:
        """Whether this array's data lives inside the guarded plane.

        Copies allocate fresh memory outside the anchored span -- they
        are scratch space, not shared state.  Missing provenance stays
        conservative."""
        anchor = self._anchor
        if anchor is None:
            return True
        start, end = anchor
        addr = int(self.__array_interface__["data"][0])
        return start <= addr < end

    def _check_owner_write(self, key, owner: int) -> None:
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self.shape[0]
            anchor = self._anchor
            if anchor is not None and self.ndim == 1:
                # map the view-local index to the absolute plane index
                addr = int(self.__array_interface__["data"][0])
                addr += index * self.strides[0]
                index = (addr - anchor[0]) // self.itemsize
            if index == owner:
                return
            raise OwnerWriteViolation(
                f"write to cell {index} while cell {owner} executes; "
                "CROW permits a cell to write only its own state"
            )
        raise OwnerWriteViolation(
            f"non-scalar write ({key!r}) to a guarded plane while cell "
            f"{owner} executes; CROW permits only the owner's element"
        )


def _guarded(arr: np.ndarray, guard: _Guard) -> GuardedArray:
    out = np.asarray(arr).view(GuardedArray)
    out._guard = guard
    start = int(out.__array_interface__["data"][0])
    out._anchor = (start, start + out.nbytes)
    return out


class _SanitizingRule(Rule):
    """Wraps the scheduled rule: locks the guard to the executing cell
    and re-counts reads independently of the engine's recorder."""

    def __init__(self, inner: Rule, guard: _Guard, tally: Dict[int, int]):
        self._inner = inner
        self._guard = guard
        self._tally = tally

    def is_active(self, cell: CellView) -> bool:
        return self._inner.is_active(cell)

    def pointer(self, cell: CellView) -> int:
        return self._inner.pointer(cell)

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        return self._inner.update(cell, neighbor)

    def step(
        self, cell: CellView, read: Callable[[int], Neighbor]
    ) -> CellUpdate:
        # the wrapper is the barrier mechanism itself, not a GCA rule:
        # arming the guard and tallying reads is its entire job
        self._guard.owner = cell.index  # repro-check: allow[CROW002]
        tally = self._tally

        def counted_read(target: int) -> Neighbor:
            neighbor = read(target)
            tally[neighbor.index] = tally.get(neighbor.index, 0) + 1
            return neighbor

        return self._inner.step(cell, counted_read)


@dataclass
class SanitizerReport:
    """What a sanitized run observed (attached to the result)."""

    generations: int = 0
    total_reads: int = 0
    peak_congestion: int = 0
    mismatches: List[str] = field(default_factory=list)

    def note_generation(
        self, stats: GenerationStats, tally: Dict[int, int]
    ) -> None:
        self.generations += 1
        self.total_reads += sum(tally.values())
        self.peak_congestion = max(
            self.peak_congestion, max(tally.values(), default=0)
        )

    def summary(self) -> str:
        return (
            f"sanitizer: {self.generations} generations verified, "
            f"{self.total_reads} reads cross-checked, "
            f"peak congestion {self.peak_congestion}, "
            f"{len(self.mismatches)} mismatches"
        )


class SanitizedAutomaton(GlobalCellularAutomaton):
    """The interpreter engine with the CROW write barrier armed.

    Drop-in for :class:`~repro.gca.automaton.GlobalCellularAutomaton`
    (pass as ``engine_factory`` to
    :class:`~repro.core.machine.GCAConnectedComponents`).  Each
    :meth:`step` additionally cross-validates the generation's
    per-cell read counts against the engine's own recorder.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._guard = _Guard()
        self._data = _guarded(self._data, self._guard)
        self._pointer = _guarded(self._pointer, self._guard)
        self.sanitizer_report = SanitizerReport()

    def step(self, rule: Rule, label: Optional[str] = None) -> GenerationStats:
        tally: Dict[int, int] = {}
        wrapped = _SanitizingRule(rule, self._guard, tally)
        try:
            stats = super().step(wrapped, label=label)
        finally:
            self._guard.owner = None
            # the commit swapped in freshly-copied planes whose anchors
            # still describe the previous buffers; re-anchor so the next
            # generation guards the planes that are actually live
            self._data = _guarded(self._data, self._guard)
            self._pointer = _guarded(self._pointer, self._guard)
        if stats.reads_per_cell != tally:
            raise SanitizerMismatch(
                f"generation {stats.label!r}: engine recorded "
                f"{stats.total_reads} reads (max congestion "
                f"{stats.max_congestion}), sanitizer counted "
                f"{sum(tally.values())} (max "
                f"{max(tally.values(), default=0)})"
            )
        self.sanitizer_report.note_generation(stats, tally)
        return stats

    def load(self, data=None, pointers=None) -> None:
        super().load(data, pointers)
        self._data = _guarded(self._data, self._guard)
        self._pointer = _guarded(self._pointer, self._guard)


def run_sanitized(graph, iterations: Optional[int] = None):
    """Run the full interpreter solve under the CROW write barrier.

    Returns the usual
    :class:`~repro.core.machine.InterpreterResult`, with
    :attr:`~repro.core.machine.InterpreterResult.sanitizer` holding the
    :class:`SanitizerReport`.
    """
    from repro.core.machine import GCAConnectedComponents

    machine = GCAConnectedComponents(
        graph, iterations=iterations, engine_factory=SanitizedAutomaton
    )
    result = machine.run()
    # hand back a plain ndarray, not the guarded view
    result.labels = np.array(result.labels, dtype=np.int64)
    return result


# ----------------------------------------------------------------------
# the shared-memory sanitizer
# ----------------------------------------------------------------------
class ShmSanitizerError(RuntimeError):
    """The shm sanitizer found leaked segments or write-epoch races."""


#: Bytes of slab tail needed to hold one epoch stamp.
_STAMP_BYTES = 8


class ShmSanitizer:
    """Observer for :mod:`repro.analysis.shm` (install via
    :func:`shm_sanitizer`).

    Tracks create/attach/close/unlink per segment, stamps a
    monotonically increasing epoch into the spare tail of every pooled
    slab on acquire and re-checks it on release.  Thread-safe (the
    serve pool acquires from several threads).
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self.created: Dict[str, int] = {}
        self.unlinked: set = set()
        self.attaches = 0
        self.closes = 0
        self.slab_acquires = 0
        self.stamps_verified = 0
        self.violations: List[str] = []
        self._epoch = 0
        self._checked_out: Dict[int, Tuple[str, Optional[int], int]] = {}

    # -- observer hooks (called by repro.analysis.shm) ------------------
    def on_create(self, name: str, nbytes: int) -> None:
        with self._lock:
            self.created[name] = nbytes

    def on_unlink(self, name: str) -> None:
        with self._lock:
            self.unlinked.add(name)

    def on_attach(self, name: str) -> None:
        with self._lock:
            self.attaches += 1

    def on_close(self, name: str) -> None:
        with self._lock:
            self.closes += 1

    def on_acquire(self, slab) -> None:
        tail = self._tail_view(slab)
        with self._lock:
            self.slab_acquires += 1
            self._epoch += 1
            epoch = self._epoch
            for _key, (name, _stamp, _e) in self._checked_out.items():
                if name == slab.block.ref.name:
                    self.violations.append(
                        f"slab {name} acquired while already checked out"
                    )
            stamp = None
            if tail is not None:
                tail[0] = epoch
                stamp = epoch
            self._checked_out[id(slab)] = (
                slab.block.ref.name, stamp, epoch
            )

    def on_release(self, slab) -> None:
        tail = self._tail_view(slab)
        with self._lock:
            entry = self._checked_out.pop(id(slab), None)
            if entry is None:
                self.violations.append(
                    f"slab {slab.block.ref.name} released but never "
                    "acquired during the sanitizer window"
                )
                return
            name, stamp, _epoch = entry
            if stamp is not None and tail is not None:
                if int(tail[0]) == stamp:
                    self.stamps_verified += 1
                else:
                    self.violations.append(
                        f"slab {name}: write-epoch stamp clobbered "
                        f"(expected {stamp}, found {int(tail[0])}); a "
                        "writer overran its requested region"
                    )

    # -- verdicts -------------------------------------------------------
    @staticmethod
    def _tail_view(slab) -> Optional[np.ndarray]:
        """The epoch slot: the last 8 bytes of the slab's block, when
        the requested array leaves at least that much spare capacity."""
        if slab.capacity - slab.ref.nbytes < _STAMP_BYTES:
            return None
        return np.ndarray(
            (1,), dtype=np.int64, buffer=slab.block._shm.buf,
            offset=slab.capacity - _STAMP_BYTES,
        )

    def leaked(self) -> List[str]:
        """Segments created during the window and never unlinked."""
        with self._lock:
            return sorted(set(self.created) - self.unlinked)

    def verify(self) -> None:
        """Raise :class:`ShmSanitizerError` on leaks or violations."""
        problems = list(self.violations)
        leaks = self.leaked()
        if leaks:
            problems.append(
                f"{len(leaks)} leaked shm segment(s): {', '.join(leaks)}"
            )
        if problems:
            raise ShmSanitizerError("; ".join(problems))

    def summary(self) -> str:
        return (
            f"shm sanitizer: {len(self.created)} segments created, "
            f"{self.attaches} attaches, {self.slab_acquires} slab "
            f"acquires, {self.stamps_verified} epoch stamps verified, "
            f"{len(self.leaked())} leaked, "
            f"{len(self.violations)} violations"
        )


@contextmanager
def shm_sanitizer(strict: bool = True) -> Iterator[ShmSanitizer]:
    """Install a :class:`ShmSanitizer` for the duration of the block.

    On clean exit, :meth:`ShmSanitizer.verify` runs (unless
    ``strict=False``) and raises :class:`ShmSanitizerError` on leaked
    segments or epoch races.  An exception inside the block propagates
    unmasked; the observer is restored either way.
    """
    sanitizer = ShmSanitizer()
    previous = shm_mod.set_shm_observer(sanitizer)
    try:
        yield sanitizer
    finally:
        shm_mod.set_shm_observer(previous)
    if strict:
        sanitizer.verify()
