"""Runtime sanitizers: the dynamic half of :mod:`repro.check`.

The lint rules prove discipline *syntactically*; the sanitizers enforce
it *at runtime*:

* the **CROW write barrier** (:class:`SanitizedAutomaton`,
  :func:`run_sanitized`, :class:`SanitizerReport`,
  :class:`SanitizerMismatch`) locks the interpreter's state planes to
  the executing cell and re-counts every global read.  The
  implementation lives in :mod:`repro.gca.sanitized` -- it subclasses
  the engine, and the check layer is closed over stdlib+numpy (rule
  ARCH601) -- but the names re-export from here lazily, so
  ``from repro.check.sanitizer import SanitizedAutomaton`` keeps
  working without the linter ever importing the GCA stack.
* :class:`ShmSanitizer` observes the shared-memory layer
  (:mod:`repro.analysis.shm`): it tracks every segment created, attached
  and unlinked during its window, stamps a **write epoch** into the
  spare tail of every pooled slab handed out and verifies the stamp on
  release (a concurrent writer overrunning its requested region clobbers
  the stamp), and flags double-acquisition of a live slab.  On exit it
  fails loudly on any segment the window leaked.

Entry points: ``connected_components(..., sanitize=True)``,
:func:`run_sanitized`, and the :func:`shm_sanitizer` context manager
(``python -m repro serve-bench --sanitize-shm`` wires it around the
pool).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

#: Names whose implementation lives in :mod:`repro.gca.sanitized`;
#: resolved on first attribute access (PEP 562) so that importing this
#: module -- which the lint CLI does for ``ShmSanitizerError`` -- never
#: drags in the interpreter engine.
_BARRIER_EXPORTS = (
    "GuardedArray",
    "SanitizedAutomaton",
    "SanitizerMismatch",
    "SanitizerReport",
    "run_sanitized",
)


def __getattr__(name: str) -> object:
    if name in _BARRIER_EXPORTS:
        from repro.gca import sanitized

        return getattr(sanitized, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# the shared-memory sanitizer
# ----------------------------------------------------------------------
class ShmSanitizerError(RuntimeError):
    """The shm sanitizer found leaked segments or write-epoch races."""


#: Bytes of slab tail needed to hold one epoch stamp.
_STAMP_BYTES = 8


class ShmSanitizer:
    """Observer for :mod:`repro.analysis.shm` (install via
    :func:`shm_sanitizer`).

    Tracks create/attach/close/unlink per segment, stamps a
    monotonically increasing epoch into the spare tail of every pooled
    slab on acquire and re-checks it on release.  Thread-safe (the
    serve pool acquires from several threads).
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self.created: Dict[str, int] = {}
        self.unlinked: set = set()
        self.attaches = 0
        self.closes = 0
        self.slab_acquires = 0
        self.stamps_verified = 0
        self.violations: List[str] = []
        self._epoch = 0
        self._checked_out: Dict[int, Tuple[str, Optional[int], int]] = {}

    # -- observer hooks (called by repro.analysis.shm) ------------------
    def on_create(self, name: str, nbytes: int) -> None:
        with self._lock:
            self.created[name] = nbytes

    def on_unlink(self, name: str) -> None:
        with self._lock:
            self.unlinked.add(name)

    def on_attach(self, name: str) -> None:
        with self._lock:
            self.attaches += 1

    def on_close(self, name: str) -> None:
        with self._lock:
            self.closes += 1

    def on_acquire(self, slab: Any) -> None:
        tail = self._tail_view(slab)
        with self._lock:
            self.slab_acquires += 1
            self._epoch += 1
            epoch = self._epoch
            for _key, (name, _stamp, _e) in self._checked_out.items():
                if name == slab.block.ref.name:
                    self.violations.append(
                        f"slab {name} acquired while already checked out"
                    )
            stamp = None
            if tail is not None:
                tail[0] = epoch
                stamp = epoch
            self._checked_out[id(slab)] = (
                slab.block.ref.name, stamp, epoch
            )

    def on_release(self, slab: Any) -> None:
        tail = self._tail_view(slab)
        with self._lock:
            entry = self._checked_out.pop(id(slab), None)
            if entry is None:
                self.violations.append(
                    f"slab {slab.block.ref.name} released but never "
                    "acquired during the sanitizer window"
                )
                return
            name, stamp, _epoch = entry
            if stamp is not None and tail is not None:
                if int(tail[0]) == stamp:
                    self.stamps_verified += 1
                else:
                    self.violations.append(
                        f"slab {name}: write-epoch stamp clobbered "
                        f"(expected {stamp}, found {int(tail[0])}); a "
                        "writer overran its requested region"
                    )

    # -- verdicts -------------------------------------------------------
    @staticmethod
    def _tail_view(slab: Any) -> Optional[np.ndarray]:
        """The epoch slot: the last 8 bytes of the slab's block, when
        the requested array leaves at least that much spare capacity."""
        if slab.capacity - slab.ref.nbytes < _STAMP_BYTES:
            return None
        return np.ndarray(
            (1,), dtype=np.int64, buffer=slab.block._shm.buf,
            offset=slab.capacity - _STAMP_BYTES,
        )

    def leaked(self) -> List[str]:
        """Segments created during the window and never unlinked."""
        with self._lock:
            return sorted(set(self.created) - self.unlinked)

    def verify(self) -> None:
        """Raise :class:`ShmSanitizerError` on leaks or violations."""
        problems = list(self.violations)
        leaks = self.leaked()
        if leaks:
            problems.append(
                f"{len(leaks)} leaked shm segment(s): {', '.join(leaks)}"
            )
        if problems:
            raise ShmSanitizerError("; ".join(problems))

    def summary(self) -> str:
        return (
            f"shm sanitizer: {len(self.created)} segments created, "
            f"{self.attaches} attaches, {self.slab_acquires} slab "
            f"acquires, {self.stamps_verified} epoch stamps verified, "
            f"{len(self.leaked())} leaked, "
            f"{len(self.violations)} violations"
        )


@contextmanager
def shm_sanitizer(strict: bool = True) -> Iterator[ShmSanitizer]:
    """Install a :class:`ShmSanitizer` for the duration of the block.

    On clean exit, :meth:`ShmSanitizer.verify` runs (unless
    ``strict=False``) and raises :class:`ShmSanitizerError` on leaked
    segments or epoch races.  An exception inside the block propagates
    unmasked; the observer is restored either way.
    """
    # imported here, not at module top: repro.check is a closed layer
    # (stdlib+numpy only at the top level; ARCH601 enforces it)
    from repro.analysis import shm as shm_mod

    sanitizer = ShmSanitizer()
    previous = shm_mod.set_shm_observer(sanitizer)
    try:
        yield sanitizer
    finally:
        shm_mod.set_shm_observer(previous)
    if strict:
        sanitizer.verify()
