"""Intraprocedural forward dataflow over the :mod:`repro.check.cfg` CFG.

The framework is tiny on purpose: an analysis is a *state type*
(anything hashable-equatable; the built-ins use ``frozenset``), a
``transfer`` over one CFG event, and a ``join`` at merge points.
:func:`solve_forward` runs the classic worklist fixpoint;
:func:`iter_event_states` replays the solution so a rule can ask "what
was the state just before this statement?" -- which is all the lockset,
async-discipline and taint rules need.

All concrete analyses here are **may**-analyses with union join:
over-approximating reachability can create a false positive (silenced
with a reviewed ``allow[...]``), never a silent false negative.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Dict, FrozenSet, Iterator, Tuple

from repro.check.cfg import CFG, Event, walk_stmt_expr

#: Dataflow state: a frozenset of analysis-specific facts.
State = FrozenSet[object]

EMPTY: State = frozenset()

#: ``transfer(state, event) -> state`` over one CFG event.
Transfer = Callable[[State, Event], State]


def solve_forward(
    cfg: CFG, transfer: Transfer, initial: State = EMPTY
) -> Dict[int, State]:
    """Run the worklist fixpoint; returns the state at *entry* of every
    reachable block (union join at merges)."""
    states: Dict[int, State] = {cfg.entry: initial}
    work = deque([cfg.entry])
    while work:
        bid = work.popleft()
        state = states[bid]
        for event in cfg.blocks[bid].events:
            state = transfer(state, event)
        for succ in cfg.blocks[bid].succs:
            if succ not in states:
                states[succ] = state
                work.append(succ)
            else:
                merged = states[succ] | state
                if merged != states[succ]:
                    states[succ] = merged
                    work.append(succ)
    return states


def iter_event_states(
    cfg: CFG, transfer: Transfer, initial: State = EMPTY
) -> Iterator[Tuple[Event, State]]:
    """Yield ``(event, state-before-event)`` for every event in every
    reachable block, after solving to fixpoint."""
    entry_states = solve_forward(cfg, transfer, initial)
    for bid in cfg.reachable():
        state = entry_states[bid]
        for event in cfg.blocks[bid].events:
            yield event, state
            state = transfer(state, event)


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------

def _bound_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def definitions_in_event(event: Event) -> Iterator[Tuple[str, int]]:
    """``(name, line)`` for every local name an event (re)binds."""
    kind = event[0]
    if kind == "stmt":
        node = event[1]
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _bound_names(target):
                    yield name, node.lineno
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            for name in _bound_names(node.target):
                yield name, node.lineno
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in _bound_names(node.target):
                yield name, node.lineno
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            yield node.name, node.lineno
        elif isinstance(node, ast.ExceptHandler) and node.name:
            yield node.name, node.lineno
        elif isinstance(node, (ast.Assign,)):  # pragma: no cover
            pass
        elif isinstance(node, ast.Expr):
            # walrus targets inside expression statements
            for sub in walk_stmt_expr(node):
                if isinstance(sub, ast.NamedExpr):
                    for name in _bound_names(sub.target):
                        yield name, sub.lineno
    elif kind == "enter_with":
        item = event[1]
        if item.optional_vars is not None:
            for name in _bound_names(item.optional_vars):
                yield name, item.context_expr.lineno


def reaching_definitions(cfg: CFG) -> Dict[int, State]:
    """Classic reaching definitions: at each block entry, the set of
    ``(name, def_line)`` pairs that may reach it.  Parameters are
    modelled as definitions at the function's header line."""

    def transfer(state: State, event: Event) -> State:
        defs = list(definitions_in_event(event))
        if not defs:
            return state
        killed = {name for name, _ in defs}
        kept = {fact for fact in state if fact[0] not in killed}
        kept.update(defs)
        return frozenset(kept)

    fn = cfg.fn
    initial = frozenset(
        (arg.arg, fn.lineno)
        for arg in (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
            + ([fn.args.vararg] if fn.args.vararg else [])
            + ([fn.args.kwarg] if fn.args.kwarg else [])
        )
    )
    return solve_forward(cfg, transfer, initial)


def expr_names(node: ast.AST) -> FrozenSet[str]:
    """All plain names read in an expression subtree (nested scopes
    skipped), for "does this expression mention X" queries."""
    return frozenset(
        sub.id for sub in walk_stmt_expr(node) if isinstance(sub, ast.Name)
    )
