"""Serve-side metrics: counters, latency percentiles, JSON snapshots.

One :class:`ServeMetrics` instance aggregates everything the operator of
a :class:`~repro.serve.server.Server` needs to see at a glance:

* monotonic counters (submitted / completed / shed / timed-out /
  deadline-missed / retries / worker restarts / batches dispatched);
* batch occupancy (how full the dynamic batches actually are -- the
  whole point of micro-batching);
* sliding-window latency reservoirs for time-in-queue, service time and
  end-to-end latency, summarised as p50/p95/p99/mean/max;
* throughput over the lifetime of the window;
* wire-level gauges and counters for the socket gateway: open
  connections, bytes and frames in/out, protocol errors, and an
  accept-to-admit latency reservoir (frame fully received to admission
  decided -- the gateway's own overhead, separate from solve latency).

Everything is thread-safe (one lock, updated on the worker path) and
cheap: recording a completion is a few counter bumps plus three deque
appends.  :meth:`ServeMetrics.snapshot` renders a plain-``dict`` /
JSON-ready view; gauges that live in the server (queue depth, in-flight
batches) are merged in by the caller so this module stays free of server
internals.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

#: Samples kept per latency reservoir (a sliding window of the most
#: recent completions; enough for stable tail percentiles).
RESERVOIR_SIZE = 8192

#: Percentiles reported for every latency series.
PERCENTILES = (50.0, 95.0, 99.0)


def _summary(samples: Deque[float]) -> Dict[str, Optional[float]]:
    """p50/p95/p99/mean/max (milliseconds) of one reservoir.

    With zero samples every statistic is ``None`` (JSON ``null``), never
    ``0.0``: a dashboard must be able to tell "no traffic yet" apart
    from "everything resolved instantly".
    """
    if not samples:
        out: Dict[str, Optional[float]] = {"count": 0}
        for p in PERCENTILES:
            out[f"p{p:g}_ms"] = None
        out["mean_ms"] = None
        out["max_ms"] = None
        return out
    arr = np.fromiter(samples, dtype=np.float64) * 1e3
    out: Dict[str, float] = {"count": int(arr.size)}
    for p, value in zip(PERCENTILES, np.percentile(arr, PERCENTILES)):
        out[f"p{p:g}_ms"] = round(float(value), 4)
    out["mean_ms"] = round(float(arr.mean()), 4)
    out["max_ms"] = round(float(arr.max()), 4)
    return out


class ServeMetrics:
    """Aggregated serve metrics; see module docstring.

    All ``record_*`` methods are safe to call from any thread.
    """

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE):
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.shed = 0
        self.timed_out = 0
        self.cancelled = 0
        self.errors = 0
        self.deadline_misses = 0
        self.retries = 0
        self.worker_restarts = 0
        self.batches = 0
        self._occupancy_sum = 0
        self._occupancy_max = 0
        self._queue_s: Deque[float] = deque(maxlen=reservoir_size)
        self._service_s: Deque[float] = deque(maxlen=reservoir_size)
        self._latency_s: Deque[float] = deque(maxlen=reservoir_size)
        # wire-level (socket gateway) state; stays all-zero for a
        # purely in-process server
        self.wire_connections_open = 0
        self.wire_connections_total = 0
        self.wire_bytes_in = 0
        self.wire_bytes_out = 0
        self.wire_frames_in = 0
        self.wire_frames_out = 0
        self.wire_protocol_errors = 0
        self._admit_s: Deque[float] = deque(maxlen=reservoir_size)

    # -- recording -----------------------------------------------------
    def record_submitted(self, admitted: bool) -> None:
        with self._lock:
            self.submitted += 1
            if admitted:
                self.admitted += 1
            else:
                self.shed += 1

    def record_batch(self, occupancy: int) -> None:
        with self._lock:
            self.batches += 1
            self._occupancy_sum += occupancy
            self._occupancy_max = max(self._occupancy_max, occupancy)

    def record_completion(
        self,
        queued_seconds: float,
        service_seconds: float,
        latency_seconds: float,
        deadline_missed: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            if deadline_missed:
                self.deadline_misses += 1
            self._queue_s.append(queued_seconds)
            self._service_s.append(service_seconds)
            self._latency_s.append(latency_seconds)

    def record_completions(
        self,
        samples: Sequence[Tuple[float, float, float, bool]],
    ) -> None:
        """Batch form of :meth:`record_completion`: one lock acquisition
        for a whole coalesced/stacked flush.  Each sample is
        ``(queued_seconds, service_seconds, latency_seconds, missed)``.
        """
        with self._lock:
            self.completed += len(samples)
            for queued, service, latency, missed in samples:
                if missed:
                    self.deadline_misses += 1
                self._queue_s.append(queued)
                self._service_s.append(service)
                self._latency_s.append(latency)

    def record_timeout(self) -> None:
        with self._lock:
            self.timed_out += 1
            self.deadline_misses += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1

    # -- wire (socket gateway) -----------------------------------------
    def record_connection_open(self) -> None:
        with self._lock:
            self.wire_connections_open += 1
            self.wire_connections_total += 1

    def record_connection_close(self) -> None:
        with self._lock:
            self.wire_connections_open -= 1

    def record_wire_in(self, nbytes: int, frames: int = 1) -> None:
        """Bytes (and decoded frames) received on gateway sockets."""
        with self._lock:
            self.wire_bytes_in += nbytes
            self.wire_frames_in += frames

    def record_wire_out(self, nbytes: int, frames: int = 1) -> None:
        """Bytes (and frames) written back to gateway sockets."""
        with self._lock:
            self.wire_bytes_out += nbytes
            self.wire_frames_out += frames

    def record_wire_error(self) -> None:
        """A malformed / rejected frame (bad magic, oversized, ...)."""
        with self._lock:
            self.wire_protocol_errors += 1

    def record_admit(self, seconds: float) -> None:
        """Accept-to-admit: request fully received -> admission decided."""
        with self._lock:
            self._admit_s.append(seconds)

    # -- reporting -----------------------------------------------------
    def snapshot(self, gauges: Optional[Dict[str, float]] = None) -> Dict:
        """A JSON-ready view of every counter, rate and percentile.

        ``gauges`` (e.g. current queue depth) are merged under a
        ``"gauges"`` key; the caller owns their meaning.
        """
        with self._lock:
            elapsed = max(time.monotonic() - self._started_monotonic, 1e-9)
            snap: Dict = {
                "uptime_seconds": round(elapsed, 3),
                "started_at_unix": round(self._started_wall, 3),
                "counters": {
                    "submitted": self.submitted,
                    "admitted": self.admitted,
                    "completed": self.completed,
                    "shed": self.shed,
                    "timed_out": self.timed_out,
                    "cancelled": self.cancelled,
                    "errors": self.errors,
                    "deadline_misses": self.deadline_misses,
                    "retries": self.retries,
                    "worker_restarts": self.worker_restarts,
                    "batches": self.batches,
                },
                "throughput_rps": round(self.completed / elapsed, 3),
                # mean is null (not 0.0) before the first batch: "no
                # batches yet" and "empty batches" must not look alike
                "batch_occupancy": {
                    "mean": round(self._occupancy_sum / self.batches, 3)
                    if self.batches else None,
                    "max": self._occupancy_max,
                },
                "queue_time": _summary(self._queue_s),
                "service_time": _summary(self._service_s),
                "latency": _summary(self._latency_s),
                "wire": {
                    "open_connections": self.wire_connections_open,
                    "connections_total": self.wire_connections_total,
                    "bytes_in": self.wire_bytes_in,
                    "bytes_out": self.wire_bytes_out,
                    "frames_in": self.wire_frames_in,
                    "frames_out": self.wire_frames_out,
                    "protocol_errors": self.wire_protocol_errors,
                    "accept_to_admit": _summary(self._admit_s),
                },
            }
        if gauges:
            snap["gauges"] = dict(gauges)
        return snap

    def to_json(self, gauges: Optional[Dict[str, float]] = None,
                indent: int = 2) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(gauges), indent=indent, sort_keys=True)
