"""``repro.serve`` -- dynamic micro-batching request serving.

The step from "fast library" to "service": a stream of independent
connected-components requests is admitted through a bounded queue,
packed into size buckets, priced by the dispatcher's measured cost
model, and executed as stacked :class:`~repro.core.batched.BatchedGCA`
batches (or solo sparse runs) on a worker pool -- with per-request
deadlines, cancellation, retries, backpressure, graceful drain and a
full serve-side metrics layer.

Quickstart::

    from repro.serve import Server, serve_many

    responses = serve_many(graphs, deadline=0.5, workers=4)

    with Server(workers=4, max_wait=0.002) as server:
        handle = server.submit(graph, deadline=0.2)
        labels = handle.result()
        print(server.metrics.to_json())

Modules
-------
``repro.serve.request``
    :class:`CCRequest` / :class:`CCResponse` / :class:`ResultHandle`
    value types and the terminal :class:`RequestStatus`.
``repro.serve.scheduler``
    The thread-free batching policy: buckets, flush triggers, cost-model
    engine choice.
``repro.serve.workers``
    Execution backends: dense stacked runs, solo engines, the
    shared-memory process pool for large sparse requests.
``repro.serve.executor``
    The persistent pre-forked :class:`PoolExecutor`: whole flushed
    batches on all cores through shared-memory slabs, with heartbeats,
    crash replacement and measured dispatch overhead.
``repro.serve.cache``
    The content-addressed :class:`ResultCache` keyed by
    :func:`graph_fingerprint`.
``repro.serve.metrics``
    Counters, occupancy and latency percentiles with JSON snapshots.
``repro.serve.server``
    The :class:`Server` tying it all together, and :func:`serve_many`.
``repro.serve.protocol``
    The compact length-prefixed binary wire codec (plus the JSON-lines
    convenience dialect): zero-copy encode/decode of edge payloads and
    chunked label streams.
``repro.serve.gateway``
    The asyncio TCP front door: :class:`Gateway` /
    :class:`GatewayHandle` / :func:`run_gateway` speaking the binary
    protocol, JSON lines and a minimal HTTP surface in front of a
    :class:`Server`.

Network quickstart::

    from repro.serve import Server, start_gateway

    with Server(workers=4, max_wait=0.002) as server:
        with start_gateway(server, port=7421) as gw:
            print("listening on", gw.address)
            ...

or from the shell: ``python -m repro serve --listen 127.0.0.1:7421``.
"""

from repro.serve.cache import ResultCache, graph_fingerprint
from repro.serve.executor import PoolExecutor
from repro.serve.gateway import (
    Gateway,
    GatewayConfig,
    GatewayHandle,
    run_gateway,
    start_gateway,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.request import (
    CCRequest,
    CCResponse,
    QueueFull,
    RequestStatus,
    ResultHandle,
    ServeError,
    ServerClosed,
)
from repro.serve.scheduler import BatchPlanner
from repro.serve.server import Server, ServerConfig, serve_many
from repro.serve.workers import SparseProcessPool, WorkerDied

__all__ = [
    "BatchPlanner",
    "CCRequest",
    "CCResponse",
    "Gateway",
    "GatewayConfig",
    "GatewayHandle",
    "PoolExecutor",
    "QueueFull",
    "RequestStatus",
    "ResultCache",
    "ResultHandle",
    "ServeError",
    "ServeMetrics",
    "Server",
    "ServerClosed",
    "ServerConfig",
    "SparseProcessPool",
    "WorkerDied",
    "graph_fingerprint",
    "run_gateway",
    "serve_many",
    "start_gateway",
]
