"""Load generators for serve benchmarks and the ``serve-bench`` CLI.

Two classic harness shapes:

* **Open loop** (:func:`run_open_loop`) -- requests arrive on a Poisson
  process at a fixed *offered* rate, regardless of how the server is
  coping.  This is the honest way to measure tail latency and overload
  behaviour: a slow server does not slow the arrival of new work, it
  just watches its queue (and its shed/deadline-miss counters) grow.
* **Closed loop** (:func:`run_closed_loop`) -- a fixed number of
  synchronous clients, each submitting its next request only after the
  previous one resolved.  Offered load adapts to service capacity;
  good for measuring saturated throughput.

:func:`make_workload` builds the mixed-size request stream (dense
G(n, p) graphs over a size ladder, optionally with a sparse edge-list
fraction), and :func:`naive_seconds` times the baseline the server is
judged against: one-request-at-a-time ``connected_components`` with
``engine="auto"`` on the same stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import Thread
from typing import List, Optional, Sequence

import numpy as np

from repro.core.api import connected_components
from repro.graphs.generators import random_graph
from repro.hirschberg.edgelist import random_edge_list
from repro.serve.request import GraphLike, ResultHandle
from repro.serve.server import Server


@dataclass
class LoadSpec:
    """A mixed request stream for the load generators.

    Sizes are drawn from ``sizes`` with weight proportional to
    ``n ** -size_skew`` -- the classic serving shape where small
    requests are the high-QPS end and large ones the heavy tail
    (``size_skew=0`` gives a uniform draw).  Requests are sparse
    :class:`~repro.hirschberg.edgelist.EdgeListGraph` inputs with
    ``edge_factor * n`` edges by default (the tier a request server
    actually receives: edges, not materialised matrices); a
    ``dense_fraction`` of dense ``G(n, p)`` adjacencies exercises the
    stacked dense tier.
    """

    count: int = 200
    sizes: Sequence[int] = (8, 16, 32, 64, 128, 256)
    size_skew: float = 1.0
    edge_factor: float = 2.0
    dense_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    p: float = 0.1
    seed: Optional[int] = 0


def make_workload(spec: LoadSpec) -> List[GraphLike]:
    """The request stream described by ``spec``, in arrival order.

    ``duplicate_fraction`` re-submits a previously generated graph with
    that probability (drawn uniformly from the history) -- the shape of
    real serving traffic with repeats, and the workload the serve
    result cache is benchmarked on.
    """
    rng = np.random.default_rng(spec.seed)
    sizes = np.asarray(spec.sizes, dtype=float)
    weights = sizes ** -spec.size_skew
    weights /= weights.sum()
    graphs: List[GraphLike] = []
    for _ in range(spec.count):
        if (spec.duplicate_fraction and graphs
                and rng.random() < spec.duplicate_fraction):
            graphs.append(graphs[int(rng.integers(len(graphs)))])
            continue
        n = int(rng.choice(sizes, p=weights))
        if spec.dense_fraction and rng.random() < spec.dense_fraction:
            graphs.append(random_graph(n, spec.p,
                                       seed=int(rng.integers(2**31))))
        else:
            graphs.append(random_edge_list(
                n, int(n * spec.edge_factor),
                seed=int(rng.integers(2**31)),
            ))
    return graphs


def poisson_arrivals(count: int, offered_rps: float,
                     seed: Optional[int]) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of an open-loop run.

    The arrival process is sampled *up front* from an explicit seed, so
    a benchmark run is reproducible end to end: same seed, same
    workload, same instants at which each request is offered.
    :func:`run_open_loop` consumes exactly this schedule.
    """
    if offered_rps <= 0:
        raise ValueError(f"offered_rps must be > 0, got {offered_rps}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / offered_rps, size=count))


def naive_seconds(graphs: Sequence[GraphLike]) -> float:
    """Wall seconds for the naive baseline: sequential ``engine="auto"``."""
    start = time.perf_counter()
    for g in graphs:
        connected_components(g, engine="auto")
    return time.perf_counter() - start


def run_open_loop(
    server: Server,
    graphs: Sequence[GraphLike],
    offered_rps: float,
    deadline: Optional[float] = None,
    seed: Optional[int] = 0,
) -> List[ResultHandle]:
    """Submit ``graphs`` on a Poisson arrival process at ``offered_rps``.

    The arrival schedule comes from :func:`poisson_arrivals` under the
    explicit ``seed``, so runs are reproducible.  Returns every handle
    (including shed ones) once all arrivals are in; callers then block
    on the handles to collect terminal responses.
    """
    offsets = poisson_arrivals(len(graphs), offered_rps, seed)
    handles: List[ResultHandle] = []
    start = time.monotonic()
    for g, offset in zip(graphs, offsets):
        delay = start + offset - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        handles.append(server.submit(g, deadline=deadline))
    return handles


def run_closed_loop(
    server: Server,
    graphs: Sequence[GraphLike],
    concurrency: int = 8,
    deadline: Optional[float] = None,
) -> List[ResultHandle]:
    """Serve ``graphs`` from ``concurrency`` synchronous clients.

    Each client thread submits its next request only after its previous
    one resolved; handles are returned in input order.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    handles: List[Optional[ResultHandle]] = [None] * len(graphs)

    def client(worker: int) -> None:
        for idx in range(worker, len(graphs), concurrency):
            handle = server.submit(graphs[idx], deadline=deadline)
            handles[idx] = handle
            handle.response()

    threads = [
        Thread(target=client, args=(w,), name=f"loadgen-client-{w}")
        for w in range(min(concurrency, max(len(graphs), 1)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [h for h in handles if h is not None]
