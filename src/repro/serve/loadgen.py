"""Load generators for serve benchmarks and the ``serve-bench`` CLI.

Two classic harness shapes, each in an in-process and a socket-level
variant:

* **Open loop** (:func:`run_open_loop`, :func:`run_socket_open_loop`) --
  requests arrive on a Poisson process at a fixed *offered* rate,
  regardless of how the server is coping.  This is the honest way to
  measure tail latency and overload behaviour: a slow server does not
  slow the arrival of new work, it just watches its queue (and its
  shed/deadline-miss counters) grow.
* **Closed loop** (:func:`run_closed_loop`,
  :func:`run_socket_closed_loop`) -- a fixed number of synchronous
  clients, each submitting its next request only after the previous one
  resolved.  Offered load adapts to service capacity; good for
  measuring saturated throughput.

The socket variants speak the binary framing of
:mod:`repro.serve.protocol` over N persistent TCP connections to a
running :class:`~repro.serve.gateway.Gateway`, measuring *end-to-end
wire latency*: first byte of the request frame written to final label
chunk received.  That is the number E27 reports -- it contains the
gateway's decode, the admission hop, the solve, and the chunked
response stream.

:func:`make_workload` builds the mixed-size request stream (dense
G(n, p) graphs over a size ladder, optionally with a sparse edge-list
fraction), and :func:`naive_seconds` times the baseline the server is
judged against: one-request-at-a-time ``connected_components`` with
``engine="auto"`` on the same stream.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from threading import Thread
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import connected_components
from repro.graphs.generators import random_graph
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.serve import protocol
from repro.serve.request import GraphLike, ResultHandle
from repro.serve.server import Server


@dataclass
class LoadSpec:
    """A mixed request stream for the load generators.

    Sizes are drawn from ``sizes`` with weight proportional to
    ``n ** -size_skew`` -- the classic serving shape where small
    requests are the high-QPS end and large ones the heavy tail
    (``size_skew=0`` gives a uniform draw).  Requests are sparse
    :class:`~repro.hirschberg.edgelist.EdgeListGraph` inputs with
    ``edge_factor * n`` edges by default (the tier a request server
    actually receives: edges, not materialised matrices); a
    ``dense_fraction`` of dense ``G(n, p)`` adjacencies exercises the
    stacked dense tier.
    """

    count: int = 200
    sizes: Sequence[int] = (8, 16, 32, 64, 128, 256)
    size_skew: float = 1.0
    edge_factor: float = 2.0
    dense_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    p: float = 0.1
    seed: Optional[int] = 0


def make_workload(spec: LoadSpec) -> List[GraphLike]:
    """The request stream described by ``spec``, in arrival order.

    ``duplicate_fraction`` re-submits a previously generated graph with
    that probability (drawn uniformly from the history) -- the shape of
    real serving traffic with repeats, and the workload the serve
    result cache is benchmarked on.
    """
    rng = np.random.default_rng(spec.seed)
    sizes = np.asarray(spec.sizes, dtype=float)
    weights = sizes ** -spec.size_skew
    weights /= weights.sum()
    graphs: List[GraphLike] = []
    for _ in range(spec.count):
        if (spec.duplicate_fraction and graphs
                and rng.random() < spec.duplicate_fraction):
            graphs.append(graphs[int(rng.integers(len(graphs)))])
            continue
        n = int(rng.choice(sizes, p=weights))
        if spec.dense_fraction and rng.random() < spec.dense_fraction:
            graphs.append(random_graph(n, spec.p,
                                       seed=int(rng.integers(2**31))))
        else:
            graphs.append(random_edge_list(
                n, int(n * spec.edge_factor),
                seed=int(rng.integers(2**31)),
            ))
    return graphs


def poisson_arrivals(count: int, offered_rps: float,
                     seed: Optional[int]) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of an open-loop run.

    The arrival process is sampled *up front* from an explicit seed, so
    a benchmark run is reproducible end to end: same seed, same
    workload, same instants at which each request is offered.
    :func:`run_open_loop` consumes exactly this schedule.
    """
    if offered_rps <= 0:
        raise ValueError(f"offered_rps must be > 0, got {offered_rps}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / offered_rps, size=count))


def naive_seconds(graphs: Sequence[GraphLike]) -> float:
    """Wall seconds for the naive baseline: sequential ``engine="auto"``."""
    start = time.perf_counter()
    for g in graphs:
        connected_components(g, engine="auto")
    return time.perf_counter() - start


def run_open_loop(
    server: Server,
    graphs: Sequence[GraphLike],
    offered_rps: float,
    deadline: Optional[float] = None,
    seed: Optional[int] = 0,
) -> List[ResultHandle]:
    """Submit ``graphs`` on a Poisson arrival process at ``offered_rps``.

    The arrival schedule comes from :func:`poisson_arrivals` under the
    explicit ``seed``, so runs are reproducible.  Returns every handle
    (including shed ones) once all arrivals are in; callers then block
    on the handles to collect terminal responses.
    """
    offsets = poisson_arrivals(len(graphs), offered_rps, seed)
    handles: List[ResultHandle] = []
    start = time.monotonic()
    for g, offset in zip(graphs, offsets):
        delay = start + offset - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        handles.append(server.submit(g, deadline=deadline))
    return handles


def run_closed_loop(
    server: Server,
    graphs: Sequence[GraphLike],
    concurrency: int = 8,
    deadline: Optional[float] = None,
) -> List[ResultHandle]:
    """Serve ``graphs`` from ``concurrency`` synchronous clients.

    Each client thread submits its next request only after its previous
    one resolved; handles are returned in input order.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    handles: List[Optional[ResultHandle]] = [None] * len(graphs)

    def client(worker: int) -> None:
        for idx in range(worker, len(graphs), concurrency):
            handle = server.submit(graphs[idx], deadline=deadline)
            handles[idx] = handle
            handle.response()

    threads = [
        Thread(target=client, args=(w,), name=f"loadgen-client-{w}")
        for w in range(min(concurrency, max(len(graphs), 1)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [h for h in handles if h is not None]


# ----------------------------------------------------------------------
# socket-level drivers (binary wire protocol over persistent TCP)
# ----------------------------------------------------------------------

def oracle_labels(graph: GraphLike) -> np.ndarray:
    """Reference labels for correctness checks on wire results: the
    in-process ``connected_components(engine="auto")`` answer the wire
    layer must reproduce bit-for-bit."""
    return connected_components(graph, engine="auto").labels


@dataclass(slots=True)
class WireResult:
    """Terminal outcome of one request driven over the socket.

    ``status`` is a wire status code (:data:`repro.serve.protocol.STATUS_OK`,
    ``STATUS_SHED``, ...); ``latency_seconds`` is end-to-end on the
    client side -- request frame written to final response frame read.
    ``labels`` is the reassembled vector for OK results when the driver
    ran with ``collect_labels=True``, else ``None``.
    """

    request_id: int
    status: int
    n: int
    latency_seconds: float
    labels: Optional[np.ndarray] = None

    @property
    def ok(self) -> bool:
        return self.status == protocol.STATUS_OK


def _encode_stream(graphs: Sequence[GraphLike],
                   deadline: Optional[float]) -> List[bytes]:
    """Pre-encoded SOLVE frames, request id = input index.

    Encoding up front keeps frame construction out of the measured
    arrival loop; only edge-list graphs travel over the wire.
    """
    frames: List[bytes] = []
    for idx, g in enumerate(graphs):
        if not isinstance(g, EdgeListGraph):
            raise TypeError(
                f"socket drivers carry edge lists only; request {idx} "
                f"is {type(g).__name__} (use dense_fraction=0)"
            )
        frames.append(protocol.encode_graph_request(
            g, request_id=idx, deadline=deadline))
    return frames


async def _open_connections(
    host: str, port: int, count: int
) -> List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
    conns = await asyncio.gather(*(
        asyncio.open_connection(host, port) for _ in range(count)
    ))
    return list(conns)


async def _read_responses(
    reader: asyncio.StreamReader,
    send_time: List[float],
    results: List[Optional[WireResult]],
    remaining: List[int],
    done: asyncio.Event,
    collect_labels: bool,
) -> None:
    """Drain one connection: reassemble chunked label streams, record a
    :class:`WireResult` per terminal frame, tick the shared countdown."""
    partial: Dict[int, np.ndarray] = {}
    while remaining[0] > 0:
        try:
            head = await reader.readexactly(protocol.RESPONSE_HEADER_SIZE)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            break
        rh = protocol.decode_response_header(head)
        payload = b""
        if rh.payload_bytes:
            payload = await reader.readexactly(rh.payload_bytes)
        rid = rh.request_id
        if rh.kind == protocol.KIND_LABELS:
            if collect_labels:
                buf = partial.get(rid)
                if buf is None:
                    buf = partial[rid] = np.empty(rh.n, dtype=np.int64)
                buf[rh.offset:rh.offset + rh.count] = \
                    protocol.decode_labels(rh, payload)
            if not rh.final:
                continue
            labels = partial.pop(rid, None)
            result = WireResult(rid, protocol.STATUS_OK, rh.n,
                                time.monotonic() - send_time[rid], labels)
        elif rh.kind == protocol.KIND_ERROR:
            partial.pop(rid, None)
            result = WireResult(rid, rh.status, rh.n,
                                time.monotonic() - send_time[rid])
        else:  # PONG or future kinds: not a request terminal
            continue
        results[rid] = result
        remaining[0] -= 1
        if remaining[0] == 0:
            done.set()


async def _socket_open_loop(
    host: str, port: int, frames: List[bytes], offsets: np.ndarray,
    connections: int, collect_labels: bool, settle_timeout: float,
) -> List[Optional[WireResult]]:
    conns = await _open_connections(host, port, connections)
    results: List[Optional[WireResult]] = [None] * len(frames)
    send_time = [0.0] * len(frames)
    remaining = [len(frames)]
    done = asyncio.Event()
    readers = [
        asyncio.ensure_future(_read_responses(
            reader, send_time, results, remaining, done, collect_labels))
        for reader, _ in conns
    ]
    start = time.monotonic()
    try:
        for idx, (frame, offset) in enumerate(zip(frames, offsets)):
            delay = start + float(offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            writer = conns[idx % connections][1]
            send_time[idx] = time.monotonic()
            # open loop: write without awaiting drain -- a slow server
            # must not slow the offered arrival process
            writer.write(frame)
        if remaining[0] > 0:
            try:
                await asyncio.wait_for(done.wait(), settle_timeout)
            except asyncio.TimeoutError:
                pass
    finally:
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        for _, writer in conns:
            writer.close()
    return results


async def _socket_closed_loop(
    host: str, port: int, frames: List[bytes],
    connections: int, collect_labels: bool,
) -> List[Optional[WireResult]]:
    conns = await _open_connections(host, port, connections)
    results: List[Optional[WireResult]] = [None] * len(frames)
    send_time = [0.0] * len(frames)

    async def client(conn_idx: int) -> None:
        reader, writer = conns[conn_idx]
        remaining = [0]  # per-client countdown, ticked before each read
        done = asyncio.Event()
        for idx in range(conn_idx, len(frames), connections):
            send_time[idx] = time.monotonic()
            writer.write(frames[idx])
            await writer.drain()
            remaining[0] = 1
            done.clear()
            await _read_responses(reader, send_time, results,
                                  remaining, done, collect_labels)
            if results[idx] is None:  # connection died mid-response
                return

    try:
        await asyncio.gather(*(
            client(c) for c in range(min(connections, max(len(frames), 1)))
        ))
    finally:
        for _, writer in conns:
            writer.close()
    return results


def run_socket_open_loop(
    address: Tuple[str, int],
    graphs: Sequence[GraphLike],
    offered_rps: float,
    connections: int = 64,
    deadline: Optional[float] = None,
    seed: Optional[int] = 0,
    collect_labels: bool = True,
    settle_timeout: float = 120.0,
) -> List[Optional[WireResult]]:
    """Offer ``graphs`` to a gateway over ``connections`` persistent
    TCP connections on a Poisson arrival process at ``offered_rps``.

    The arrival schedule is the same :func:`poisson_arrivals` draw the
    in-process driver uses, so a wire run and an in-process run under
    one seed offer identical instants.  Arrivals round-robin across the
    connections and pipeline freely -- a connection does not wait for
    its previous response before carrying the next request.  Returns one
    :class:`WireResult` per input (``None`` for requests whose response
    never arrived within ``settle_timeout`` of the last arrival).
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    frames = _encode_stream(graphs, deadline)
    offsets = poisson_arrivals(len(graphs), offered_rps, seed)
    host, port = address
    return asyncio.run(_socket_open_loop(
        host, port, frames, offsets, min(connections, max(len(frames), 1)),
        collect_labels, settle_timeout,
    ))


def run_socket_closed_loop(
    address: Tuple[str, int],
    graphs: Sequence[GraphLike],
    connections: int = 8,
    deadline: Optional[float] = None,
    collect_labels: bool = True,
) -> List[Optional[WireResult]]:
    """Serve ``graphs`` from ``connections`` synchronous wire clients.

    Each connection submits its next request only after fully receiving
    the previous response -- the socket analogue of
    :func:`run_closed_loop`, measuring saturated wire throughput.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    frames = _encode_stream(graphs, deadline)
    host, port = address
    return asyncio.run(_socket_closed_loop(
        host, port, frames, min(connections, max(len(frames), 1)),
        collect_labels,
    ))
