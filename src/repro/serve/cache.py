"""Content-addressed result cache for the serving layer.

Serving traffic repeats itself: health checks, retried uploads, popular
documents, the same social-graph snapshot queried by many tenants.  A
connected-components solve is a pure function of the graph, so the
serve layer can short-circuit repeats to a dictionary lookup -- *if* the
key is the graph's content, not its representation.
:func:`repro.analysis.hashing.graph_fingerprint` provides exactly that:
a digest of the canonical undirected edge set, identical across dense /
sparse forms and edge orderings, different for any structural change
(equal fingerprints imply equal canonical labels; see the property
tests in ``tests/serve/test_cache.py``).

:class:`ResultCache` is the LRU that sits in front of the engines:

* **byte-size budget** -- entries are charged their label-vector bytes
  and evicted least-recently-used when the budget is exceeded, so a
  million tiny answers and three huge ones are both handled sanely;
* **counters** -- hits / misses / inserts / evictions (plus
  verifications and mismatches) surface in the server's metrics
  snapshot;
* **verified-on-first-hit mode** -- for the paranoid: the first time an
  entry would be served from cache, the engines solve anyway and the
  stored labels are compared bit-for-bit before the entry is trusted
  (a mismatch evicts the entry and counts ``mismatches``, which should
  stay 0 forever).

Stored label vectors are defensive read-only copies; hits return the
same read-only array to every caller (a caller that wants to mutate
labels copies explicitly -- that cost belongs to the mutator, not to
every hit).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict

import numpy as np

from repro.analysis.hashing import graph_fingerprint  # noqa: F401  (re-export)

__all__ = ["ResultCache", "graph_fingerprint"]


class _Entry:
    __slots__ = ("labels", "verified")

    def __init__(self, labels: np.ndarray, verified: bool):
        self.labels = labels
        self.verified = verified


class ResultCache:
    """LRU label cache keyed by graph fingerprint (see module docstring).

    Parameters
    ----------
    byte_budget:
        Total label bytes the cache may hold; least-recently-used
        entries are evicted past it.  An entry larger than the whole
        budget is never stored.
    verify_first_hit:
        Arm verified-on-first-hit mode: :meth:`get` reports such entries
        as *unverified* hits (``labels`` still returned) and the server
        re-solves and calls :meth:`confirm` with the fresh labels.

    Thread-safe; all methods may be called from any server worker
    thread.
    """

    def __init__(self, byte_budget: int, verify_first_hit: bool = False):
        if byte_budget < 1:
            raise ValueError(f"byte_budget must be >= 1, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self.verify_first_hit = verify_first_hit
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.verifications = 0
        self.mismatches = 0

    # -- lookup --------------------------------------------------------
    def get(self, fingerprint: str):
        """``(labels, verified)`` for a hit, ``None`` for a miss.

        ``verified`` is ``False`` only in :attr:`verify_first_hit` mode
        for an entry not yet confirmed -- the caller should treat the
        hit as advisory, re-solve, and :meth:`confirm`.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            verified = entry.verified or not self.verify_first_hit
            return entry.labels, verified

    def put(self, fingerprint: str, labels: np.ndarray) -> None:
        """Store ``labels`` (a read-only copy) under ``fingerprint``."""
        stored = np.array(labels, dtype=np.int64, copy=True)
        stored.setflags(write=False)
        nbytes = int(stored.nbytes)
        if nbytes > self.byte_budget:
            return
        with self._lock:
            old = self._entries.pop(fingerprint, None)
            if old is not None:
                self._bytes -= int(old.labels.nbytes)
            self._entries[fingerprint] = _Entry(
                stored, verified=not self.verify_first_hit
            )
            self._bytes += nbytes
            self.inserts += 1
            while self._bytes > self.byte_budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= int(evicted.labels.nbytes)
                self.evictions += 1

    def confirm(self, fingerprint: str, fresh_labels: np.ndarray) -> bool:
        """Verified-on-first-hit follow-up: compare a fresh solve
        against the stored entry.

        Marks the entry verified on a match; evicts it (and counts a
        mismatch) otherwise.  Returns whether the entry matched.
        """
        with self._lock:
            self.verifications += 1
            entry = self._entries.get(fingerprint)
            if entry is None:
                return True  # evicted meanwhile; nothing to distrust
            if np.array_equal(entry.labels, fresh_labels):
                entry.verified = True
                return True
            self._bytes -= int(entry.labels.nbytes)
            del self._entries[fingerprint]
            self.mismatches += 1
            return False

    # -- observability -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        """JSON-ready counter snapshot (merged into serve metrics)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "verifications": self.verifications,
                "mismatches": self.mismatches,
                "entries": len(self._entries),
                "bytes_used": self._bytes,
                "byte_budget": self.byte_budget,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
