"""Batch planning: buckets, flush triggers and engine choice.

The scheduler's job is to turn a FIFO stream of independent requests
into the stacked ``(B, n+1, n)`` batches that
:class:`~repro.core.batched.BatchedGCA` executes at one NumPy dispatch
per generation.  This module holds the *decisions* as plain, thread-free
logic (the :class:`~repro.serve.server.Server` owns the threads):

* **Bucketing** -- dense requests (adjacency inputs) are grouped by node
  count, optionally padded up to the next power of two
  (:attr:`ServerConfig.pad_buckets`) so near-miss sizes share a stack.
  Padding a graph with isolated vertices cannot change the original
  vertices' labels (a padding vertex has index ``>= n``, so it can never
  become the minimum representative of a real component); the server
  slices the extra rows off after the run.  Sparse
  :class:`~repro.hirschberg.edgelist.EdgeListGraph` requests are never
  densified -- each forms its own solo "bucket".
* **Batch-size cap** -- per bucket, the largest ``B`` whose stacked
  dense field still fits the cost model's memory budget, clamped by
  ``max_batch``.
* **Flush triggers** -- a bucket flushes when it is full, when its
  oldest member has waited ``max_wait`` seconds (the batching window),
  or under *deadline pressure*: when some member's remaining budget no
  longer covers the predicted batch service time plus margin, waiting
  any longer would turn a hit into a miss.
* **Engine choice** -- at flush time the dispatcher's measured
  :class:`~repro.core.dispatch.CostModel` prices three ways to serve
  the batch: the stacked dense field
  (:class:`~repro.core.batched.BatchedGCA`), one *coalesced* sparse run
  over the members' disjoint union
  (:func:`~repro.serve.workers.solve_coalesced`), or per-request solo
  engines.  The serve layer inherits every future improvement to the
  cost model for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.api import _graph_shape
from repro.core.dispatch import (
    CostModel,
    DEFAULT_COST_MODEL,
    DISPATCHABLE,
    predict_costs,
)
from repro.serve.request import CCRequest, ResultHandle


@dataclass(slots=True)
class PendingRequest:
    """A queued request plus the bookkeeping the scheduler needs."""

    handle: ResultHandle
    n: int
    sparse: bool
    submitted_at: float
    deadline_at: Optional[float]  # absolute monotonic, None = unbounded
    attempts: int = 0
    m_known: Optional[int] = None  # edge count; None = not yet measured
    fingerprint: Optional[str] = None  # content address, computed lazily
    cache_unverified: bool = False  # hit awaiting verified-on-first-hit

    @property
    def request(self) -> CCRequest:
        return self.handle.request

    @property
    def m(self) -> int:
        """Edge count, measured lazily.

        Counting the edges of a dense adjacency is an O(n^2) reduction;
        doing it on the submission hot path would cost more than serving
        the request.  Edge-list requests carry it for free; dense ones
        pay only when something (solo dispatch, a pricing sample)
        actually asks.
        """
        if self.m_known is None:
            self.m_known = _graph_shape(self.request.graph)[1]
        return self.m_known

    def slack(self, now: float) -> float:
        """Remaining latency budget in seconds (``inf`` when unbounded)."""
        if self.deadline_at is None:
            return float("inf")
        return self.deadline_at - now

    def sort_key(self, now: float) -> Tuple[float, int, float]:
        """Urgency ordering: tightest slack, then priority, then age."""
        return (self.slack(now), self.request.priority, self.submitted_at)


@dataclass(frozen=True)
class BucketKey:
    """Identity of one batching bucket.

    ``kind`` is ``"dense"`` (stackable; ``size`` is the -- possibly
    padded -- node count) or ``"sparse"`` (solo; ``size`` is the exact
    node count, and the bucket never holds more than one request).
    """

    kind: str
    size: int


def sample_mean_m(members: List[PendingRequest], k: int = 4) -> float:
    """Mean edge count of (a sample of) one bucket's members.

    Sampling keeps the lazy :attr:`PendingRequest.m` measurement O(k)
    per flush instead of O(B) -- same-bucket members have the same node
    count, so a small sample prices the batch well enough.
    """
    if not members:
        return 0.0
    if len(members) > k:
        members = members[:: max(1, len(members) // k)][:k]
    return sum(p.m for p in members) / len(members)


@dataclass
class Bucket:
    """The queued members of one bucket plus cached aggregates.

    The aggregates (work units, oldest arrival, tightest deadline) are
    maintained incrementally on admit and recomputed only after a flush
    removes members -- the scheduler consults them on every wake-up, so
    they must not cost a scan of the members.
    """

    key: BucketKey
    members: List[PendingRequest] = field(default_factory=list)
    units: int = 0  # sum of n + 2m over members (sparse buckets only)
    oldest: float = float("inf")  # min submitted_at
    min_deadline: float = float("inf")  # min absolute deadline
    needs_sort: bool = False  # any member with a deadline or priority
    dense_cap: int = 0  # memory-feasible stack cap, fixed per dense bucket

    def admit(self, pending: PendingRequest, units: int) -> None:
        self.members.append(pending)
        self.units += units
        if pending.submitted_at < self.oldest:
            self.oldest = pending.submitted_at
        if pending.deadline_at is not None:
            if pending.deadline_at < self.min_deadline:
                self.min_deadline = pending.deadline_at
            self.needs_sort = True
        elif pending.request.priority:
            self.needs_sort = True

    def refresh(self, sparse_units: bool) -> None:
        """Recompute the aggregates after members were removed."""
        self.units = (
            sum(p.n + 2 * p.m for p in self.members) if sparse_units else 0
        )
        self.oldest = min(
            (p.submitted_at for p in self.members), default=float("inf")
        )
        self.min_deadline = min(
            (p.deadline_at for p in self.members
             if p.deadline_at is not None),
            default=float("inf"),
        )


class BatchPlanner:
    """Pure batching policy; see the module docstring.

    Parameters
    ----------
    max_batch:
        Hard occupancy cap per flush.
    max_wait:
        Batching window in seconds: no admitted request waits longer
        than this for co-batchable traffic before its bucket flushes.
    deadline_margin:
        Safety margin (seconds) subtracted from a request's slack when
        testing deadline pressure.
    pad_buckets:
        Pad dense graphs up to power-of-two node counts so near-miss
        sizes share a stack.
    coalesce_units:
        Work budget (``n + 2m`` summed over members) of one coalesced
        sparse flush.  The sparse engines' iteration count grows with
        the union's node count, so past a few tens of thousands of units
        a bigger union costs more per member than it amortises -- the
        default is tuned to that knee, not to memory.
    model:
        The measured cost model used for batch-vs-solo pricing and the
        memory-feasible batch cap.
    """

    def __init__(
        self,
        max_batch: int = 512,
        max_wait: float = 0.002,
        deadline_margin: float = 0.005,
        pad_buckets: bool = True,
        coalesce_units: int = 32_768,
        model: Optional[CostModel] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if coalesce_units < 1:
            raise ValueError(
                f"coalesce_units must be >= 1, got {coalesce_units}"
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.deadline_margin = deadline_margin
        self.pad_buckets = pad_buckets
        self.coalesce_units = coalesce_units
        self.model = model or DEFAULT_COST_MODEL
        self._buckets: Dict[Tuple[bool, int], Bucket] = {}
        self._queued = 0

    # -- bucket membership --------------------------------------------
    def key_for(self, pending: PendingRequest) -> BucketKey:
        size = pending.n
        if self.pad_buckets and size > 1:
            # inline next_power_of_two: this runs once per submit
            size = 1 << (size - 1).bit_length()
        return BucketKey("sparse" if pending.sparse else "dense", size)

    def bucket_cap(self, key: BucketKey,
                   members: Optional[List[PendingRequest]] = None) -> int:
        """Occupancy cap for one flush of this bucket.

        Dense stacks are limited by the memory budget of the stacked
        field; sparse coalescing is limited by ``coalesce_units`` of
        union work (``n + 2m`` per member, measured over the actual
        members) so one flush stays at the knee where amortisation pays.
        """
        if key.kind == "sparse":
            if not members:
                return self.max_batch
            units = sum(p.n + 2 * p.m for p in members)
            return self._sparse_cap(units, len(members))
        return self._dense_cap(key)

    def _sparse_cap(self, units: int, count: int) -> int:
        mean_units = units / count if count else 1.0
        fit = int(self.coalesce_units // max(mean_units, 1.0))
        return max(1, min(self.max_batch, fit))

    def _dense_cap(self, key: BucketKey) -> int:
        cells = key.size * (key.size + 1)
        if cells == 0:
            return self.max_batch
        fit = int(self.model.memory_budget
                  // max(cells * self.model.dense_bytes_per_cell, 1.0))
        return max(1, min(self.max_batch, fit))

    def _cap(self, bucket: Bucket) -> int:
        """:meth:`bucket_cap` from the bucket's cached aggregates."""
        if bucket.key.kind == "sparse":
            return self._sparse_cap(bucket.units, len(bucket.members))
        return self._dense_cap(bucket.key)

    def add(self, pending: PendingRequest) -> bool:
        """File one admitted request into its bucket.

        Returns ``True`` when the bucket reached its flush cap -- the
        caller should wake the scheduler rather than wait the window
        out.

        This is the per-submission hot path: buckets live under plain
        ``(sparse, size)`` tuple keys and the full check is arithmetic
        on the cached aggregates, so no :class:`BucketKey` is built and
        no cap recomputed per arrival.
        """
        size = pending.n
        if self.pad_buckets and size > 1:
            size = 1 << (size - 1).bit_length()
        sparse = pending.sparse
        bucket = self._buckets.get((sparse, size))
        if bucket is None:
            key = BucketKey("sparse" if sparse else "dense", size)
            bucket = Bucket(key)
            if not sparse:
                bucket.dense_cap = self._dense_cap(key)
            self._buckets[(sparse, size)] = bucket
        self._queued += 1
        if sparse:
            bucket.admit(pending, pending.n + 2 * pending.m)
            # unit-wise form of ``count >= _sparse_cap(units, count)``
            # (one more coalesced flush is paid for), saving the
            # division on every arrival
            return (bucket.units >= self.coalesce_units
                    or len(bucket.members) >= self.max_batch)
        bucket.admit(pending, 0)
        return len(bucket.members) >= bucket.dense_cap

    def queued_count(self) -> int:
        return self._queued

    def drain_all(self) -> List[PendingRequest]:
        """Remove and return everything still queued (server shutdown)."""
        out = [p for b in self._buckets.values() for p in b.members]
        self._buckets.clear()
        self._queued = 0
        return out

    # -- cost estimates ------------------------------------------------
    def _priced(self, key: BucketKey, occupancy: int,
                mean_m: float) -> Dict[str, float]:
        """Per-graph engine prices for one flush, serve-adjusted.

        Two batching strategies are priced against plain solo runs:

        * ``"batched"`` -- the stacked dense field, whose per-generation
          NumPy dispatch (and the per-request API overhead) is shared by
          the whole stack;
        * coalesced ``"edgelist"`` / ``"contracting"`` -- one sparse run
          over the members' disjoint union, so the per-iteration
          dispatch is likewise paid once per batch (priced by
          predicting the engine at the union's ``(B*n, B*m)`` shape).

        Solo engines additionally pay the full per-request API overhead
        (validation, dense -> sparse conversion, result assembly) for
        every member -- exactly the asymmetry that makes micro-batching
        pay at small ``n``.

        Only ``"contracting"`` is offered as the coalesced engine: a
        disjoint union contracts fast (blocks are independent, so each
        iteration halves every block's edges at once), and measurement
        shows it dominating ``"edgelist"`` across union shapes.
        """
        occupancy = max(occupancy, 1)
        mean_m = max(int(mean_m), 0)
        costs = predict_costs(
            key.size, mean_m, batch_size=occupancy, model=self.model,
        )
        overhead = self.model.request_overhead
        priced: Dict[str, float] = {}
        amortized = overhead / occupancy
        if occupancy > 1:
            union = predict_costs(
                key.size * occupancy, mean_m * occupancy, model=self.model,
            )
            priced["contracting"] = union["contracting"] / occupancy + amortized
        else:
            for name in ("edgelist", "contracting"):
                priced[name] = costs[name] + overhead
            # chunk-parallel label propagation: predict_costs() already
            # prices it infinite unless the parallel verdict says the
            # per-round serial work amortises the pool barriers
            if costs.get("parallel", float("inf")) != float("inf"):
                priced["parallel"] = costs["parallel"] + overhead
        if key.kind == "dense":
            priced["batched"] = costs["batched"] + amortized
            for name in ("vectorized", "interpreter"):
                priced[name] = costs[name] + overhead
        return priced

    def estimate_batch_seconds(self, key: BucketKey, occupancy: int,
                               mean_m: float) -> float:
        """Predicted wall seconds to serve one flush of this bucket."""
        if key.size == 0:
            return 0.0
        per_graph = min(self._priced(key, occupancy, mean_m).values())
        return per_graph * max(occupancy, 1)

    def pool_pays(self, key: BucketKey, occupancy: int,
                  mean_m: float) -> bool:
        """Whether shipping one flush to the process pool beats inline.

        A pool dispatch adds one measured round trip
        (:attr:`~repro.core.dispatch.CostModel.pool_dispatch_overhead`)
        but runs the batch on another core.  With ``W`` workers the
        batch costs ``c/W + o`` instead of ``c``, which wins exactly
        when ``c`` dominates the overhead -- the factor-2 test below is
        that break-even for the worst useful case ``W = 2``, so small
        flushes stay inline on any pool size.
        """
        if key.size == 0:
            return False
        est = self.estimate_batch_seconds(key, occupancy, mean_m)
        return est >= 2.0 * self.model.pool_dispatch_overhead

    def choose_batch_engine(self, key: BucketKey, occupancy: int,
                            mean_m: float) -> str:
        """Engine for one flush.

        ``"batched"`` means run the stacked dense field; a sparse engine
        with occupancy > 1 means run the members' disjoint union
        coalesced; anything else runs each member solo.
        """
        if key.size == 0:
            return "vectorized"  # degenerate; resolved without an engine
        priced = self._priced(key, occupancy, mean_m)
        return min(
            (name for name in DISPATCHABLE if name in priced),
            key=lambda name: (priced[name], DISPATCHABLE.index(name)),
        )

    # -- flush policy --------------------------------------------------
    def _pressure(self, bucket: Bucket, now: float, cap: int) -> bool:
        if bucket.min_deadline == float("inf"):
            return False
        occupancy = min(len(bucket.members), cap)
        mean_m = sample_mean_m(bucket.members)
        est = self.estimate_batch_seconds(bucket.key, occupancy, mean_m)
        return bucket.min_deadline - now <= est + self.deadline_margin

    def take_ready(
        self, now: Optional[float] = None, force: bool = False
    ) -> List[List[PendingRequest]]:
        """Remove and return every batch that should flush now.

        A bucket flushes when full, when its oldest member has aged past
        the batching window, or under deadline pressure; members are
        packed most-urgent-first when the bucket overflows its cap.
        ``force=True`` (drain) flushes everything regardless of triggers.

        This runs on every scheduler wake-up: the no-flush path must
        stay O(buckets), using only the cached bucket aggregates.
        """
        now = time.monotonic() if now is None else now
        flushes: List[List[PendingRequest]] = []
        for key in list(self._buckets):
            bucket = self._buckets[key]
            cap = self._cap(bucket)
            timed_out = (
                force
                or now - bucket.oldest >= self.max_wait
                or self._pressure(bucket, now, cap)
            )
            if len(bucket.members) < cap and not timed_out:
                continue
            if bucket.needs_sort:
                # without deadlines/priorities, arrival order already
                # IS the urgency order -- skip the O(B log B) sort
                bucket.members.sort(key=lambda p: p.sort_key(now))
            while len(bucket.members) >= cap:
                flushes.append(bucket.members[:cap])
                del bucket.members[:cap]
                self._queued -= cap
            if bucket.members and timed_out:
                flushes.append(bucket.members[:])
                self._queued -= len(bucket.members)
                bucket.members.clear()
            if not bucket.members:
                del self._buckets[key]
            else:
                bucket.refresh(sparse_units=bucket.key.kind == "sparse")
        return flushes

    def next_due(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the earliest time-based flush trigger, or
        ``None`` when nothing is queued (pure event-driven wait)."""
        now = time.monotonic() if now is None else now
        due = None
        for bucket in self._buckets.values():
            window = self.max_wait - (now - bucket.oldest)
            if bucket.min_deadline != float("inf"):
                window = min(
                    window, bucket.min_deadline - now - self.deadline_margin
                )
            due = window if due is None else min(due, window)
        if due is None:
            return None
        return max(due, 0.0)
