"""Request/response value types of the serving layer.

A :class:`CCRequest` is one independent connected-components job: a graph
plus the caller's latency budget (``deadline``, seconds from submission)
and a ``priority`` tie-breaker.  Submitting one to a
:class:`~repro.serve.server.Server` returns a :class:`ResultHandle` --
a small thread-safe future the caller blocks on (or polls, or cancels)
-- which eventually resolves to a :class:`CCResponse` carrying the label
vector, the terminal :class:`RequestStatus` and the per-request timing
breakdown the metrics layer aggregates.

Statuses are terminal and exclusive:

``OK``
    Labels computed (possibly after its deadline -- see
    ``CCResponse.deadline_missed``; late results are still returned, the
    miss is recorded).
``SHED``
    Rejected at admission because the queue was full and the server runs
    the ``"shed"`` backpressure policy.  Never entered the queue.
``TIMEOUT``
    The deadline expired before a worker produced labels; the request
    was dropped from the queue or abandoned pre-execution.
``CANCELLED``
    :meth:`ResultHandle.cancel` won the race with execution, or the
    server was stopped without draining.
``ERROR``
    The engine raised; ``CCResponse.error`` holds the message (after
    exhausting the configured retries).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.edgelist import EdgeListGraph

GraphLike = Union[AdjacencyMatrix, np.ndarray, EdgeListGraph]

_request_counter = itertools.count()


class RequestStatus(Enum):
    """Terminal state of a served request (see module docstring)."""

    OK = "ok"
    SHED = "shed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"
    ERROR = "error"


class ServeError(RuntimeError):
    """A blocking wait ended without labels (timeout/shed/cancel/error)."""


class QueueFull(ServeError):
    """Admission rejected the request (``admission="fail"`` policy)."""


class ServerClosed(ServeError):
    """The server no longer accepts requests (stopping or stopped)."""


@dataclass(slots=True)
class CCRequest:
    """One connected-components job.

    Parameters
    ----------
    graph:
        An :class:`~repro.graphs.adjacency.AdjacencyMatrix`, a square
        symmetric 0/1 array (dense inputs; batched together), or an
        :class:`~repro.hirschberg.edgelist.EdgeListGraph` (sparse
        inputs; solved solo on a sparse engine).
    deadline:
        Latency budget in seconds from submission, or ``None`` for the
        server's default (possibly unbounded).  The scheduler flushes
        early under deadline pressure and drops requests whose budget
        expires while queued.
    priority:
        Tie-breaker when a bucket overflows its batch: lower values are
        packed first (after deadline urgency).  Default 0.
    request_id:
        Caller-supplied correlation id; auto-assigned when ``None``.
    """

    graph: GraphLike
    deadline: Optional[float] = None
    priority: int = 0
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.request_id is None:
            self.request_id = f"req-{next(_request_counter)}"
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive seconds, got {self.deadline}"
            )


@dataclass(slots=True)
class CCResponse:
    """Terminal outcome of one request.

    Attributes
    ----------
    request_id:
        Mirrors the request.
    status:
        Terminal :class:`RequestStatus`.
    labels:
        Canonical label vector (``status == OK`` only, else ``None``).
    engine:
        Engine that produced the labels (``"batched"``, ``"contracting"``,
        ...; prefixed ``"pool:"`` when the batch ran on the process
        pool, ``"cache"`` for a content-addressed cache hit); ``None``
        when no engine ran.
    batch_size:
        Occupancy of the batch this request rode in (1 for solo runs).
    queued_seconds / service_seconds / latency_seconds:
        Time spent waiting in the queue, executing, and end-to-end from
        submission to resolution.
    deadline_missed:
        The request had a deadline and resolved after it (counted in the
        metrics whether or not labels were still produced).
    attempts:
        Execution attempts (> 1 after a retry on engine/worker failure).
    error:
        Failure message when ``status == ERROR``.
    """

    request_id: str
    status: RequestStatus
    labels: Optional[np.ndarray] = None
    engine: Optional[str] = None
    batch_size: int = 0
    queued_seconds: float = 0.0
    service_seconds: float = 0.0
    latency_seconds: float = 0.0
    deadline_missed: bool = False
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    @property
    def cache_hit(self) -> bool:
        """Resolved from the content-addressed result cache (no engine
        ran; ``labels`` are the cached read-only vector)."""
        return self.engine == "cache"


#: Module-wide guard for handle state transitions.  Handles carry no
#: per-instance lock, so creating one allocates nothing synchronisation-
#: related on the submit hot path; the blocking condition is built
#: lazily by the first caller that actually waits.
_handle_lock = threading.Lock()


class ResultHandle:
    """Thread-safe future for one submitted request.

    The server resolves it exactly once; callers block on
    :meth:`response` / :meth:`result`, poll :meth:`done`, cancel, or
    register an :meth:`add_done_callback` -- the non-blocking completion
    path the asyncio gateway bridges back into its event loop (via
    ``loop.call_soon_threadsafe``) without parking a thread per request.
    """

    __slots__ = ("request", "_cond", "_response", "_cancel_requested",
                 "_callbacks")

    def __init__(self, request: CCRequest):
        self.request = request
        self._cond: Optional[threading.Condition] = None
        self._response: Optional[CCResponse] = None
        self._cancel_requested = False
        self._callbacks: Optional[List[Callable[[CCResponse], None]]] = None

    # -- caller side ---------------------------------------------------
    def done(self) -> bool:
        """Whether a terminal response is available."""
        return self._response is not None

    def cancel(self) -> bool:
        """Request cancellation.

        Returns ``True`` when the request was still pending -- it will
        resolve as ``CANCELLED`` before any engine runs on it.  Returns
        ``False`` when it already resolved (the response stands).
        """
        with _handle_lock:
            if self._response is not None:
                return False
            self._cancel_requested = True
            return True

    def add_done_callback(self, fn: Callable[[CCResponse], None]) -> None:
        """Call ``fn(response)`` once the handle resolves.

        Registered before resolution, ``fn`` runs on the resolving
        thread (a server worker); registered after, it runs immediately
        on the caller's thread.  Callbacks must be cheap and must not
        raise -- exceptions are swallowed so a misbehaving observer
        cannot take down the resolver (hand heavy work off, e.g. with
        ``loop.call_soon_threadsafe``).
        """
        with _handle_lock:
            if self._response is None:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
            response = self._response
        try:
            fn(response)
        except Exception:  # noqa: BLE001 -- observer errors never propagate
            pass

    def response(self, timeout: Optional[float] = None) -> CCResponse:
        """Block until resolved and return the full :class:`CCResponse`.

        Raises :class:`ServeError` if ``timeout`` elapses first (the
        request itself stays in flight).
        """
        if self._response is not None:  # lock-free fast path
            return self._response
        with _handle_lock:
            if self._response is not None:
                return self._response
            if self._cond is None:
                self._cond = threading.Condition()
            cond = self._cond
        # A resolution between releasing _handle_lock and entering the
        # wait is caught by wait_for's predicate-first check.
        with cond:
            if not cond.wait_for(
                lambda: self._response is not None, timeout
            ):
                raise ServeError(
                    f"no response for {self.request.request_id} "
                    f"within {timeout} s (request still in flight)"
                )
        assert self._response is not None
        return self._response

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until resolved and return the labels.

        Raises :class:`ServeError` for any non-``OK`` terminal status.
        """
        resp = self.response(timeout)
        if resp.status is not RequestStatus.OK:
            raise ServeError(
                f"request {self.request.request_id} ended "
                f"{resp.status.value}: {resp.error or 'no labels'}"
            )
        assert resp.labels is not None
        return resp.labels

    # -- server side ---------------------------------------------------
    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def _resolve(self, response: CCResponse) -> bool:
        """Install the terminal response (first writer wins)."""
        with _handle_lock:
            if self._response is not None:
                return False
            self._response = response
            cond = self._cond
            callbacks, self._callbacks = self._callbacks, None
        if cond is not None:  # someone is (or was) blocking -- wake them
            with cond:
                cond.notify_all()
        if callbacks:
            for fn in callbacks:
                try:
                    fn(response)
                except Exception:  # noqa: BLE001 -- observer errors stay local
                    pass
        return True
