"""The gateway's wire protocol: compact binary frames + a JSON dialect.

The serving pipeline prices every solve with a measured cost model, so
the wire layer in front of it has a number to answer to: comms cost per
request must stay small relative to the CostModel-priced solve.  This
module is that layer's *codec* -- pure functions over bytes, no sockets,
no threads -- shared by the server-side
:class:`~repro.serve.gateway.Gateway` and the client side of the socket
load generator (and any external client that speaks the format).

Binary framing (little-endian, fixed headers, length-prefixed payload)::

    request header -- 40 bytes
    +-------+---------+------+-------+-------+----------+------------+
    | magic | version | kind | dtype | flags | reserved | request_id |
    |  u16  |   u8    |  u8  |  u8   |  u8   |   u16    |    u32     |
    +-------+---------+------+-------+-------+----------+------------+
    |    n    |    m    | payload_bytes | deadline_us |
    |   u64   |   u64   |      u64      |     u32     |
    +---------+---------+---------------+-------------+
    payload: m values of u then m values of v (two contiguous blocks,
    dtype per the header's code), declaring one edge {u[i], v[i]} each.

    response header -- 36 bytes
    +-------+---------+------+--------+-------+----------+------------+
    | magic | version | kind | status | flags | reserved | request_id |
    |  u16  |   u8    |  u8  |   u8   |  u8   |   u16    |    u32     |
    +-------+---------+------+--------+-------+----------+------------+
    |    n    | offset  |  count  |
    |   u64   |   u64   |   u64   |
    +---------+---------+---------+
    payload: ``count`` int64 labels for ``labels[offset:offset+count]``
    (kind LABELS; large vectors stream as several chunks, the last one
    carrying FLAG_FINAL), or ``count`` UTF-8 bytes of message (kind
    ERROR).

Two properties the framing is built around:

* **Zero-copy decode.**  The u/v blocks are *contiguous per endpoint*
  (not interleaved pairs), so :func:`decode_pairs` returns
  ``np.frombuffer`` views straight into the received buffer -- no copy
  of the edge payload beyond the socket read itself (asserted via
  ``np.shares_memory`` in the tests).  Interleaved ``(u0, v0, u1, ...)``
  pairs would decode to strided column views that every downstream
  ``ascontiguousarray`` silently copies.
* **Bounded reads.**  ``payload_bytes`` is declared up front and
  validated against both the header's own ``m``/``dtype`` arithmetic
  and the gateway's configured ceiling *before* any buffer is sized
  from it, so a hostile or buggy frame can be drained and answered
  with a typed error frame instead of an allocation.

The JSON dialect (one object per line, and the same object as an HTTP
``POST /solve`` body) is the convenience mode for humans and scripting;
see :func:`decode_json_request` / :func:`encode_json_response`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve.request import CCResponse, RequestStatus

#: ``b"RG"`` little-endian; the first byte on the wire (``R``) is how a
#: gateway connection is sniffed as binary rather than JSON/HTTP.
MAGIC = 0x4752
VERSION = 1

# -- frame kinds -------------------------------------------------------
KIND_SOLVE = 1  #: request: solve connected components of the edge payload
KIND_PING = 2  #: request: liveness probe, empty payload
KIND_LABELS = 3  #: response: a chunk of the label vector
KIND_ERROR = 4  #: response: typed failure, payload is a UTF-8 message
KIND_PONG = 5  #: response: liveness answer, empty payload

REQUEST_KINDS = (KIND_SOLVE, KIND_PING)

# -- dtype codes for the edge payload ----------------------------------
DTYPE_I64 = 0
DTYPE_I32 = 1
DTYPES: Dict[int, np.dtype] = {
    DTYPE_I64: np.dtype("<i8"),
    DTYPE_I32: np.dtype("<i4"),
}

# -- flags -------------------------------------------------------------
FLAG_FINAL = 0x01  #: last chunk of a streamed label vector
FLAG_CANONICAL = 0x02  #: payload is sorted duplicate-free u < v pairs

# -- status codes (response header) ------------------------------------
STATUS_OK = 0
STATUS_SHED = 1  #: rejected by admission (queue full / draining)
STATUS_TIMEOUT = 2
STATUS_CANCELLED = 3
STATUS_ERROR = 4  #: engine failure after retries
STATUS_BAD_FRAME = 5  #: malformed header or inconsistent payload
STATUS_OVERSIZED = 6  #: declared payload exceeds the gateway's ceiling
STATUS_UNSUPPORTED = 7  #: unknown kind / version / dtype

_STATUS_OF_REQUEST = {
    RequestStatus.OK: STATUS_OK,
    RequestStatus.SHED: STATUS_SHED,
    RequestStatus.TIMEOUT: STATUS_TIMEOUT,
    RequestStatus.CANCELLED: STATUS_CANCELLED,
    RequestStatus.ERROR: STATUS_ERROR,
}

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_SHED: "shed",
    STATUS_TIMEOUT: "timeout",
    STATUS_CANCELLED: "cancelled",
    STATUS_ERROR: "error",
    STATUS_BAD_FRAME: "bad_frame",
    STATUS_OVERSIZED: "oversized",
    STATUS_UNSUPPORTED: "unsupported",
}

_REQ_STRUCT = struct.Struct("<HBBBBHIQQQI")
_RESP_STRUCT = struct.Struct("<HBBBBHIQQQ")

REQUEST_HEADER_SIZE = _REQ_STRUCT.size  # 40
RESPONSE_HEADER_SIZE = _RESP_STRUCT.size  # 36

#: Default ceiling on one frame's declared payload (256 MiB -- a 16M-pair
#: int64 frame).  The gateway config can lower or raise it.
DEFAULT_MAX_PAYLOAD = 256 << 20

#: Deadline ceiling expressible in the 32-bit microsecond field (~71.6
#: minutes); anything above is clamped by the encoder.
MAX_DEADLINE_US = 2**32 - 1

BufferLike = Union[bytes, bytearray, memoryview]


class ProtocolError(ValueError):
    """A frame violated the wire format.

    ``status`` carries the :data:`STATUS_BAD_FRAME` /
    :data:`STATUS_OVERSIZED` / :data:`STATUS_UNSUPPORTED` code the
    gateway should answer with; ``recoverable`` says whether the stream
    is still framed (the declared payload length can be drained and the
    connection kept) or lost (bad magic -- nothing downstream can be
    trusted, close).
    """

    def __init__(self, message: str, status: int = STATUS_BAD_FRAME,
                 recoverable: bool = True):
        super().__init__(message)
        self.status = status
        self.recoverable = recoverable


@dataclass(frozen=True)
class RequestHeader:
    """Decoded request-frame header (see module docstring for layout)."""

    kind: int
    dtype: int
    flags: int
    request_id: int
    n: int
    m: int
    payload_bytes: int
    deadline_us: int

    @property
    def deadline(self) -> Optional[float]:
        """Deadline in seconds, ``None`` when the field is 0."""
        return self.deadline_us / 1e6 if self.deadline_us else None

    @property
    def canonical(self) -> bool:
        return bool(self.flags & FLAG_CANONICAL)


@dataclass(frozen=True)
class ResponseHeader:
    """Decoded response-frame header."""

    kind: int
    status: int
    flags: int
    request_id: int
    n: int
    offset: int
    count: int

    @property
    def final(self) -> bool:
        return bool(self.flags & FLAG_FINAL)

    @property
    def payload_bytes(self) -> int:
        """Bytes of payload following this header on the wire."""
        if self.kind == KIND_LABELS:
            return int(self.count) * 8
        if self.kind == KIND_ERROR:
            return int(self.count)
        return 0


# ----------------------------------------------------------------------
# request encode / decode
# ----------------------------------------------------------------------

def encode_solve_request(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    request_id: int = 0,
    deadline: Optional[float] = None,
    dtype_code: int = DTYPE_I64,
    canonical: bool = False,
) -> bytes:
    """One SOLVE frame for the edge arrays ``(u, v)``.

    ``canonical=True`` stamps :data:`FLAG_CANONICAL`: the pairs are
    promised to be the sorted duplicate-free ``u < v`` set, letting the
    gateway skip normalisation (only set it when that promise holds --
    e.g. when encoding an :class:`EdgeListGraph`'s own canonical halves;
    see :func:`encode_graph_request`).
    """
    wire_dtype = DTYPES.get(dtype_code)
    if wire_dtype is None:
        raise ValueError(f"unknown dtype code {dtype_code}")
    u = np.ascontiguousarray(u, dtype=wire_dtype)
    v = np.ascontiguousarray(v, dtype=wire_dtype)
    if u.shape != v.shape or u.ndim != 1:
        raise ValueError(
            f"endpoint arrays must be equal-length 1-d, got "
            f"{u.shape} vs {v.shape}"
        )
    deadline_us = 0
    if deadline is not None:
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        deadline_us = min(int(deadline * 1e6), MAX_DEADLINE_US) or 1
    flags = FLAG_CANONICAL if canonical else 0
    payload_bytes = 2 * u.size * wire_dtype.itemsize
    header = _REQ_STRUCT.pack(
        MAGIC, VERSION, KIND_SOLVE, dtype_code, flags, 0,
        request_id & 0xFFFFFFFF, n, u.size, payload_bytes, deadline_us,
    )
    return b"".join((header, u.tobytes(), v.tobytes()))


def encode_graph_request(
    graph: EdgeListGraph,
    request_id: int = 0,
    deadline: Optional[float] = None,
    dtype_code: int = DTYPE_I64,
) -> bytes:
    """A SOLVE frame for an :class:`EdgeListGraph`.

    The first half of ``(src, dst)`` is the graph's sorted duplicate-free
    ``u < v`` pair set (the constructors normalise), so the frame is
    stamped :data:`FLAG_CANONICAL` and the gateway rebuilds the graph
    without re-normalising.
    """
    m = graph.edge_count
    return encode_solve_request(
        graph.n, graph.src[:m], graph.dst[:m], request_id=request_id,
        deadline=deadline, dtype_code=dtype_code, canonical=True,
    )


def encode_ping(request_id: int = 0) -> bytes:
    """A PING frame (empty payload)."""
    return _REQ_STRUCT.pack(MAGIC, VERSION, KIND_PING, DTYPE_I64, 0, 0,
                            request_id & 0xFFFFFFFF, 0, 0, 0, 0)


def decode_request_header(
    buf: BufferLike, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> RequestHeader:
    """Decode and validate one request header.

    Raises :class:`ProtocolError` with the status code the gateway
    should answer with; ``recoverable`` is ``False`` only for bad magic
    (framing lost).  Oversized declarations are rejected *before* any
    allocation is sized from them.
    """
    if len(buf) < REQUEST_HEADER_SIZE:
        raise ProtocolError(
            f"truncated header: {len(buf)} of {REQUEST_HEADER_SIZE} bytes",
            recoverable=False,
        )
    (magic, version, kind, dtype_code, flags, _reserved, request_id,
     n, m, payload_bytes, deadline_us) = _REQ_STRUCT.unpack_from(buf)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})",
            recoverable=False,
        )
    if version != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking {VERSION})",
            status=STATUS_UNSUPPORTED,
        )
    if kind not in REQUEST_KINDS:
        raise ProtocolError(f"unknown request kind {kind}",
                            status=STATUS_UNSUPPORTED)
    header = RequestHeader(kind=kind, dtype=dtype_code, flags=flags,
                           request_id=request_id, n=n, m=m,
                           payload_bytes=payload_bytes,
                           deadline_us=deadline_us)
    if kind == KIND_PING:
        if payload_bytes:
            raise ProtocolError("ping frames carry no payload")
        return header
    wire_dtype = DTYPES.get(dtype_code)
    if wire_dtype is None:
        raise ProtocolError(f"unknown dtype code {dtype_code}",
                            status=STATUS_UNSUPPORTED)
    if payload_bytes > max_payload:
        raise ProtocolError(
            f"declared payload of {payload_bytes} bytes exceeds the "
            f"gateway ceiling of {max_payload}",
            status=STATUS_OVERSIZED,
        )
    if payload_bytes != 2 * m * wire_dtype.itemsize:
        raise ProtocolError(
            f"payload length {payload_bytes} does not match m={m} "
            f"pairs of {wire_dtype.name}"
        )
    if n < 1:
        raise ProtocolError(f"n must be >= 1, got {n}")
    return header


def declared_payload_bytes(buf: BufferLike) -> int:
    """The raw ``payload_bytes`` field of a request header.

    Used to resync the stream after a *recoverable* header rejection
    (unknown dtype, inconsistent length, oversized declaration): the
    declared payload can be drained and the connection kept, because the
    length field itself is still trusted framing.  Returns 0 when the
    buffer is too short to carry one.
    """
    if len(buf) < REQUEST_HEADER_SIZE:
        return 0
    return int(_REQ_STRUCT.unpack_from(buf)[9])


def declared_request_id(buf: BufferLike) -> int:
    """The raw ``request_id`` field of a request header.

    Lets a rejection's error frame still echo the caller's correlation
    id even though the rest of the header failed validation.  Returns 0
    when the buffer is too short to carry one.
    """
    if len(buf) < REQUEST_HEADER_SIZE:
        return 0
    return int(_REQ_STRUCT.unpack_from(buf)[6])


def decode_pairs(
    header: RequestHeader, payload: BufferLike
) -> Tuple[np.ndarray, np.ndarray]:
    """The zero-copy endpoint views of a SOLVE payload.

    Both returned arrays are ``np.frombuffer`` views into ``payload``
    (``np.shares_memory(u, payload)`` holds) -- the edge data is never
    copied by the decode itself.
    """
    if len(payload) != header.payload_bytes:
        raise ProtocolError(
            f"payload is {len(payload)} bytes, header declared "
            f"{header.payload_bytes}"
        )
    wire_dtype = DTYPES[header.dtype]
    flat = np.frombuffer(payload, dtype=wire_dtype)
    if flat.size != 2 * header.m:
        raise ProtocolError(
            f"header declares m={header.m} edges but the payload holds "
            f"{flat.size} {wire_dtype.name} words; refusing to shear "
            "the endpoint arrays"
        )
    return flat[:header.m], flat[header.m:]


def graph_from_frame(header: RequestHeader,
                     payload: BufferLike) -> EdgeListGraph:
    """Decode a SOLVE frame straight into an :class:`EdgeListGraph`.

    The endpoint views feed ``EdgeListGraph.from_arrays`` directly;
    :data:`FLAG_CANONICAL` frames skip normalisation.
    """
    u, v = decode_pairs(header, payload)
    return EdgeListGraph.from_arrays(header.n, u, v,
                                     assume_canonical=header.canonical)


# ----------------------------------------------------------------------
# response encode / decode
# ----------------------------------------------------------------------

def encode_labels_header(
    request_id: int, n: int, offset: int, count: int, final: bool
) -> bytes:
    """Header of one LABELS chunk (``count`` int64 labels follow).

    The payload is written separately by the caller (typically a
    ``memoryview`` slice of the label vector) so streaming a large
    result copies nothing.
    """
    flags = FLAG_FINAL if final else 0
    return _RESP_STRUCT.pack(MAGIC, VERSION, KIND_LABELS, STATUS_OK,
                             flags, 0, request_id & 0xFFFFFFFF,
                             n, offset, count)


def iter_label_chunks(
    request_id: int, labels: np.ndarray, chunk_labels: int
) -> List[Tuple[bytes, memoryview]]:
    """``(header, payload_view)`` pairs streaming ``labels`` in bounded
    chunks of at most ``chunk_labels`` values each.

    Payloads are memoryviews over one contiguous little-endian int64
    copy of the vector (a no-op view when the labels already are) --
    the chunking itself never re-slices into fresh arrays.
    """
    if chunk_labels < 1:
        raise ValueError(f"chunk_labels must be >= 1, got {chunk_labels}")
    wire = np.ascontiguousarray(labels, dtype="<i8")
    n = int(wire.size)
    view = memoryview(wire).cast("B")
    frames: List[Tuple[bytes, memoryview]] = []
    offset = 0
    while True:
        count = min(chunk_labels, n - offset)
        final = offset + count >= n
        header = encode_labels_header(request_id, n, offset, count, final)
        frames.append((header, view[offset * 8:(offset + count) * 8]))
        if final:
            break
        offset += count
    return frames


def encode_error(request_id: int, status: int, message: str,
                 n: int = 0) -> bytes:
    """One ERROR frame; the payload is the UTF-8 message."""
    body = message.encode("utf-8", errors="replace")
    header = _RESP_STRUCT.pack(MAGIC, VERSION, KIND_ERROR, status,
                               FLAG_FINAL, 0, request_id & 0xFFFFFFFF,
                               n, 0, len(body))
    return header + body


def encode_pong(request_id: int) -> bytes:
    """One PONG frame (empty payload)."""
    return _RESP_STRUCT.pack(MAGIC, VERSION, KIND_PONG, STATUS_OK,
                             FLAG_FINAL, 0, request_id & 0xFFFFFFFF,
                             0, 0, 0)


def status_of_response(response: CCResponse) -> int:
    """The wire status code of a served :class:`CCResponse`."""
    return _STATUS_OF_REQUEST.get(response.status, STATUS_ERROR)


def decode_response_header(buf: BufferLike) -> ResponseHeader:
    """Decode one response header (client side)."""
    if len(buf) < RESPONSE_HEADER_SIZE:
        raise ProtocolError(
            f"truncated header: {len(buf)} of {RESPONSE_HEADER_SIZE} bytes",
            recoverable=False,
        )
    (magic, version, kind, status, flags, _reserved, request_id,
     n, offset, count) = _RESP_STRUCT.unpack_from(buf)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x}", recoverable=False)
    if version != VERSION:
        raise ProtocolError(f"unsupported version {version}",
                            status=STATUS_UNSUPPORTED)
    if kind not in (KIND_LABELS, KIND_ERROR, KIND_PONG):
        raise ProtocolError(f"unknown response kind {kind}",
                            status=STATUS_UNSUPPORTED)
    return ResponseHeader(kind=kind, status=status, flags=flags,
                          request_id=request_id, n=n, offset=offset,
                          count=count)


def decode_labels(header: ResponseHeader, payload: BufferLike) -> np.ndarray:
    """The zero-copy label view of one LABELS chunk."""
    if len(payload) != header.payload_bytes:
        raise ProtocolError(
            f"labels payload is {len(payload)} bytes, header declared "
            f"{header.payload_bytes}"
        )
    return np.frombuffer(payload, dtype="<i8")


# ----------------------------------------------------------------------
# JSON dialect (line protocol and HTTP body)
# ----------------------------------------------------------------------

def decode_json_request(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse and validate one JSON request object.

    Accepted shapes::

        {"n": 5, "edges": [[0, 1], [2, 3]], "id": 7, "deadline": 0.5}
        {"n": 5, "u": [0, 2], "v": [1, 3]}

    Returns ``{"id", "n", "u", "v", "deadline"}`` with ``u``/``v`` as
    int64 arrays.  Raises :class:`ProtocolError` on malformed input.
    """
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("JSON request must be an object")
    if "n" not in doc:
        raise ProtocolError("JSON request missing 'n'")
    try:
        n = int(doc["n"])
    except (TypeError, ValueError):
        raise ProtocolError(f"bad n {doc.get('n')!r}") from None
    try:
        if "edges" in doc:
            edges = np.asarray(doc["edges"], dtype=np.int64)
            if edges.size == 0:
                u = v = np.empty(0, dtype=np.int64)
            elif edges.ndim != 2 or edges.shape[1] != 2:
                raise ProtocolError(
                    "'edges' must be a list of [u, v] pairs"
                )
            else:
                u, v = edges[:, 0].copy(), edges[:, 1].copy()
        else:
            u = np.asarray(doc.get("u", ()), dtype=np.int64).ravel()
            v = np.asarray(doc.get("v", ()), dtype=np.int64).ravel()
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"bad edge arrays: {exc}") from None
    if u.shape != v.shape:
        raise ProtocolError(
            f"'u' and 'v' differ in length: {u.size} vs {v.size}"
        )
    deadline = doc.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"bad deadline {doc.get('deadline')!r}"
            ) from None
        if deadline <= 0:
            raise ProtocolError(f"deadline must be positive, got {deadline}")
    return {"id": doc.get("id"), "n": n, "u": u, "v": v,
            "deadline": deadline}


def encode_json_response(
    request_id: Any,
    response: Optional[CCResponse] = None,
    error: Optional[str] = None,
    status: str = "error",
) -> bytes:
    """One JSON response line (newline-terminated UTF-8).

    With ``response`` the line mirrors the :class:`CCResponse` (status,
    labels on OK, engine attribution, latency); without it, a protocol-
    level failure line with ``status`` and ``error``.
    """
    doc: Dict[str, Any] = {"id": request_id}
    if response is not None:
        doc["status"] = response.status.value
        if response.status is RequestStatus.OK and response.labels is not None:
            doc["n"] = int(response.labels.size)
            doc["labels"] = response.labels.tolist()
            doc["engine"] = response.engine
            doc["batch_size"] = response.batch_size
        elif response.error:
            doc["error"] = response.error
        doc["latency_ms"] = round(response.latency_seconds * 1e3, 4)
    else:
        doc["status"] = status
        doc["error"] = error or "request failed"
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")
