"""Persistent shared-memory worker pool for the serve layer.

The serve scheduler (PR 3) packs requests into batches well, but every
flush still executes on one GIL-bound core.  This module is the missing
half of the paper's "many cheap processing elements" story at the
process level: a **pre-forked, persistent** pool of worker processes
that import the engines once, stay warm forever, and execute whole
flushed batches -- dense stacks and coalesced sparse unions -- on all
cores.

Design points, in the order they matter:

* **Zero-copy handoff.**  Batch payloads travel through
  :class:`~repro.analysis.shm.SlabPool` slabs: the parent writes the
  padded dense stack (or the union's edge arrays) straight into a
  recycled shared-memory block, the worker attaches by name (caching
  the mapping, so a steady server re-maps nothing) and writes the label
  vectors into a shared output slot.  Only a tiny picklable
  :class:`_Task` descriptor crosses the queue.
* **Per-worker pipes, not a shared queue.**  Every worker owns a private
  task pipe and a private result pipe (single writer, single reader, no
  locks).  A shared ``multiprocessing.Queue`` would be simpler -- and
  wrong: a worker SIGKILLed while blocked in ``get()`` dies *holding the
  queue's reader lock*, after which no replacement can ever dequeue
  again.  With private pipes a crash orphans only that worker's own
  channel, and the parent knows exactly which tasks went to it.
* **Bounded in-flight window.**  A semaphore caps batches submitted but
  not yet resolved, so a stalled pool backpressures the server's worker
  threads instead of growing an unbounded pickle queue.
* **Heartbeats & crash replacement.**  Each worker bumps a per-worker
  heartbeat slot; a monitor thread watches process liveness.  A dead
  worker (OOM-killed, segfaulted) is replaced immediately, every task
  dispatched to it fails over to a **single retry on a fresh worker**
  (:meth:`PoolExecutor.solve_dense_stack` /
  :meth:`~PoolExecutor.solve_coalesced` rebuild the slabs and resubmit
  once), and only then surfaces :class:`~repro.serve.workers.WorkerDied`
  to the server -- which falls back to inline solo execution, so one
  lost worker never fails unrelated in-flight requests.
* **Measured dispatch overhead.**  Startup warm-calibrates the pool: a
  few tiny round trips measure the real cost of one pool dispatch on
  this host (:attr:`PoolExecutor.measured_overhead`), which the server
  feeds into the cost-model term
  :attr:`~repro.core.dispatch.CostModel.pool_dispatch_overhead` so small
  batches stay inline.
* **No leaks.**  Shutdown (explicit, context-manager, or the ``atexit``
  safety net) joins the workers, drains the queues and unlinks every
  shared segment; :func:`repro.analysis.shm.live_segments` is empty
  afterwards, which the tests and CI assert.

Slabs touched by a failed or suspect task are *discarded* (unlinked)
rather than recycled: a straggler worker that still holds the old
mapping then scribbles on orphaned pages instead of on a block that a
later batch reuses.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp
from multiprocessing import connection as mp_connection

import numpy as np

from repro.analysis.shm import SharedArray, SharedArrayRef, Slab, SlabPool
from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve.request import GraphLike
from repro.serve.workers import (
    WorkerDied,
    as_edge_list,
    split_union_labels,
    union_edges,
)

#: Seconds an idle worker polls its task pipe between heartbeats.
HEARTBEAT_INTERVAL = 0.05

#: Warm-calibration round trips (tiny dense solves through the full
#: slab + queue + attach path); the minimum is the measured overhead.
_CALIBRATION_TRIPS = 3


@dataclass(frozen=True)
class _Task:
    """Picklable batch descriptor; the arrays stay in shared memory."""

    seq: int
    kind: str   # "dense" | "sparse" | "shard" | "lt_hook" | "lt_jump" | "ping"
    out: Optional[SharedArrayRef] = None
    stack: Optional[SharedArrayRef] = None   # dense: (B, S, S) adjacency
    src: Optional[SharedArrayRef] = None     # sparse/shard: edge arrays
    dst: Optional[SharedArrayRef] = None
    n: int = 0                    # sparse/shard: global node count
    engine: str = "contracting"   # sparse/shard engine, or lt_hook variant
    sleep: float = 0.0            # ping: hold the worker busy (tests)
    labels: Optional[SharedArrayRef] = None  # lt_*: round-start labels
    lo: int = 0                   # lt_*: chunk bounds (edges / vertices)
    hi: int = 0
    seed: int = -1                # lt_hook: stochastic round seed


# ----------------------------------------------------------------------
# worker process side
# ----------------------------------------------------------------------
#: Per-worker cache of attached segments (name -> SharedMemory).  The
#: parent's slab pool recycles a handful of names, so after warm-up a
#: worker maps no new memory per batch.  Bounded: oldest mapping evicted
#: past this many entries (discarded transient slabs would otherwise pin
#: their orphaned pages forever).
_ATTACH_CACHE_MAX = 32


def _attach_view(cache: Dict[str, "mp.shared_memory.SharedMemory"],
                 ref: SharedArrayRef) -> np.ndarray:
    from multiprocessing import shared_memory

    shm = cache.get(ref.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=ref.name)
        if len(cache) >= _ATTACH_CACHE_MAX:
            cache.pop(next(iter(cache))).close()
        cache[ref.name] = shm
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf,
                      offset=ref.offset)


def _run_task(task: _Task, cache: Dict) -> int:
    """Execute one task against shared memory; returns a tiny token."""
    from repro.core.batched import BatchedGCA
    from repro.hirschberg.contracting import connected_components_contracting
    from repro.hirschberg.edgelist import connected_components_edgelist

    if task.kind == "ping":
        if task.sleep:
            time.sleep(task.sleep)
        return 0
    out = _attach_view(cache, task.out)
    if task.kind == "dense":
        stack = _attach_view(cache, task.stack)
        result = BatchedGCA(list(stack)).run()
        out[...] = result.labels
        return int(result.labels.shape[0])
    if task.kind == "shard":
        from repro.hirschberg.sharded import solve_shard_arrays

        verts, reps = solve_shard_arrays(
            task.n,
            _attach_view(cache, task.src),
            _attach_view(cache, task.dst),
            engine=task.engine,
        )
        count = int(verts.size)
        out[0, :count] = verts
        out[1, :count] = reps
        return count
    if task.kind == "lt_hook":
        from repro.core.parallel_kernels import hook_partial

        return hook_partial(
            _attach_view(cache, task.labels),
            _attach_view(cache, task.src),
            _attach_view(cache, task.dst),
            task.lo, task.hi, out,
            variant=task.engine, seed=task.seed,
        )
    if task.kind == "lt_jump":
        from repro.core.parallel_kernels import jump_chunk

        return jump_chunk(_attach_view(cache, task.labels), out,
                          task.lo, task.hi)
    graph = EdgeListGraph(
        n=task.n,
        src=_attach_view(cache, task.src),
        dst=_attach_view(cache, task.dst),
    )
    if task.engine == "edgelist":
        labels = connected_components_edgelist(graph).labels
    elif task.engine == "contracting":
        labels = connected_components_contracting(graph).labels
    elif task.engine == "parallel":
        # The chunk-parallel engine's serial path: a pool worker cannot
        # fan out onto its own pool, so a sparse batch routed here runs
        # the same kernels inline (the server drives the truly pooled
        # variant from the parent via run_chunk_tasks).
        from repro.hirschberg.parallel import connected_components_parallel

        labels = connected_components_parallel(graph).labels
    else:
        raise ValueError(f"unknown sparse engine {task.engine!r}")
    out[...] = labels
    return int(labels.size)


def _worker_main(worker_id: int, task_r, result_w,
                 hb_ref: SharedArrayRef) -> None:
    """Worker process body: warm the engines, then serve tasks forever.

    ``task_r`` / ``result_w`` are this worker's *private* pipe ends --
    nothing is shared with sibling workers, so a sibling's crash can
    never wedge this worker's channel.  Messages back to the parent:
    ``("ready", id, pid)`` once warm, ``("done", seq, pid, token,
    error_or_None)`` per task.  Labels never cross the pipe.
    """
    from repro.core.batched import BatchedGCA
    from repro.hirschberg.contracting import connected_components_contracting
    from repro.hirschberg.edgelist import random_edge_list

    hb = SharedArray.attach(hb_ref)
    cache: Dict = {}
    pid = os.getpid()
    try:
        # Warm NumPy's first-call paths so the first real batch does not
        # pay them (the imports themselves came free with the fork).
        tiny = np.zeros((1, 2, 2), dtype=np.int8)
        BatchedGCA(list(tiny)).run()
        connected_components_contracting(random_edge_list(4, 4, seed=0))
        result_w.send(("ready", worker_id, pid))
        while True:
            if not task_r.poll(HEARTBEAT_INTERVAL):
                hb.array[worker_id] += 1
                continue
            try:
                task = task_r.recv()
            except (EOFError, OSError):
                break  # parent went away
            if task is None:
                break
            try:
                token = _run_task(task, cache)
                result_w.send(("done", task.seq, pid, token, None))
            except BaseException as exc:  # noqa: BLE001 -- reported, not raised
                result_w.send(
                    ("done", task.seq, pid, None,
                     f"{type(exc).__name__}: {exc}")
                )
            hb.array[worker_id] += 1
    finally:
        for shm in cache.values():
            shm.close()
        hb.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """Parent-side record of one submitted task."""

    task: _Task
    submitted: float
    assigned_pid: int = 0                 # pid of the worker it went to
    event: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[Tuple[str, object]] = None  # ("ok"|"died"|"error", x)

    def resolve(self, kind: str, payload: object) -> None:
        if self.outcome is None:
            self.outcome = (kind, payload)
            self.event.set()


class _WorkerHandle:
    """One worker process plus the parent ends of its private pipes."""

    __slots__ = ("proc", "task_w", "result_r")

    def __init__(self, proc, task_w, result_r):
        self.proc = proc
        self.task_w = task_w
        self.result_r = result_r

    def close(self) -> None:
        for conn in (self.task_w, self.result_r):
            try:
                conn.close()
            except OSError:
                pass


class PoolExecutor:
    """The persistent multi-core batch executor (see module docstring).

    Parameters
    ----------
    workers:
        Worker process count (pre-forked at :meth:`start`).
    max_inflight:
        Bound on batches submitted but unresolved (default
        ``2 * workers``).
    slab_budget:
        Byte budget of the recycled slab pool.
    start_method:
        ``multiprocessing`` start method; default prefers ``"fork"``
        (pre-fork semantics: workers inherit the warm imports) and falls
        back to the platform default.
    calibrate:
        Measure :attr:`measured_overhead` with tiny round trips at
        startup (default on; tests disable it for speed).
    """

    def __init__(
        self,
        workers: int,
        max_inflight: Optional[int] = None,
        slab_budget: int = 256 << 20,
        start_method: Optional[str] = None,
        calibrate: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.restarts = 0
        self.measured_overhead = 0.0
        self._calibrate = calibrate
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        self._hb = SharedArray.zeros((workers,), np.int64)
        self._slabs = SlabPool(slab_budget)
        self._inflight = threading.BoundedSemaphore(
            max_inflight if max_inflight is not None else 2 * workers
        )
        self._lock = threading.Lock()
        self._handles: List[Optional[_WorkerHandle]] = [None] * workers
        self._pending: Dict[int, _Pending] = {}
        self._seq = 0
        self._state = "new"
        self._ready_count = 0
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "PoolExecutor":
        with self._lock:
            if self._state != "new":
                raise RuntimeError(f"cannot start a {self._state} pool")
            self._state = "running"
        for i in range(self.workers):
            self._handles[i] = self._spawn(i)
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-pool-collector",
            daemon=True,
        )
        self._collector.start()
        self._await_ready()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-pool-monitor", daemon=True,
        )
        self._monitor.start()
        atexit.register(self.shutdown)
        if self._calibrate:
            self._warm_calibrate()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_r, result_w, self._hb.ref),
            name=f"repro-pool-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        # drop the parent's copies of the child ends so EOF propagates
        task_r.close()
        result_w.close()
        return _WorkerHandle(proc, task_w, result_r)

    def _await_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._ready_count >= self.workers:
                    return
                if self._state != "running":
                    return
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"pool workers not ready within {timeout}s"
                )
            time.sleep(0.005)

    def _warm_calibrate(self) -> None:
        """Measure one pool dispatch end to end (slab, queue, attach,
        tiny solve, result) -- the term that keeps small batches inline."""
        tiny = [np.zeros((2, 2), dtype=np.int8)]
        best = float("inf")
        for _ in range(_CALIBRATION_TRIPS):
            t0 = time.perf_counter()
            try:
                self.solve_dense_stack(tiny, 2)
            except Exception:  # noqa: BLE001 -- calibration is best-effort
                return
            best = min(best, time.perf_counter() - t0)
        self.measured_overhead = best

    def __enter__(self) -> "PoolExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers, drain queues, unlink every shared segment.

        Idempotent; also registered via ``atexit`` so an interrupted
        run (SIGINT mid-bench) still leaves ``/dev/shm`` clean.
        """
        with self._lock:
            if self._state in ("stopped", "new"):
                self._state = "stopped"
                return
            self._state = "stopping"
            pendings = list(self._pending.values())
        for pending in pendings:
            pending.resolve("died", "pool shut down")
        handles = [h for h in self._handles if h is not None]
        for handle in handles:
            try:
                handle.task_w.send(None)
            except (OSError, ValueError):  # already dead / pipe broken
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            proc = handle.proc
            proc.join(timeout=max(deadline - time.monotonic(), 0.05))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        with self._lock:
            self._state = "stopped"
        for handle in handles:
            handle.close()
        if self._collector is not None:
            self._collector.join(timeout=1.0)
        if self._monitor is not None:
            self._monitor.join(timeout=1.0)
        self._slabs.close_all()
        self._hb.close()
        self._hb.unlink()
        try:
            atexit.unregister(self.shutdown)
        except Exception:  # noqa: BLE001
            pass

    # -- observability -------------------------------------------------
    def worker_pids(self) -> List[int]:
        return [h.proc.pid for h in self._handles if h is not None]

    def heartbeats(self) -> List[int]:
        """Per-worker heartbeat counters (monotone while a worker lives)."""
        if self._hb.array is None:
            return []
        return [int(x) for x in self._hb.array]

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- submission ----------------------------------------------------
    def _submit(self, build) -> Tuple[_Pending, List[Slab]]:
        """Allocate a sequence number, build the task, dispatch it.

        ``build(seq) -> (task, slabs)`` runs under no lock (slab writes
        are heavy).  The task goes down the private pipe of the
        least-loaded worker; registration happens before the send so a
        lightning-fast worker can never report an unknown seq.  A send
        that hits a just-died worker's broken pipe resolves the pending
        ``"died"`` immediately -- the caller's retry re-dispatches.
        """
        with self._lock:
            if self._state != "running":
                raise WorkerDied("pool is shut down")
            self._seq += 1
            seq = self._seq
        task, slabs = build(seq)
        pending = _Pending(task=task, submitted=time.monotonic())
        with self._lock:
            if self._state != "running":
                raise WorkerDied("pool is shut down")
            loads = {
                h.proc.pid: 0 for h in self._handles if h is not None
            }
            for other in self._pending.values():
                if other.outcome is None and other.assigned_pid in loads:
                    loads[other.assigned_pid] += 1
            handle = min(
                (h for h in self._handles if h is not None),
                key=lambda h: loads.get(h.proc.pid, 0),
            )
            pending.assigned_pid = handle.proc.pid
            self._pending[seq] = pending
        try:
            handle.task_w.send(task)
        except (OSError, ValueError):
            # the chosen worker died with its pipe; fail over right away
            pending.resolve("died", "task pipe broken")
        return pending, slabs

    def _finish(self, pending: _Pending) -> Tuple[str, object]:
        pending.event.wait()
        with self._lock:
            self._pending.pop(pending.task.seq, None)
        assert pending.outcome is not None
        return pending.outcome

    def _acquire_slabs(self, specs: Sequence[Tuple[Tuple[int, ...], object]]) -> List[Slab]:
        """Acquire one slab per ``(shape, dtype)`` spec, atomically.

        If a later acquisition fails (slab budget forces a fresh segment
        and ``/dev/shm`` is full), the earlier slabs are discarded -- a
        partial failure must not leak the first slab of the batch.
        """
        slabs: List[Slab] = []
        try:
            for shape, dtype in specs:
                slabs.append(self._slabs.acquire(shape, dtype))
        except BaseException:
            self._discard(slabs)
            raise
        return slabs

    def _discard(self, slabs: Sequence[Slab]) -> None:
        """Unlink (never recycle) slabs a failed task may still write."""
        for slab in slabs:
            slab.transient = True
            self._slabs.release(slab)

    def _release(self, slabs: Sequence[Slab]) -> None:
        for slab in slabs:
            self._slabs.release(slab)

    def _run(self, build, collect):
        """Submit/await/retry-once skeleton shared by the solve paths.

        ``collect(slabs, token)`` receives the worker's result token --
        the shard path uses it as the valid prefix length of its output
        slab; the other paths ignore it.
        """
        with self._inflight:
            last_error: Optional[str] = None
            for attempt in range(2):
                pending, slabs = self._submit(build)
                kind, payload = self._finish(pending)
                if kind == "ok":
                    out = collect(slabs, payload)
                    self._release(slabs)
                    return out
                self._discard(slabs)
                if kind == "error":
                    # the engine raised inside a healthy worker: a retry
                    # would fail identically; let the server fall back
                    raise RuntimeError(f"pool worker error: {payload}")
                last_error = str(payload)
                # worker died: the monitor already replaced it; one
                # rebuild-and-resubmit lands on a fresh worker
            raise WorkerDied(
                f"pool worker died twice running one batch: {last_error}"
            )

    # -- the high-level solve paths ------------------------------------
    def ping(self, sleep: float = 0.0) -> None:
        """One queue round trip (liveness probe; tests use ``sleep`` to
        pin a worker busy)."""
        self._run(
            lambda seq: (_Task(seq=seq, kind="ping", sleep=sleep), []),
            lambda slabs, token: None,
        )

    def solve_dense_stack(
        self, matrices: Sequence[np.ndarray], size: int
    ) -> List[np.ndarray]:
        """Pool counterpart of :func:`repro.serve.workers.solve_dense_stack`.

        The padded stack is written straight into a recycled shared
        slab; the worker runs one :class:`~repro.core.batched.BatchedGCA`
        pass and writes ``(B, size)`` labels into the shared output slot.
        """
        B = len(matrices)
        if B == 0:
            return []
        if size == 0:
            return [np.empty(0, dtype=np.int64) for _ in matrices]

        def build(seq: int):
            stack, out = self._acquire_slabs(
                [((B, size, size), np.int8), ((B, size), np.int64)]
            )
            stack.array[...] = 0
            for i, m in enumerate(matrices):
                n = m.shape[0]
                stack.array[i, :n, :n] = m
            task = _Task(seq=seq, kind="dense", out=out.ref, stack=stack.ref)
            return task, [stack, out]

        def collect(slabs: List[Slab], token) -> List[np.ndarray]:
            out = slabs[1].array
            return [
                out[i, : matrices[i].shape[0]].copy() for i in range(B)
            ]

        return self._run(build, collect)

    def solve_coalesced(
        self, graphs: Sequence[GraphLike], engine: str = "contracting"
    ) -> List[np.ndarray]:
        """Pool counterpart of :func:`repro.serve.workers.solve_coalesced`:
        one sparse solve over the members' disjoint union, edge arrays
        and labels in shared slabs."""
        lists = [as_edge_list(g) for g in graphs]
        counts = np.asarray([e.n for e in lists], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        total = int(offsets[-1])
        if total == 0:
            return [np.empty(0, dtype=np.int64) for _ in lists]
        edge_total = int(sum(e.src.size for e in lists))

        def build(seq: int):
            src, dst, out = self._acquire_slabs(
                [((edge_total,), np.int64), ((edge_total,), np.int64),
                 ((total,), np.int64)]
            )
            union_edges(lists, offsets, src_out=src.array, dst_out=dst.array)
            task = _Task(
                seq=seq, kind="sparse", out=out.ref, src=src.ref,
                dst=dst.ref, n=total, engine=engine,
            )
            return task, [src, dst, out]

        def collect(slabs: List[Slab], token) -> List[np.ndarray]:
            return split_union_labels(slabs[2].array, offsets, copy=True)

        return self._run(build, collect)

    def solve_solo(self, graph: GraphLike, engine: str) -> np.ndarray:
        """One large request on one worker (shared-memory handoff)."""
        return self.solve_coalesced([graph], engine)[0]

    def solve_shard(
        self, n: int, u: np.ndarray, v: np.ndarray,
        engine: str = "contracting",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One out-of-core shard solve on a pool worker.

        The shard's endpoint arrays are written straight into recycled
        shared slabs (zero pickling -- only the :class:`_Task`
        descriptor crosses the pipe); the worker compacts the shard,
        runs the selected per-shard engine (``"contracting"`` or the
        parallel engine's label-propagation kernels with
        ``"parallel"``), and writes the frontier star pairs
        ``(vertex, representative)`` into the shared output slab.  The
        returned arrays are parent-owned copies, so the slabs recycle
        immediately.  Thread-safe: the sharded engine drives this from
        a bounded window of submitter threads.
        """
        m = int(u.size)
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cap = int(min(2 * m, n))

        def build(seq: int):
            src, dst, out = self._acquire_slabs(
                [((m,), np.int64), ((m,), np.int64), ((2, cap), np.int64)]
            )
            src.array[...] = u
            dst.array[...] = v
            task = _Task(
                seq=seq, kind="shard", out=out.ref, src=src.ref,
                dst=dst.ref, n=n, engine=engine,
            )
            return task, [src, dst, out]

        def collect(slabs: List[Slab], token) -> Tuple[np.ndarray, np.ndarray]:
            count = int(token)
            out = slabs[2].array
            return out[0, :count].copy(), out[1, :count].copy()

        return self._run(build, collect)

    # -- chunk-parallel label rounds (repro.hirschberg.parallel) ---------
    def run_chunk_tasks(self, builds: Sequence) -> List[int]:
        """Barrier-run one task per chunk over caller-owned segments.

        Unlike :meth:`_run`, the shared arrays are owned by the *caller*
        for its whole solve (the parallel engine creates its label and
        partial slabs once and reuses them every round), so nothing is
        acquired, released or discarded here, and the in-flight
        semaphore is not taken: the chunk count is bounded by the
        partition width (~ worker count) and a label round must never
        deadlock behind the server's own batch traffic holding permits.

        A task whose worker dies is resubmitted once on a fresh worker --
        safe because the label kernels are idempotent per chunk (hook
        reinitialises its private slab from the sentinel, jump rewrites
        exactly its slice from the untouched front labels).  **All**
        tasks are awaited before any failure is raised, so when the
        caller reacts no live worker still holds a chunk of the round.

        Returns the per-chunk result tokens, in ``builds`` order.
        """
        pendings = [self._submit(build)[0] for build in builds]
        tokens: List[int] = [0] * len(builds)
        errors: List[str] = []
        deaths: List[str] = []
        for i, pending in enumerate(pendings):
            kind, payload = self._finish(pending)
            if kind == "died":
                retry, _ = self._submit(builds[i])
                kind, payload = self._finish(retry)
                if kind == "died":
                    deaths.append(f"chunk {i}: {payload}")
                    continue
            if kind == "error":
                errors.append(f"chunk {i}: {payload}")
            else:
                tokens[i] = int(payload)
        if errors:
            raise RuntimeError(f"pool worker error: {'; '.join(errors)}")
        if deaths:
            raise WorkerDied(
                "pool worker died twice running a label round: "
                + "; ".join(deaths)
            )
        return tokens

    def label_hook_round(
        self,
        labels: SharedArrayRef,
        src: SharedArrayRef,
        dst: SharedArrayRef,
        partials: Sequence[SharedArrayRef],
        bounds: Sequence[int],
        variant: str = "fastsv",
        seed: int = -1,
    ) -> List[int]:
        """One chunk-parallel hook phase: chunk ``i`` scatter-MINs the
        edge range ``bounds[i]:bounds[i+1]``'s label proposals into its
        private slab ``partials[i]`` (``seed=-1`` = deterministic).
        Returns the per-chunk proposal counts."""

        def make(i: int):
            lo, hi = int(bounds[i]), int(bounds[i + 1])

            def build(seq: int) -> Tuple[_Task, List[Slab]]:
                task = _Task(
                    seq=seq, kind="lt_hook", out=partials[i], labels=labels,
                    src=src, dst=dst, lo=lo, hi=hi, engine=variant, seed=seed,
                )
                return task, []

            return build

        return self.run_chunk_tasks([make(i) for i in range(len(partials))])

    def label_jump_round(
        self,
        front: SharedArrayRef,
        back: SharedArrayRef,
        bounds: Sequence[int],
    ) -> List[int]:
        """One chunk-parallel pointer-jump phase: chunk ``i`` writes
        exactly ``back[bounds[i]:bounds[i+1]]`` from the shared ``front``
        labels.  Returns the per-chunk changed counts (all zero at the
        fixpoint)."""

        def make(i: int):
            lo, hi = int(bounds[i]), int(bounds[i + 1])

            def build(seq: int) -> Tuple[_Task, List[Slab]]:
                task = _Task(
                    seq=seq, kind="lt_jump", out=back, labels=front,
                    lo=lo, hi=hi,
                )
                return task, []

            return build

        return self.run_chunk_tasks(
            [make(i) for i in range(len(bounds) - 1)]
        )

    # -- parent-side service threads ------------------------------------
    def _collector_loop(self) -> None:
        """Drain worker messages; resolve pendings, count readiness."""
        while True:
            with self._lock:
                if self._state == "stopped":
                    return
                conns = [
                    h.result_r for h in self._handles if h is not None
                ]
            try:
                ready = mp_connection.wait(conns, timeout=0.1)
            except OSError:
                continue  # a conn was closed mid-wait (worker replaced)
            for conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # dead worker's pipe; the monitor handles it
                tag = msg[0]
                if tag == "ready":
                    with self._lock:
                        self._ready_count += 1
                    continue
                _, seq, pid, token, error = msg
                with self._lock:
                    pending = self._pending.get(seq)
                if pending is None:  # failed-over task; stale done
                    continue
                if error is None:
                    pending.resolve("ok", token)
                else:
                    pending.resolve("error", error)

    def _monitor_loop(self) -> None:
        """Watch worker liveness; replace the dead, fail over their work.

        Because every task is dispatched down a specific worker's pipe,
        a death has an exact blast radius: the pendings assigned to that
        pid.  Each resolves ``"died"`` (the submit path retries once on
        a fresh worker); anything the ghost still writes lands in
        discarded slabs and its late ``"done"`` messages die with its
        pipe.
        """
        while True:
            time.sleep(HEARTBEAT_INTERVAL)
            with self._lock:
                if self._state != "running":
                    return
                handles = list(enumerate(self._handles))
            for worker_id, handle in handles:
                if handle is None or handle.proc.is_alive():
                    continue
                # Fork the replacement *outside* the lock: a fork plus
                # two pipe creations can take tens of milliseconds, and
                # holding the lock that long stalls every submit and
                # collector pass.  The dead handle stays in its slot
                # meanwhile, so _submit's least-loaded pick always sees
                # a full pool (a send to it fails over immediately).
                replacement = self._spawn(worker_id)
                dead_pid = handle.proc.pid
                lost: List[_Pending] = []
                with self._lock:
                    stale = (
                        self._state != "running"
                        or self._handles[worker_id] is not handle
                    )
                    if not stale:
                        self.restarts += 1
                        self._handles[worker_id] = replacement
                        lost = [
                            p for p in self._pending.values()
                            if p.outcome is None
                            and p.assigned_pid == dead_pid
                        ]
                if stale:
                    # raced with shutdown or another pass: retire the
                    # spare worker we optimistically forked
                    try:
                        replacement.task_w.send(None)
                    except (OSError, ValueError):
                        pass
                    replacement.proc.join(timeout=1.0)
                    if replacement.proc.is_alive():
                        replacement.proc.terminate()
                    replacement.close()
                    continue
                for pending in lost:
                    pending.resolve(
                        "died", f"worker {dead_pid} died mid-batch"
                    )
                handle.close()
