"""The in-process request server: admission, scheduling, execution.

:class:`Server` turns a stream of independent connected-components
requests into dynamically packed batches::

    from repro.serve import Server, ServerConfig

    with Server(ServerConfig(workers=4, max_wait=0.002)) as server:
        handles = [server.submit(g, deadline=0.2) for g in graphs]
        labels = [h.result() for h in handles]
        print(server.metrics.to_json())

Lifecycle of one request:

1. **Admission** (caller's thread).  A bounded queue applies the
   configured backpressure policy -- ``"block"`` the caller until space
   frees, ``"shed"`` (resolve immediately with status ``SHED``) or
   ``"fail"`` (raise :class:`~repro.serve.request.QueueFull`).
2. **Scheduling** (the scheduler thread).  Admitted requests are filed
   into size/kind buckets by the
   :class:`~repro.serve.scheduler.BatchPlanner`, which flushes a bucket
   when it is full, when its batching window (``max_wait``) closes, or
   under deadline pressure.
3. **Execution** (worker threads).  A flushed batch is priced by the
   dispatcher's cost model -- stacked
   :class:`~repro.core.batched.BatchedGCA` run, one coalesced sparse run
   over the members' disjoint union, or per-request solo engines -- then
   executed; large sparse requests can hop to the shared-memory process
   pool.  Expired and cancelled members are
   resolved without touching an engine.  Engine failures and worker
   deaths are retried (``retries``) before resolving ``ERROR``.
4. **Resolution.**  The request's
   :class:`~repro.serve.request.ResultHandle` receives its
   :class:`~repro.serve.request.CCResponse`; the metrics layer records
   queue/service/latency times, occupancy and any deadline miss.

``stop(drain=True)`` (and the context manager) refuses new work, flushes
everything queued, waits for in-flight batches, then shuts the pools
down; ``stop(drain=False)`` cancels whatever is still queued.

:func:`serve_many` is the synchronous convenience front-end: submit a
whole workload, block, get responses back in input order.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dispatch import (
    CostModel,
    DEFAULT_COST_MODEL,
    cached_cost_model,
    choose_engine,
)
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve.cache import ResultCache, graph_fingerprint
from repro.serve.executor import PoolExecutor
from repro.serve.metrics import ServeMetrics
from repro.serve.request import (
    CCRequest,
    CCResponse,
    GraphLike,
    QueueFull,
    RequestStatus,
    ResultHandle,
    ServerClosed,
)
from repro.serve.scheduler import (
    BatchPlanner,
    PendingRequest,
    sample_mean_m,
)
from repro.hirschberg.parallel import connected_components_parallel
from repro.serve.workers import (
    SparseProcessPool,
    WorkerDied,
    as_dense_matrix,
    as_edge_list,
    solve_coalesced,
    solve_dense_stack,
    solve_solo,
)

#: Admission (backpressure) policies.
ADMISSION_POLICIES = ("block", "shed", "fail")

#: Cost-model startup modes.
CALIBRATION_MODES = ("default", "cached", "recalibrate")

#: Batch execution backends.
EXECUTORS = ("inline", "pool")


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of a :class:`Server`.

    Attributes
    ----------
    max_queue:
        Admission bound: queued-but-undispatched requests beyond this
        trigger the backpressure policy.
    admission:
        ``"block"`` (default), ``"shed"`` or ``"fail"`` -- see module
        docstring.
    max_batch:
        Hard batch-occupancy cap (the memory budget may cap lower).
    max_wait:
        Batching window in seconds an admitted request may wait for
        co-batchable traffic (default 2 ms).
    workers:
        Worker threads executing batches (the batched kernels release
        the GIL inside NumPy).
    process_workers:
        Size of the shared-memory process pool for large sparse
        requests; 0 (default) keeps everything in-process.
    sparse_process_units:
        ``n + 2m`` threshold above which a sparse request uses the
        process pool (when one is configured).
    default_deadline:
        Deadline applied to requests submitted without one (``None`` =
        unbounded).
    deadline_margin:
        Safety margin (seconds) for the scheduler's deadline-pressure
        flush test.
    retries:
        Re-execution attempts after an engine failure or worker death.
    pad_buckets:
        Pad dense graphs to power-of-two buckets so near-miss sizes
        batch together.
    coalesce_units:
        Work budget (``n + 2m`` summed over members) for one coalesced
        sparse flush; tuned to the knee past which a bigger disjoint
        union costs more per member than it amortises.
    cost_model:
        Explicit :class:`~repro.core.dispatch.CostModel` override.
    calibration:
        ``"default"`` uses ``cost_model`` (or the shipped constants);
        ``"cached"`` loads the calibration cache, measuring once per
        host (:func:`~repro.core.dispatch.cached_cost_model`);
        ``"recalibrate"`` forces a fresh measurement and refreshes the
        cache.
    executor:
        ``"inline"`` (default) runs flushed batches on the server's
        worker threads; ``"pool"`` ships them to a persistent
        shared-memory :class:`~repro.serve.executor.PoolExecutor` of
        ``process_workers`` processes (all cores when 0), falling back
        inline whenever the cost model says a flush is too small to pay
        the measured dispatch overhead.
    cache_bytes:
        Byte budget of the content-addressed
        :class:`~repro.serve.cache.ResultCache` (0 = caching off).
        Repeat graphs -- same canonical edge set, any representation --
        resolve from the cache with ``engine="cache"``.
    cache_verify:
        Verified-on-first-hit mode: the first hit on each cached entry
        still solves and compares before the entry is trusted.
    """

    max_queue: int = 1024
    admission: str = "block"
    max_batch: int = 512
    max_wait: float = 0.002
    workers: int = 2
    process_workers: int = 0
    sparse_process_units: int = 1_000_000
    default_deadline: Optional[float] = None
    deadline_margin: float = 0.005
    retries: int = 1
    pad_buckets: bool = True
    coalesce_units: int = 32_768
    cost_model: Optional[CostModel] = None
    calibration: str = "default"
    executor: str = "inline"
    cache_bytes: int = 0
    cache_verify: bool = False

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.calibration not in CALIBRATION_MODES:
            raise ValueError(
                f"calibration must be one of {CALIBRATION_MODES}, "
                f"got {self.calibration!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.cache_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}"
            )


class Server:
    """Dynamic micro-batching server; see the module docstring.

    Construct with a :class:`ServerConfig` (or keyword overrides), use
    as a context manager or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **overrides):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        if config.calibration == "default":
            self.cost_model = config.cost_model or DEFAULT_COST_MODEL
        else:
            self.cost_model = cached_cost_model(
                recalibrate=(config.calibration == "recalibrate")
            )
        self.metrics = ServeMetrics()
        self._planner = BatchPlanner(
            max_batch=config.max_batch,
            max_wait=config.max_wait,
            deadline_margin=config.deadline_margin,
            pad_buckets=config.pad_buckets,
            coalesce_units=config.coalesce_units,
            model=self.cost_model,
        )
        self._lock = threading.Lock()
        self._work_cv = threading.Condition(self._lock)
        self._space_cv = threading.Condition(self._lock)
        self._idle_cv = threading.Condition(self._lock)
        self._in_flight = 0
        self._state = "new"
        self._executor = None
        self._sparse_pool: Optional[SparseProcessPool] = None
        self._pool: Optional[PoolExecutor] = None
        self._cache: Optional[ResultCache] = None
        if config.cache_bytes > 0:
            self._cache = ResultCache(
                config.cache_bytes, verify_first_hit=config.cache_verify
            )
        self._scheduler: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Server":
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._state != "new":
                raise RuntimeError(f"cannot start a {self._state} server")
            self._state = "running"
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker",
        )
        if self.config.executor == "pool":
            self._pool = PoolExecutor(
                self.config.process_workers or os.cpu_count() or 1
            ).start()
            # replace the shipped constants with this host's measured
            # round trip so pool_pays() and parallel_verdict() price
            # real dispatches: one label round costs two barrier phases
            # (hook+combine, then jump), each a full pool round trip
            updates = {"parallel_workers": float(self._pool.workers)}
            if self._pool.measured_overhead > 0:
                updates["pool_dispatch_overhead"] = self._pool.measured_overhead
                updates["parallel_round_sync"] = (
                    2.0 * self._pool.measured_overhead
                )
            self.cost_model = replace(self.cost_model, **updates)
            self._planner.model = self.cost_model
        elif self.config.process_workers > 0:
            self._sparse_pool = SparseProcessPool(self.config.process_workers)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler",
            daemon=True,
        )
        self._scheduler.start()
        self._warmup()
        return self

    def _warmup(self) -> None:
        """Prime the solve paths so the first real flush does not pay
        NumPy's first-call allocation and import costs."""
        tiny = EdgeListGraph(
            n=2,
            src=np.zeros(1, dtype=np.int64),
            dst=np.ones(1, dtype=np.int64),
        )
        try:
            solve_coalesced([tiny, tiny], "contracting")
            solve_dense_stack([np.zeros((2, 2), dtype=np.int8)], 2)
        except Exception:  # noqa: BLE001 -- warming is best-effort only
            pass

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop the server.

        ``drain=True`` (default) refuses new submissions, serves
        everything already admitted, then shuts down; ``drain=False``
        resolves queued requests as ``CANCELLED`` (in-flight batches
        still complete).  Returns ``False`` when a drain ``timeout``
        elapsed with work still pending (shutdown proceeds regardless,
        cancelling the leftovers).
        """
        drained = True
        with self._lock:
            if self._state in ("stopped", "new"):
                self._state = "stopped"
                return True
            if drain:
                self._state = "draining"
                self._work_cv.notify_all()
                self._space_cv.notify_all()
                drained = self._idle_cv.wait_for(
                    lambda: self._queued_locked() == 0 and self._in_flight == 0,
                    timeout,
                )
            self._state = "stopped"
            self._work_cv.notify_all()
            self._space_cv.notify_all()
        if self._scheduler is not None:
            self._scheduler.join()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._sparse_pool is not None:
            self._sparse_pool.shutdown()
        if self._pool is not None:
            self._pool.shutdown()
        return drained

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=True)

    # -- admission -----------------------------------------------------
    def submit(
        self,
        graph: GraphLike,
        deadline: Optional[float] = None,
        priority: int = 0,
        request_id: Optional[str] = None,
    ) -> ResultHandle:
        """Submit one graph; returns immediately with a handle."""
        return self.submit_request(CCRequest(
            graph=graph, deadline=deadline, priority=priority,
            request_id=request_id,
        ))

    def submit_request(self, request: CCRequest) -> ResultHandle:
        """Submit a prepared :class:`~repro.serve.request.CCRequest`."""
        handle = ResultHandle(request)
        graph = request.graph
        if isinstance(graph, EdgeListGraph):
            n, m, sparse = graph.n, graph.edge_count, True
        else:
            mat = (graph.matrix if isinstance(graph, AdjacencyMatrix)
                   else np.asarray(graph))
            if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
                raise ValueError(
                    f"adjacency must be square, got shape {mat.shape}"
                )
            # the edge count of a dense matrix is an O(n^2) reduction;
            # leave it unmeasured until something actually prices it
            n, m, sparse = mat.shape[0], None, False
        now = time.monotonic()
        budget = request.deadline
        if budget is None:
            budget = self.config.default_deadline
        pending = PendingRequest(
            handle=handle,
            n=n,
            sparse=sparse,
            submitted_at=now,
            deadline_at=None if budget is None else now + budget,
            m_known=m,
        )
        if self._cache is not None:
            # probe before admission: a verified hit costs one memoised
            # fingerprint and skips the queue, the batching window and
            # the solve entirely; it also never charges queue capacity
            pending.fingerprint = graph_fingerprint(request.graph)
            hit = self._cache.get(pending.fingerprint)
            if hit is not None:
                labels, verified = hit
                if verified:
                    with self._lock:
                        if self._state != "running":
                            raise ServerClosed(
                                f"server is {self._state}; "
                                "not accepting requests"
                            )
                        self.metrics.record_submitted(admitted=True)
                    self._resolve_ok(pending, labels, "cache", 1, now)
                    return handle
                pending.cache_unverified = True
        with self._lock:
            if self._state != "running":
                raise ServerClosed(
                    f"server is {self._state}; not accepting requests"
                )
            while self._queued_locked() >= self.config.max_queue:
                if self.config.admission == "shed":
                    self.metrics.record_submitted(admitted=False)
                    self._resolve(pending, RequestStatus.SHED)
                    return handle
                if self.config.admission == "fail":
                    self.metrics.record_submitted(admitted=False)
                    raise QueueFull(
                        f"queue full ({self.config.max_queue}); "
                        f"request {request.request_id} rejected"
                    )
                self._space_cv.wait()
                if self._state != "running":
                    raise ServerClosed(
                        f"server stopped while {request.request_id} "
                        "waited for queue space"
                    )
            self.metrics.record_submitted(admitted=True)
            # Wake the scheduler only when it could not know to wake
            # itself: the queue was empty (it may be in an unbounded
            # wait), this arrival filled a bucket to its cap, or it
            # carries a deadline that may tighten the next flush time.
            # Everything else is picked up within the batching window,
            # and waking the scheduler per submission costs more than
            # serving the request.
            was_empty = self._planner.queued_count() == 0
            full = self._planner.add(pending)
            if was_empty or full or pending.deadline_at is not None:
                self._work_cv.notify()
        return handle

    # -- observability -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued_locked()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def metrics_snapshot(self) -> Dict:
        """The metrics snapshot with live server gauges merged in."""
        with self._lock:
            gauges = {
                "queue_depth": self._queued_locked(),
                "in_flight": self._in_flight,
                "buckets": len(self._planner._buckets),
                "state": self._state,
            }
        if self._sparse_pool is not None:
            gauges["process_pool_restarts"] = self._sparse_pool.restarts
        if self._pool is not None:
            gauges["pool_restarts"] = self._pool.restarts
            gauges["pool_inflight"] = self._pool.inflight
            gauges["pool_dispatch_overhead_s"] = round(
                self._pool.measured_overhead, 6
            )
        snap = self.metrics.snapshot(gauges)
        if self._cache is not None:
            snap["cache"] = self._cache.stats()
        return snap

    # -- internals -----------------------------------------------------
    def _queued_locked(self) -> int:
        return self._planner.queued_count()

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                if self._state == "stopped":
                    for pending in self._planner.drain_all():
                        self.metrics.record_cancelled()
                        self._resolve(pending, RequestStatus.CANCELLED)
                    self._idle_cv.notify_all()
                    return
                dispatches = self._planner.take_ready(
                    force=(self._state == "draining")
                )
                if not dispatches:
                    self._work_cv.wait(self._planner.next_due())
                    continue
                self._in_flight += sum(len(b) for b in dispatches)
                self._space_cv.notify_all()
            for batch in dispatches:
                self._executor.submit(self._execute, batch)

    def _resolve(self, pending: PendingRequest, status: RequestStatus,
                 **fields) -> None:
        now = time.monotonic()
        pending.handle._resolve(CCResponse(
            request_id=pending.request.request_id,
            status=status,
            latency_seconds=now - pending.submitted_at,
            attempts=pending.attempts,
            **fields,
        ))

    def _cache_store(self, pending: PendingRequest,
                     labels: np.ndarray, engine: str) -> None:
        """File a freshly solved result with the cache: a plain insert
        on a miss, a :meth:`~repro.serve.cache.ResultCache.confirm` when
        this solve doubled as the verification of an unverified hit."""
        if (self._cache is None or engine == "cache"
                or pending.fingerprint is None):
            return
        if pending.cache_unverified:
            self._cache.confirm(pending.fingerprint, labels)
        else:
            self._cache.put(pending.fingerprint, labels)

    def _resolve_ok(self, pending: PendingRequest, labels: np.ndarray,
                    engine: str, occupancy: int, started: float) -> None:
        self._cache_store(pending, labels, engine)
        finished = time.monotonic()
        missed = (pending.deadline_at is not None
                  and finished > pending.deadline_at)
        queued = started - pending.submitted_at
        service = finished - started
        self.metrics.record_completion(
            queued_seconds=queued,
            service_seconds=service,
            latency_seconds=finished - pending.submitted_at,
            deadline_missed=missed,
        )
        pending.handle._resolve(CCResponse(
            request_id=pending.request.request_id,
            status=RequestStatus.OK,
            labels=labels,
            engine=engine,
            batch_size=occupancy,
            queued_seconds=queued,
            service_seconds=service,
            latency_seconds=finished - pending.submitted_at,
            deadline_missed=missed,
            attempts=pending.attempts,
        ))

    def _resolve_ok_batch(self, members: List[PendingRequest],
                          labels: List[np.ndarray], engine: str,
                          started: float) -> None:
        """Resolve a whole flush: one clock read and one metrics lock
        acquisition for the batch instead of one per member."""
        for pending, vec in zip(members, labels):
            self._cache_store(pending, vec, engine)
        finished = time.monotonic()
        occupancy = len(members)
        service = finished - started
        samples = []
        for pending, vec in zip(members, labels):
            missed = (pending.deadline_at is not None
                      and finished > pending.deadline_at)
            queued = started - pending.submitted_at
            latency = finished - pending.submitted_at
            samples.append((queued, service, latency, missed))
            pending.handle._resolve(CCResponse(
                request_id=pending.request.request_id,
                status=RequestStatus.OK,
                labels=vec,
                engine=engine,
                batch_size=occupancy,
                queued_seconds=queued,
                service_seconds=service,
                latency_seconds=latency,
                deadline_missed=missed,
                attempts=pending.attempts,
            ))
        self.metrics.record_completions(samples)

    def _execute(self, batch: List[PendingRequest]) -> None:
        started = time.monotonic()
        try:
            runnable: List[PendingRequest] = []
            for pending in batch:
                if pending.handle.cancel_requested:
                    self.metrics.record_cancelled()
                    self._resolve(pending, RequestStatus.CANCELLED)
                elif pending.slack(started) <= 0:
                    self.metrics.record_timeout()
                    self._resolve(pending, RequestStatus.TIMEOUT)
                else:
                    runnable.append(pending)
            if runnable and self._cache is not None:
                runnable = self._check_cache(runnable, started)
            if runnable:
                self._run_batch(runnable, started)
        finally:
            with self._lock:
                self._in_flight -= len(batch)
                if self._in_flight == 0 and self._queued_locked() == 0:
                    self._idle_cv.notify_all()

    def _check_cache(self, runnable: List[PendingRequest],
                     started: float) -> List[PendingRequest]:
        """Resolve verified cache hits; return the members still to run.

        Requests probed at submission (``fingerprint`` already set) pass
        straight through -- their hit/miss outcome stands, and probing
        again would double-count the cache counters.  An *unverified*
        hit (verify-on-first-hit mode) is not resolved here: the member
        solves normally and :meth:`_cache_store` turns that solve into
        the entry's verification.
        """
        misses: List[PendingRequest] = []
        for pending in runnable:
            if pending.fingerprint is not None:
                misses.append(pending)
                continue
            pending.fingerprint = graph_fingerprint(pending.request.graph)
            hit = self._cache.get(pending.fingerprint)
            if hit is not None:
                labels, verified = hit
                if verified:
                    self._resolve_ok(pending, labels, "cache", 1, started)
                    continue
                pending.cache_unverified = True
            misses.append(pending)
        return misses

    def _run_batch(self, runnable: List[PendingRequest],
                   started: float) -> None:
        for pending in runnable:
            pending.attempts += 1
        occupancy = len(runnable)
        self.metrics.record_batch(occupancy)
        key = self._planner.key_for(runnable[0])
        mean_m = sample_mean_m(runnable)
        engine = self._planner.choose_batch_engine(key, occupancy, mean_m)
        batched = (key.kind == "dense" and engine == "batched")
        coalesced = (occupancy > 1 and engine in ("edgelist", "contracting"))
        if batched or coalesced:
            pooled = (self._pool is not None
                      and self._planner.pool_pays(key, occupancy, mean_m))
            try:
                if batched:
                    mats = [as_dense_matrix(p.request.graph)
                            for p in runnable]
                    labels = (self._pool.solve_dense_stack(mats, key.size)
                              if pooled
                              else solve_dense_stack(mats, key.size))
                else:
                    graphs = [p.request.graph for p in runnable]
                    labels = (self._pool.solve_coalesced(graphs, engine)
                              if pooled
                              else solve_coalesced(graphs, engine))
            except Exception as exc:  # noqa: BLE001 -- batch-level fallback
                if isinstance(exc, WorkerDied):
                    self.metrics.record_worker_restart()
                self.metrics.record_error()
                for pending in runnable:
                    self._run_solo(pending, started, batch_error=exc)
                return
            if pooled:
                engine = f"pool:{engine}"
            self._resolve_ok_batch(runnable, labels, engine, started)
            return
        for pending in runnable:
            self._run_solo(pending, started,
                           engine=engine if occupancy == 1 else None)

    def _solo_engine(self, pending: PendingRequest) -> str:
        return choose_engine(
            pending.n, pending.m, batch_size=1, model=self.cost_model
        )

    def _run_solo(
        self,
        pending: PendingRequest,
        started: float,
        engine: Optional[str] = None,
        batch_error: Optional[Exception] = None,
    ) -> None:
        """Execute one request solo, retrying per the configuration.

        ``batch_error`` marks a member that already failed once inside a
        stacked batch: the solo run *is* its retry, so a request only
        gets here with budget left (or resolves ``ERROR`` right away).
        """
        attempts_left = self.config.retries + 1 - (1 if batch_error else 0)
        if batch_error is not None:
            if attempts_left <= 0:
                self._resolve(
                    pending, RequestStatus.ERROR,
                    error=f"batched execution failed: {batch_error}",
                )
                return
            self.metrics.record_retry()
        engine = engine or self._solo_engine(pending)
        use_pool = (
            pending.sparse
            and (self._sparse_pool is not None or self._pool is not None)
            and pending.n + 2 * pending.m >= self.config.sparse_process_units
        )
        last_error: Optional[Exception] = batch_error
        for attempt in range(max(attempts_left, 1)):
            if attempt > 0:
                self.metrics.record_retry()
                pending.attempts += 1
            recorded = engine
            try:
                if use_pool:
                    try:
                        if self._pool is not None:
                            if engine == "parallel":
                                # chunk tasks fan out across every pool
                                # worker, driven from this thread --
                                # not one worker solving alone
                                labels = connected_components_parallel(
                                    as_edge_list(pending.request.graph),
                                    pool=self._pool,
                                ).labels
                                recorded = "pool:parallel"
                            else:
                                labels = self._pool.solve_solo(
                                    pending.request.graph, engine
                                )
                        else:
                            labels = self._sparse_pool.solve(
                                pending.request.graph, engine
                            )
                    except WorkerDied:
                        self.metrics.record_worker_restart()
                        # the pool already retried on a fresh worker
                        # once; any further attempt runs inline
                        use_pool = False
                        raise
                else:
                    labels = solve_solo(pending.request.graph, engine)
            except Exception as exc:  # noqa: BLE001 -- retried, then ERROR
                last_error = exc
                self.metrics.record_error()
                continue
            self._resolve_ok(pending, labels, recorded, 1, started)
            return
        self._resolve(
            pending, RequestStatus.ERROR,
            error=str(last_error) if last_error else "execution failed",
        )


def serve_many(
    graphs: Sequence[GraphLike],
    deadline: Optional[float] = None,
    config: Optional[ServerConfig] = None,
    **overrides,
) -> List[CCResponse]:
    """Serve a whole workload synchronously; responses in input order.

    The convenience front-end for sweeps and the CLI: spins up a
    :class:`Server` (``config`` plus keyword ``overrides``), submits
    every graph, blocks until all resolve, drains and returns the
    :class:`~repro.serve.request.CCResponse` list.

    >>> from repro.graphs.generators import random_graph
    >>> responses = serve_many([random_graph(8, 0.3, seed=s) for s in range(4)])
    >>> [r.status.value for r in responses]
    ['ok', 'ok', 'ok', 'ok']
    """
    with Server(config, **overrides) as server:
        handles = [server.submit(g, deadline=deadline) for g in graphs]
        return [h.response() for h in handles]
