"""Execution backends for the serving layer.

Two tiers, matching where the work is actually bound:

* **In-process (threads).**  The dense batched kernels and the sparse
  engines are NumPy-bound -- they release the GIL inside the array ops
  -- so the server's worker *threads* (a plain
  ``concurrent.futures.ThreadPoolExecutor``) run them directly via
  :func:`solve_dense_stack` / :func:`solve_coalesced` /
  :func:`solve_solo`.  No serialisation, no process boundary.
* **Out-of-process (optional).**  Very large sparse requests spend real
  Python time in the contraction bookkeeping; :class:`SparseProcessPool`
  moves them to worker processes, shipping the edge arrays through the
  zero-copy shared-memory plumbing of :mod:`repro.analysis.shm` (a tiny
  picklable descriptor crosses the pipe, the pages do not) and reading
  the labels back out of a shared result slot.  A worker process that
  dies mid-request (OOM-killed, segfaulted) surfaces as
  :class:`WorkerDied`; the pool replaces itself and the server retries
  the request, so one lost worker costs one retry, not the server.

Dense stacks may be *padded*: a bucket of node count ``S`` can hold
graphs with ``n <= S``, embedded in the top-left corner of a zeroed
``S x S`` adjacency.  The padding vertices are isolated and numbered
``>= n``, so they can never become the minimum representative of a real
component -- slicing the first ``n`` labels recovers exactly the
unpadded result (asserted against the oracle in the tests).
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.shm import (
    SharedArray,
    SharedEdgeListRef,
    attach_edge_list,
    share_edge_list,
)
from repro.core.api import connected_components
from repro.core.batched import BatchedGCA
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    connected_components_edgelist,
)
from repro.serve.request import GraphLike


class WorkerDied(RuntimeError):
    """A process worker died mid-request; the pool has been replaced."""


def as_dense_matrix(graph: GraphLike) -> np.ndarray:
    """The dense 0/1 adjacency array of a dense-tier request."""
    if isinstance(graph, AdjacencyMatrix):
        return graph.matrix
    return AdjacencyMatrix(np.asarray(graph)).matrix


def pad_matrix(matrix: np.ndarray, size: int) -> np.ndarray:
    """Embed ``matrix`` top-left in a zeroed ``size x size`` adjacency."""
    n = matrix.shape[0]
    if n == size:
        return matrix
    if n > size:
        raise ValueError(f"cannot pad n={n} down to {size}")
    padded = np.zeros((size, size), dtype=matrix.dtype)
    padded[:n, :n] = matrix
    return padded


def solve_dense_stack(
    matrices: Sequence[np.ndarray],
    size: int,
    iterations: Optional[int] = None,
) -> List[np.ndarray]:
    """Labels for a same-bucket stack via one :class:`BatchedGCA` run.

    Each input may be any ``n <= size``; it is padded to ``size`` and the
    returned vector is sliced back to its own ``n``.
    """
    stack = np.stack([pad_matrix(m, size) for m in matrices]) if size else (
        np.empty((len(matrices), 0, 0), dtype=np.int8)
    )
    result = BatchedGCA(stack, iterations=iterations).run()
    return [
        result.labels[i, : matrices[i].shape[0]]
        for i in range(len(matrices))
    ]


def solve_solo(graph: GraphLike, engine: str) -> np.ndarray:
    """Labels for one request on one engine, in the calling thread."""
    return connected_components(graph, engine=engine).labels


def as_edge_list(graph: GraphLike) -> EdgeListGraph:
    """The edge-list form of any request graph."""
    if isinstance(graph, EdgeListGraph):
        return graph
    if not isinstance(graph, AdjacencyMatrix):
        graph = AdjacencyMatrix(np.asarray(graph))
    return EdgeListGraph.from_adjacency(graph)


def union_edges(
    lists: Sequence[EdgeListGraph],
    offsets: np.ndarray,
    src_out: Optional[np.ndarray] = None,
    dst_out: Optional[np.ndarray] = None,
):
    """The directed edge arrays of the members' disjoint union.

    ``offsets`` is the node-offset prefix sum (``len(lists) + 1``
    entries).  ``src_out`` / ``dst_out``, when given, receive the arrays
    in place -- the process-pool executor passes shared-memory slabs
    here so the union is built straight into the pages the workers read,
    with no intermediate copy.  Returns ``(src, dst)``.
    """
    # concatenate first, shift once: one repeat + two in-place adds
    # instead of a tiny ufunc dispatch per member
    srcs = [e.src for e in lists]
    dsts = [e.dst for e in lists]
    if src_out is None:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.concatenate(srcs, out=src_out)
        dst = np.concatenate(dsts, out=dst_out)
    edge_counts = np.asarray([e.src.size for e in lists])
    shift = np.repeat(offsets[:-1], edge_counts)
    src += shift
    dst += shift
    return src, dst


def split_union_labels(
    labels: np.ndarray, offsets: np.ndarray, copy: bool = False
) -> List[np.ndarray]:
    """Per-member label vectors from a union solve's label vector.

    Components never cross the union's block boundaries, so the union's
    min-index labels restricted to block ``i`` are exactly graph ``i``'s
    canonical labels shifted by its node offset -- one subtraction
    recovers them.  ``copy=True`` detaches the results from ``labels``'s
    buffer (required when it is a shared-memory slab about to be
    recycled).
    """
    counts = np.diff(offsets)
    # one vectorized shift back to per-graph numbering, then views --
    # per-member arithmetic would cost more than the small unions do
    shifted = labels - np.repeat(offsets[:-1], counts)
    # plain slices; np.split routes through array_split's generic
    # swapaxes path, which costs more than the unions themselves here
    bounds = offsets.tolist()
    out = [shifted[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)]
    return [vec.copy() for vec in out] if copy else out


def solve_coalesced(
    graphs: Sequence[GraphLike], engine: str = "contracting"
) -> List[np.ndarray]:
    """Labels for many graphs via one sparse run on their disjoint union.

    The per-iteration NumPy dispatch of the sparse engine is paid once
    per *batch* instead of once per graph: the sparse-tier counterpart
    of the stacked dense field (see :func:`union_edges` /
    :func:`split_union_labels` for the block-boundary argument).
    """
    lists = [as_edge_list(g) for g in graphs]
    counts = np.asarray([e.n for e in lists])
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    if total == 0:
        return [np.empty(0, dtype=np.int64) for _ in lists]
    src, dst = union_edges(lists, offsets)
    union = EdgeListGraph(n=total, src=src, dst=dst)
    if engine == "edgelist":
        labels = connected_components_edgelist(union).labels
    else:
        labels = connected_components_contracting(union).labels
    return split_union_labels(labels, offsets)


# ----------------------------------------------------------------------
# the shared-memory process tier
# ----------------------------------------------------------------------
def _solve_shared_task(graph_ref: SharedEdgeListRef, slot_ref,
                       engine: str) -> int:
    """Process-worker entry: attach, solve, write labels into the slot.

    Returns the component count as a cheap liveness/consistency token;
    the labels themselves never cross the pipe.
    """
    graph, handles = attach_edge_list(graph_ref)
    slot = SharedArray.attach(slot_ref)
    try:
        labels = connected_components(graph, engine=engine).labels
        slot.array[...] = labels
        return int(np.unique(labels).size)
    finally:
        slot.close()
        for h in handles:
            h.close()


class SparseProcessPool:
    """Process workers for large sparse requests (see module docstring).

    Thread-safe: the server's worker threads call :meth:`solve`
    concurrently; restarts after a death are serialised behind a lock.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.restarts = 0
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=workers)
        )

    def solve(self, graph: EdgeListGraph, engine: str) -> np.ndarray:
        """Solve ``graph`` in a worker process; labels via shared memory.

        Raises :class:`WorkerDied` (after replacing the broken pool) when
        the worker process disappears mid-request.
        """
        with self._lock:
            if self._executor is None:
                raise RuntimeError("SparseProcessPool is shut down")
            executor = self._executor
        workspace, ref = share_edge_list(graph)
        slot = workspace.zeros((graph.n,), np.int64)
        try:
            future = executor.submit(_solve_shared_task, ref, slot.ref, engine)
            try:
                future.result()
            except BrokenProcessPool as exc:
                self._restart(executor)
                raise WorkerDied(
                    f"process worker died solving n={graph.n}, "
                    f"m={graph.edge_count}"
                ) from exc
            return slot.array.copy()
        finally:
            workspace.close()
            workspace.unlink()

    def _restart(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._executor is broken:
                broken.shutdown(wait=False)
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                self.restarts += 1

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
