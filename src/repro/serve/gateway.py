"""The asyncio socket front door of the serving pipeline.

:class:`Gateway` listens on one TCP port and speaks three dialects,
sniffed from the first byte of each connection:

* **binary** (first byte ``R``, the frame magic) -- the zero-copy
  length-prefixed framing of :mod:`repro.serve.protocol`.  Requests may
  be pipelined; responses carry the request id and may interleave.
  Large label vectors stream back in bounded chunks with backpressure
  (``await drain()`` between chunks).
* **JSON lines** (first byte ``{`` or ``[``) -- one request object per
  line, one response object per line, processed sequentially.
* **HTTP** (a method's first byte) -- ``POST /solve`` with the JSON
  request as body, ``GET /metrics`` for the server snapshot,
  ``GET /healthz``; one request per connection.

Everything behind the socket is the existing in-process pipeline: the
gateway builds an :class:`~repro.hirschberg.edgelist.EdgeListGraph`
straight from the frame's endpoint views and calls
``Server.submit_request`` -- which probes the content-addressed
:class:`~repro.serve.cache.ResultCache` *before* admission, so a
duplicate graph arriving over the socket resolves without touching the
planner, the batch executor or the process pool.

The event loop never blocks:

* **Admission** maps onto the server's configured backpressure policy.
  Under ``"shed"`` / ``"fail"`` a full queue resolves or raises
  immediately, and the client gets a typed :data:`STATUS_SHED` error
  frame.  Under ``"block"`` the (blocking) submit runs on the gateway's
  small thread pool, so waiting for queue space parks a pool thread --
  never the loop -- and frames keep being read from other connections.
  Small frames on a non-blocking policy submit inline (the pool hop
  costs more than the submit).
* **Completion** rides :meth:`ResultHandle.add_done_callback`: the
  resolving server thread hands the response back to the loop via
  ``call_soon_threadsafe``, so no thread ever parks in
  ``handle.response()``.
* **Deadlines** in the frame header (or the gateway default) propagate
  into :class:`~repro.serve.request.CCRequest`, so the scheduler's
  deadline-pressure flushes and timeout drops apply to wire traffic
  exactly as to in-process traffic.

Shutdown is drain-first: :meth:`Gateway.aclose` stops accepting, sheds
frames that arrive after the drain began, waits (bounded) for in-flight
wire requests to resolve, then closes connections.  The process-level
wrapper :func:`run_gateway` additionally wires SIGTERM/SIGINT to that
drain followed by ``Server.stop(drain=True, timeout=...)`` -- a signal
never drops an admitted request.  :func:`start_gateway` runs the same
gateway on a background thread for tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve import protocol
from repro.serve.protocol import (
    KIND_PING,
    KIND_SOLVE,
    ProtocolError,
    RequestHeader,
    STATUS_BAD_FRAME,
    STATUS_ERROR,
    STATUS_SHED,
)
from repro.serve.request import (
    CCRequest,
    CCResponse,
    QueueFull,
    RequestStatus,
    ResultHandle,
    ServerClosed,
)
from repro.serve.server import Server

#: Read/drain granularity for rejected payloads (bounded memory).
_DRAIN_CHUNK = 1 << 16

#: A rejected frame whose declared payload exceeds this multiple of the
#: configured ceiling is not drained -- the connection closes instead of
#: reading an unbounded stream just to stay in sync.
_DRAIN_FACTOR = 4

#: asyncio stream limit: bounds one JSON line / HTTP header block.
_STREAM_LIMIT = 8 << 20

#: HTTP method first-bytes for connection sniffing.
_HTTP_FIRST = frozenset(b"GPHDOT")


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs of a :class:`Gateway`.

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (reported by
        :meth:`Gateway.start`).
    max_payload_bytes:
        Ceiling on one frame's declared edge payload; larger
        declarations get a typed OVERSIZED error frame without any
        allocation sized from them.
    chunk_labels:
        Label values per response chunk when streaming a result vector
        (64k labels = 512 KiB per frame by default).
    submit_threads:
        Thread-pool size for graph construction + blocking submits.
    inline_pair_limit:
        Frames at most this many pairs submit inline on the event loop
        (cheaper than a pool hop) -- only when the server's admission
        policy cannot block.
    default_deadline:
        Deadline applied to wire requests that do not carry one
        (``None`` = server default).
    drain_timeout:
        Bound (seconds) on waiting for in-flight wire requests during a
        drain; also the bound :func:`run_gateway` passes to
        ``Server.stop``.
    backlog:
        Listen backlog (sized for thousand-connection open-loop runs).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_payload_bytes: int = protocol.DEFAULT_MAX_PAYLOAD
    chunk_labels: int = 65536
    submit_threads: int = 4
    inline_pair_limit: int = 8192
    default_deadline: Optional[float] = None
    drain_timeout: float = 10.0
    backlog: int = 2048

    def __post_init__(self) -> None:
        if self.max_payload_bytes < protocol.REQUEST_HEADER_SIZE:
            raise ValueError(
                f"max_payload_bytes too small: {self.max_payload_bytes}"
            )
        if self.chunk_labels < 1:
            raise ValueError(
                f"chunk_labels must be >= 1, got {self.chunk_labels}"
            )
        if self.submit_threads < 1:
            raise ValueError(
                f"submit_threads must be >= 1, got {self.submit_threads}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )


class _Connection:
    """Per-connection state: the writer plus a lock serialising response
    writes (pipelined requests complete out of order; each response's
    chunks must not interleave with another's)."""

    __slots__ = ("reader", "writer", "lock")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()


class Gateway:
    """Asyncio TCP gateway in front of a running :class:`Server`.

    The gateway never starts or stops the server it fronts -- lifecycle
    composition belongs to the caller (see :func:`run_gateway` /
    :func:`start_gateway`).  Construct with a started server, ``await
    start()``, and the listener is live.
    """

    def __init__(self, server: Server,
                 config: Optional[GatewayConfig] = None,
                 **overrides: Any):
        if config is None:
            config = GatewayConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.server = server
        self.metrics = server.metrics
        self._listener: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._connections: Set[_Connection] = set()
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._draining = False
        self._address: Optional[Tuple[str, int]] = None
        # inline submission is only safe when admission cannot block
        self._inline_ok = server.config.admission != "block"

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.submit_threads,
            thread_name_prefix="repro-gateway-submit",
        )
        self._listener = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            backlog=self.config.backlog,
            limit=_STREAM_LIMIT,
        )
        sock = self._listener.sockets[0]
        addr = sock.getsockname()
        self._address = (str(addr[0]), int(addr[1]))
        return self._address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; raises before :meth:`start`."""
        if self._address is None:
            raise RuntimeError("gateway not started")
        return self._address

    @property
    def inflight(self) -> int:
        """Wire requests admitted but not yet answered."""
        return self._inflight

    async def aclose(self, drain: bool = True,
                     timeout: Optional[float] = None) -> bool:
        """Stop listening and shut the wire layer down.

        ``drain=True`` sheds frames that arrive from here on but waits
        (bounded by ``timeout``, default the configured
        ``drain_timeout``) for already-admitted wire requests to
        resolve and their responses to flush.  Returns ``False`` when
        the bound elapsed with requests still in flight.
        """
        self._draining = True
        drained = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        if drain and self._idle is not None and self._inflight > 0:
            bound = self.config.drain_timeout if timeout is None else timeout
            try:
                await asyncio.wait_for(self._idle.wait(), bound)
            except asyncio.TimeoutError:
                drained = False
        for conn in list(self._connections):
            conn.writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        return drained

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.record_connection_open()
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        try:
            first = await reader.read(1)
            if first == b"R":
                await self._binary_loop(conn, first)
            elif first in (b"{", b"["):
                await self._json_loop(conn, first)
            elif first and first[0] in _HTTP_FIRST:
                await self._http_exchange(conn, first)
            elif first:
                self.metrics.record_wire_error()
                await self._write_frame(conn, protocol.encode_error(
                    0, STATUS_BAD_FRAME,
                    f"unrecognised first byte 0x{first[0]:02x}",
                ))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # loop teardown cancelled the handler mid-read; finish the
            # task cleanly so the streams machinery logs nothing
            pass
        finally:
            self._connections.discard(conn)
            self.metrics.record_connection_close()
            try:
                writer.close()
            except OSError:  # already torn down
                pass

    async def _binary_loop(self, conn: _Connection, first: bytes) -> None:
        """Read framed requests until EOF; pipelining allowed."""
        reader = conn.reader
        head = first + await reader.readexactly(
            protocol.REQUEST_HEADER_SIZE - 1
        )
        while True:
            try:
                header = protocol.decode_request_header(
                    head, self.config.max_payload_bytes
                )
            except ProtocolError as exc:
                self.metrics.record_wire_error()
                self.metrics.record_wire_in(len(head), frames=0)
                if not await self._reject_frame(conn, head, exc):
                    return
                head = await self._next_header(reader)
                if head is None:
                    return
                continue
            payload = b""
            if header.payload_bytes:
                payload = await reader.readexactly(header.payload_bytes)
            self.metrics.record_wire_in(len(head) + len(payload))
            if header.kind == KIND_PING:
                await self._write_frame(
                    conn, protocol.encode_pong(header.request_id)
                )
            elif self._draining:
                await self._write_frame(conn, protocol.encode_error(
                    header.request_id, STATUS_SHED, "gateway draining",
                ))
            else:
                self._spawn(self._process_solve(conn, header, payload))
            head = await self._next_header(reader)
            if head is None:
                return

    async def _next_header(self,
                           reader: asyncio.StreamReader) -> Optional[bytes]:
        """The next request header, ``None`` on clean EOF."""
        try:
            return await reader.readexactly(protocol.REQUEST_HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:  # torn mid-header: a truncated frame
                self.metrics.record_wire_error()
            return None

    async def _reject_frame(self, conn: _Connection, head: bytes,
                            exc: ProtocolError) -> bool:
        """Answer a rejected header; returns whether the stream survives.

        Recoverable rejections (oversized / unknown dtype / inconsistent
        length) drain the declared payload in bounded chunks so framing
        stays intact; unrecoverable ones (bad magic) close.
        """
        recover = exc.recoverable
        if recover:
            declared = protocol.declared_payload_bytes(head)
            if declared > _DRAIN_FACTOR * self.config.max_payload_bytes:
                recover = False  # not worth reading that much to resync
            else:
                await self._drain_payload(conn.reader, declared)
        await self._write_frame(conn, protocol.encode_error(
            protocol.declared_request_id(head), exc.status, str(exc),
        ))
        return recover

    async def _drain_payload(self, reader: asyncio.StreamReader,
                             declared: int) -> None:
        """Discard ``declared`` payload bytes in bounded chunks."""
        remaining = declared
        while remaining > 0:
            chunk = await reader.read(min(_DRAIN_CHUNK, remaining))
            if not chunk:
                raise asyncio.IncompleteReadError(b"", remaining)
            self.metrics.record_wire_in(len(chunk), frames=0)
            remaining -= len(chunk)

    # -- solve path ----------------------------------------------------
    def _spawn(self, coro: Any) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _build_and_submit(self, header: RequestHeader,
                          payload: bytes) -> ResultHandle:
        """Frame -> graph -> ``Server.submit_request``.

        Runs inline for small frames under non-blocking admission, on
        the gateway thread pool otherwise.  The submit path probes the
        result cache before admission (inside ``submit_request``), so a
        duplicate graph resolves here without entering the queue.
        """
        graph = protocol.graph_from_frame(header, payload)
        deadline = header.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        return self.server.submit_request(CCRequest(
            graph=graph, deadline=deadline,
            request_id=f"wire-{header.request_id}",
        ))

    async def _process_solve(self, conn: _Connection, header: RequestHeader,
                             payload: bytes) -> None:
        assert self._loop is not None and self._idle is not None
        received = self._loop.time()
        self._inflight += 1
        self._idle.clear()
        try:
            rid = header.request_id
            try:
                if self._inline_ok and header.m <= self.config.inline_pair_limit:
                    handle = self._build_and_submit(header, payload)
                else:
                    assert self._pool is not None
                    handle = await self._loop.run_in_executor(
                        self._pool, self._build_and_submit, header, payload
                    )
            except (QueueFull, ServerClosed) as exc:
                await self._write_frame(conn, protocol.encode_error(
                    rid, STATUS_SHED, str(exc)))
                return
            except (ValueError, IndexError) as exc:
                self.metrics.record_wire_error()
                await self._write_frame(conn, protocol.encode_error(
                    rid, STATUS_BAD_FRAME, str(exc)))
                return
            except Exception as exc:  # noqa: BLE001 -- wire must answer
                await self._write_frame(conn, protocol.encode_error(
                    rid, STATUS_ERROR, str(exc)))
                return
            self.metrics.record_admit(self._loop.time() - received)
            response = await self._bridge(handle)
            if response.status is RequestStatus.OK:
                assert response.labels is not None
                await self._write_labels(conn, rid, response.labels)
            else:
                await self._write_frame(conn, protocol.encode_error(
                    rid, protocol.status_of_response(response),
                    response.error or response.status.value,
                ))
        except (ConnectionError, OSError):
            pass  # peer went away; the solve result is simply dropped
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _bridge(self, handle: ResultHandle) -> "asyncio.Future[CCResponse]":
        """The thread-to-loop completion bridge.

        The server's resolving thread fires the done-callback, which
        posts the response onto the loop; nothing blocks anywhere.
        """
        assert self._loop is not None
        loop = self._loop
        future: "asyncio.Future[CCResponse]" = loop.create_future()

        def _deliver(response: CCResponse) -> None:
            if not future.done():
                future.set_result(response)

        def _from_thread(response: CCResponse) -> None:
            try:
                loop.call_soon_threadsafe(_deliver, response)
            except RuntimeError:  # loop already closed (shutdown race)
                pass

        handle.add_done_callback(_from_thread)
        return future

    # -- response writing ----------------------------------------------
    async def _write_frame(self, conn: _Connection, frame: bytes) -> None:
        # counted before the drain: by the time the peer can observe
        # the bytes, the snapshot already reflects them
        self.metrics.record_wire_out(len(frame))
        async with conn.lock:
            conn.writer.write(frame)
            await conn.writer.drain()

    async def _write_labels(self, conn: _Connection, request_id: int,
                            labels: np.ndarray) -> None:
        """Stream a label vector as bounded chunks under backpressure."""
        chunks = protocol.iter_label_chunks(
            request_id, labels, self.config.chunk_labels
        )
        async with conn.lock:
            for head, payload in chunks:
                self.metrics.record_wire_out(
                    len(head) + len(payload))
                conn.writer.write(head)
                if len(payload):
                    conn.writer.write(payload)
                await conn.writer.drain()

    # -- JSON line dialect ---------------------------------------------
    async def _json_loop(self, conn: _Connection, first: bytes) -> None:
        reader = conn.reader
        line = first + await reader.readline()
        while line.strip():
            await self._process_json(conn, line)
            line = await reader.readline()

    async def _process_json(self, conn: _Connection, line: bytes) -> None:
        """One JSON request -> one JSON response line (sequential)."""
        assert self._loop is not None and self._idle is not None
        self.metrics.record_wire_in(len(line))
        received = self._loop.time()
        try:
            fields = protocol.decode_json_request(line)
        except ProtocolError as exc:
            self.metrics.record_wire_error()
            await self._write_json(conn, protocol.encode_json_response(
                None, error=str(exc), status="bad_frame"))
            return
        if self._draining:
            await self._write_json(conn, protocol.encode_json_response(
                fields["id"], error="gateway draining", status="shed"))
            return
        self._inflight += 1
        self._idle.clear()
        try:
            def _submit() -> ResultHandle:
                graph = EdgeListGraph.from_arrays(
                    fields["n"], fields["u"], fields["v"]
                )
                deadline = fields["deadline"]
                if deadline is None:
                    deadline = self.config.default_deadline
                return self.server.submit_request(
                    CCRequest(graph=graph, deadline=deadline)
                )

            try:
                assert self._pool is not None
                handle = await self._loop.run_in_executor(self._pool, _submit)
            except (QueueFull, ServerClosed) as exc:
                await self._write_json(conn, protocol.encode_json_response(
                    fields["id"], error=str(exc), status="shed"))
                return
            except (ValueError, IndexError) as exc:
                self.metrics.record_wire_error()
                await self._write_json(conn, protocol.encode_json_response(
                    fields["id"], error=str(exc), status="bad_frame"))
                return
            self.metrics.record_admit(self._loop.time() - received)
            response = await self._bridge(handle)
            await self._write_json(conn, protocol.encode_json_response(
                fields["id"], response))
        except (ConnectionError, OSError):
            pass
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _write_json(self, conn: _Connection, line: bytes) -> None:
        async with conn.lock:
            conn.writer.write(line)
            await conn.writer.drain()
        self.metrics.record_wire_out(len(line))

    # -- HTTP convenience dialect --------------------------------------
    async def _http_exchange(self, conn: _Connection, first: bytes) -> None:
        """One HTTP request per connection (``Connection: close``)."""
        reader = conn.reader
        try:
            raw = first + await reader.readuntil(b"\r\n\r\n")
        except (asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            self.metrics.record_wire_error()
            return
        self.metrics.record_wire_in(len(raw), frames=0)
        head = raw.decode("latin-1", errors="replace")
        request_line, _, header_block = head.partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            await self._write_http(conn, 400, {"error": "malformed request"})
            return
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for raw_line in header_block.split("\r\n"):
            name, sep, value = raw_line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if method == "GET" and path == "/metrics":
            await self._write_http(conn, 200, self.server.metrics_snapshot())
        elif method == "GET" and path == "/healthz":
            state = "draining" if self._draining else "ok"
            await self._write_http(conn, 200, {"status": state})
        elif method == "POST" and path == "/solve":
            await self._http_solve(conn, reader, headers)
        else:
            await self._write_http(
                conn, 404, {"error": f"no route {method} {path}"}
            )

    async def _http_solve(self, conn: _Connection,
                          reader: asyncio.StreamReader,
                          headers: Dict[str, str]) -> None:
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            await self._write_http(
                conn, 411, {"error": "Content-Length required"})
            return
        if length > self.config.max_payload_bytes:
            self.metrics.record_wire_error()
            await self._write_http(conn, 413, {
                "error": f"body of {length} bytes exceeds the "
                         f"{self.config.max_payload_bytes}-byte ceiling"})
            return
        body = await reader.readexactly(length)
        self.metrics.record_wire_in(len(body))
        status = 200
        try:
            fields = protocol.decode_json_request(body)
        except ProtocolError as exc:
            self.metrics.record_wire_error()
            await self._write_http(conn, 400, {"error": str(exc)})
            return
        if self._draining:
            await self._write_http(
                conn, 503, {"status": "shed", "error": "gateway draining"})
            return
        assert self._loop is not None and self._idle is not None
        self._inflight += 1
        self._idle.clear()
        try:
            def _submit() -> ResultHandle:
                graph = EdgeListGraph.from_arrays(
                    fields["n"], fields["u"], fields["v"]
                )
                deadline = fields["deadline"]
                if deadline is None:
                    deadline = self.config.default_deadline
                return self.server.submit_request(
                    CCRequest(graph=graph, deadline=deadline)
                )

            try:
                assert self._pool is not None
                handle = await self._loop.run_in_executor(self._pool, _submit)
            except (QueueFull, ServerClosed) as exc:
                await self._write_http(
                    conn, 503, {"status": "shed", "error": str(exc)})
                return
            except (ValueError, IndexError) as exc:
                self.metrics.record_wire_error()
                await self._write_http(
                    conn, 400, {"status": "bad_frame", "error": str(exc)})
                return
            response = await self._bridge(handle)
            doc = json.loads(protocol.encode_json_response(
                fields["id"], response))
            if response.status is not RequestStatus.OK:
                status = 504 if response.status is RequestStatus.TIMEOUT \
                    else 503
            await self._write_http(conn, status, doc)
        except (ConnectionError, OSError):
            pass
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _write_http(self, conn: _Connection, status: int,
                          doc: Dict[str, Any]) -> None:
        body = (json.dumps(doc, separators=(",", ":")) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  411: "Length Required", 413: "Payload Too Large",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        async with conn.lock:
            conn.writer.write(head + body)
            await conn.writer.drain()
        self.metrics.record_wire_out(len(head) + len(body))


# ----------------------------------------------------------------------
# process-level runners
# ----------------------------------------------------------------------

def run_gateway(
    server: Server,
    config: Optional[GatewayConfig] = None,
    handle_signals: bool = True,
    ready: Optional["threading.Event"] = None,
    announce: Optional[Any] = None,
    **overrides: Any,
) -> bool:
    """Run a gateway in the foreground until SIGTERM/SIGINT.

    The ``serve --listen`` CLI path.  On a signal the shutdown is
    drain-first and bounded: the listener closes, frames arriving after
    the signal are shed with a typed error frame, in-flight wire
    requests get up to ``drain_timeout`` seconds to resolve, and then
    ``Server.stop(drain=True, timeout=drain_timeout)`` flushes whatever
    the signal found already admitted -- a signal never drops admitted
    requests.  Returns whether the drain completed inside its bounds.

    ``announce(host, port)`` is called once the listener is live;
    ``ready`` (if given) is set at the same moment.
    """
    if config is None:
        config = GatewayConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)

    async def _main() -> bool:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        gateway = Gateway(server, config)
        host, port = await gateway.start()
        if announce is not None:
            announce(host, port)
        if ready is not None:
            ready.set()
        installed = []
        if handle_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    def _request_stop(*_: object) -> None:
                        try:
                            loop.call_soon_threadsafe(stop.set)
                        except RuntimeError:
                            pass  # loop already closed by a racing stop
                    signal.signal(signum, _request_stop)
        try:
            await stop.wait()
            wire_drained = await gateway.aclose(drain=True)
            server_drained = await loop.run_in_executor(
                None, lambda: server.stop(
                    drain=True, timeout=config.drain_timeout
                )
            )
            return wire_drained and server_drained
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    return asyncio.run(_main())


class GatewayHandle:
    """A gateway running on a background thread with its own loop.

    The embedding used by tests, benchmarks and ``serve-bench
    --listen``: the caller keeps driving the (thread-safe)
    :class:`Server` API while the gateway serves sockets beside it.
    """

    def __init__(self, server: Server,
                 config: Optional[GatewayConfig] = None,
                 **overrides: Any):
        if config is None:
            config = GatewayConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.server = server
        self.gateway: Optional[Gateway] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._drain = True
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )

    def start(self) -> "GatewayHandle":
        # idempotent so ``with start_gateway(...)`` (already started)
        # doesn't trip the one-shot thread
        if not self._thread.is_alive() and not self._ready.is_set():
            self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise RuntimeError(
                f"gateway failed to start: {self._error}"
            ) from self._error
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("gateway not started")
        return self._address

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally) and stop the gateway thread.

        Does **not** stop the fronted server -- the caller owns it.
        """
        if not self._thread.is_alive():
            return
        self._drain = drain
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "GatewayHandle":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 -- surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        gateway = Gateway(self.server, self.config)
        try:
            self._address = await gateway.start()
        except BaseException as exc:  # noqa: BLE001 -- surfaced via start()
            self._error = exc
            self._ready.set()
            return
        self.gateway = gateway
        self._ready.set()
        await self._stop.wait()
        await gateway.aclose(drain=self._drain)


def start_gateway(server: Server,
                  config: Optional[GatewayConfig] = None,
                  **overrides: Any) -> GatewayHandle:
    """Start a :class:`GatewayHandle` fronting ``server``; returns it
    listening (``handle.address`` is live)."""
    return GatewayHandle(server, config, **overrides).start()
