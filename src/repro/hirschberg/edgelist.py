"""Work-efficient edge-list variant of Hirschberg's algorithm.

The paper's field works on the dense adjacency matrix -- ``Theta(n^2)``
cells, the regime where Hirschberg's algorithm is work-optimal.  For
*sparse* graphs a modern library user wants the same iteration structure
at ``O((n + m) log n)`` work.  This module provides exactly that: the six
steps re-expressed over an edge list with ``numpy.minimum.at`` scatter
reductions instead of row-wise matrix minima.

Semantically it is the same algorithm -- identical iteration structure,
identical per-iteration labellings (asserted against the reference in the
tests) -- so it also documents that the paper's mapping decisions
(the ``n^2`` temporaries, the tree reductions) are an artefact of the
*dense* target architecture, not of the algorithm.

Scales comfortably to hundreds of thousands of nodes; see
``benchmarks/bench_edgelist_scaling.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import jump_iterations, outer_iterations
from repro.util.validation import check_positive

GraphLike = Union[AdjacencyMatrix, np.ndarray]

#: Largest ``n`` for which an (u, v) pair can be packed into one int64.
#: The exact overflow boundary for the worst packed key ``n * n + n - 1``
#: (the scatter-argmin sentinel) is ``floor(sqrt(2**63)) - 1 =
#: 3_037_000_498``; the limit sits deliberately below it so every packed
#: form in this package (``u * n + v`` with ``u, v < n``, and the argmin
#: sentinel) stays inside int64 with margin, including at the
#: ``n = 2**31`` boundary (which packs fine: ``2**62 < 2**63``).  Beyond
#: the limit the constructors fall back to lexsort; code paths with no
#: fallback raise a clear ``ValueError`` instead of wrapping silently.
_PACK_LIMIT = 3_000_000_000


def _canonical_pairs(
    n: int, lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted, duplicate-free ``(lo, hi)`` pairs with ``lo < hi``."""
    if lo.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if n <= _PACK_LIMIT:
        key = np.unique(lo * np.int64(n) + hi)
        return key // n, key % n
    order = np.lexsort((hi, lo))
    lo, hi = lo[order], hi[order]
    keep = np.ones(lo.size, dtype=bool)
    keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    return lo[keep], hi[keep]


@dataclass(frozen=True)
class EdgeListGraph:
    """A graph as directed edge arrays (both directions present).

    Attributes
    ----------
    n:
        Node count.
    src, dst:
        Arrays of equal length; every undirected edge ``{u, v}`` appears
        as both ``(u, v)`` and ``(v, u)`` so per-node reductions see all
        neighbours.  The constructors normalise their input: self-loops
        are dropped and parallel edges deduplicated, so ``src.size`` is
        exactly twice the number of distinct undirected edges.
    """

    n: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def edge_count(self) -> int:
        """Number of *undirected* edges."""
        return int(self.src.size) // 2

    @staticmethod
    def from_arrays(
        n: int, u: np.ndarray, v: np.ndarray, assume_canonical: bool = False
    ) -> "EdgeListGraph":
        """Build from parallel endpoint arrays (vectorised).

        Self-loops are dropped and parallel edges (including an edge given
        in both orientations) are deduplicated.  ``assume_canonical=True``
        skips the normalisation for callers that already hold sorted,
        duplicate-free ``u < v`` pairs.
        """
        check_positive("n", n)
        u = np.ascontiguousarray(u, dtype=np.int64).ravel()
        v = np.ascontiguousarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValueError(
                f"endpoint arrays differ in length: {u.size} vs {v.size}"
            )
        if u.size:
            low = min(int(u.min()), int(v.min()))
            high = max(int(u.max()), int(v.max()))
            if low < 0 or high >= n:
                raise IndexError(
                    f"edge endpoint out of range for n={n}: "
                    f"saw values in [{low}, {high}]"
                )
        if not assume_canonical:
            keep = u != v  # drop self-loops up front
            lo = np.minimum(u[keep], v[keep])
            hi = np.maximum(u[keep], v[keep])
            u, v = _canonical_pairs(n, lo, hi)
        if u.size:
            src = np.concatenate([u, v])
            dst = np.concatenate([v, u])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        graph = EdgeListGraph(n=n, src=src, dst=dst)
        # the first half of (src, dst) is now the sorted duplicate-free
        # u < v pair set; stamp that so content hashing can trust it
        # without re-verifying (the stamp travels only through the
        # constructors -- direct dataclass construction never has it)
        object.__setattr__(graph, "_canonical", True)
        return graph

    @staticmethod
    def from_edges(
        n: int, edges: Iterable[Tuple[int, int]]
    ) -> "EdgeListGraph":
        """Build from an iterable of undirected ``(u, v)`` pairs.

        Self-loops are dropped and parallel edges deduplicated (an
        undirected edge listed as both ``(u, v)`` and ``(v, u)`` counts
        once).
        """
        check_positive("n", n)
        pairs = [(int(u), int(v)) for u, v in edges]
        if not pairs:
            return EdgeListGraph.from_arrays(
                n, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        arr = np.asarray(pairs, dtype=np.int64)
        return EdgeListGraph.from_arrays(n, arr[:, 0], arr[:, 1])

    @staticmethod
    def from_adjacency(graph: GraphLike) -> "EdgeListGraph":
        """Convert a dense adjacency graph."""
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        rows, cols = np.nonzero(g.matrix)
        return EdgeListGraph(
            n=g.n, src=rows.astype(np.int64), dst=cols.astype(np.int64)
        )


@dataclass
class EdgeListResult:
    """Outcome of an edge-list run."""

    labels: np.ndarray
    iterations: int

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


def _scatter_min(target: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
    """``target[index] = min(target[index], values)`` elementwise groups."""
    if index.size:
        np.minimum.at(target, index, values)


def _one_iteration(
    graph: EdgeListGraph, C: np.ndarray, jumps: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Steps 2-6 over the edge list.  Returns ``(new C, step-3 T)``."""
    n = graph.n
    sentinel = np.int64(n)  # one past any node id: the edge-list infinity

    # step 2: T(u) = min{ C(v) : (u,v) edge, C(v) != C(u) } else C(u)
    T = np.full(n, sentinel, dtype=np.int64)
    cu, cv = C[graph.src], C[graph.dst]
    foreign = cu != cv
    _scatter_min(T, graph.src[foreign], cv[foreign])
    T = np.where(T == sentinel, C, T)

    # step 3: T'(i) = min{ T(j) : C(j) = i, T(j) != i } else C(i)
    T3 = np.full(n, sentinel, dtype=np.int64)
    nontrivial = T != C          # T(j) != C(j) implies T(j) != i for i=C(j)
    _scatter_min(T3, C[nontrivial], T[nontrivial])
    T3 = np.where(T3 == sentinel, C, T3)

    # step 4: hook
    C = T3.copy()
    # step 5: pointer jumping
    for _ in range(jumps):
        C = C[C]
    # step 6: resolve mutual pairs
    C = np.minimum(C, T3[C])
    return C, T3


def connected_components_edgelist(
    graph: Union[EdgeListGraph, GraphLike],
    iterations: Optional[int] = None,
) -> EdgeListResult:
    """Canonical component labels over an edge list.

    Accepts an :class:`EdgeListGraph` or any dense graph (converted).
    """
    g = (
        graph
        if isinstance(graph, EdgeListGraph)
        else EdgeListGraph.from_adjacency(graph)
    )
    n = g.n
    total = outer_iterations(n) if iterations is None else iterations
    if total < 0:
        raise ValueError(f"iterations must be >= 0, got {total}")
    jumps = jump_iterations(n)
    C = np.arange(n, dtype=np.int64)
    for _ in range(total):
        C, _T = _one_iteration(g, C, jumps)
    return EdgeListResult(labels=C, iterations=total)


def random_edge_list(
    n: int, m: int, seed: Union[None, int, np.random.Generator] = None
) -> EdgeListGraph:
    """A random multigraph-free edge list with ~``m`` undirected edges --
    the workload generator for the large-scale bench (sampling pairs
    directly instead of materialising an n x n matrix)."""
    from repro.util.rng import as_generator

    check_positive("n", n)
    if n < 2 or m <= 0:
        return EdgeListGraph.from_edges(n, [])
    rng = as_generator(seed)
    u = rng.integers(0, n, size=2 * m)
    v = rng.integers(0, n, size=2 * m)
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    lo, hi = _canonical_pairs(n, lo, hi)
    return EdgeListGraph.from_arrays(n, lo[:m], hi[:m], assume_canonical=True)


# ----------------------------------------------------------------------
# spanning forest at edge-list scale
# ----------------------------------------------------------------------

def _scatter_argmin(
    n: int, index: np.ndarray, values: np.ndarray, witnesses: np.ndarray,
    sentinel_value: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grouped ``(min value, witness of a minimal entry)`` via packing.

    Packs ``value * n + witness`` (both < n) so one ``minimum.at`` yields
    the minimum value together with the smallest witness attaining it --
    the scatter-reduction form of the dense variant's argmin.
    """
    if n > _PACK_LIMIT:
        # the packed sentinel is n * n + n - 1; past the limit it (and
        # packed keys near it) would wrap int64 and corrupt the argmin
        raise ValueError(
            f"packed scatter-argmin supports at most n = {_PACK_LIMIT:,} "
            f"nodes (int64 packing); got n = {n:,}"
        )
    packed_sentinel = sentinel_value * n + (n - 1)
    packed = np.full(n, packed_sentinel, dtype=np.int64)
    if index.size:
        np.minimum.at(packed, index, values * n + witnesses)
    best_value = packed // n
    best_witness = packed % n
    return best_value, best_witness


def spanning_forest_edgelist(
    graph: Union[EdgeListGraph, GraphLike],
    iterations: Optional[int] = None,
) -> Tuple[np.ndarray, list]:
    """Spanning forest over an edge list: ``(labels, forest_edges)``.

    The same hook-witness extraction as
    :func:`repro.extensions.spanning_forest.spanning_forest`, expressed
    with packed scatter-argmin reductions so it scales with the edge
    count.  The forest is acyclic, spans every component, and uses only
    graph edges (oracle-verified in the tests up to 10^5 nodes).
    """
    g = (
        graph
        if isinstance(graph, EdgeListGraph)
        else EdgeListGraph.from_adjacency(graph)
    )
    n = g.n
    if n > _PACK_LIMIT:
        # fail clearly *before* the O(n) allocations below: the packed
        # argmin reductions would silently wrap int64 past this point
        raise ValueError(
            f"spanning_forest_edgelist packs (value, witness) pairs into "
            f"int64 and supports at most n = {_PACK_LIMIT:,} nodes; got "
            f"n = {n:,}"
        )
    total = outer_iterations(n) if iterations is None else iterations
    if total < 0:
        raise ValueError(f"iterations must be >= 0, got {total}")
    jumps = jump_iterations(n)
    sentinel = np.int64(n)
    C = np.arange(n, dtype=np.int64)
    forest: list = []

    for _ in range(total):
        # step 2 with witnesses: T[u] = min foreign C[v]; W[u] = that v
        cu, cv = C[g.src], C[g.dst]
        foreign = cu != cv
        T, W = _scatter_argmin(
            n, g.src[foreign], cv[foreign], g.dst[foreign], int(sentinel)
        )
        had_candidate = T != sentinel
        T = np.where(had_candidate, T, C)

        # step 3 with witnesses: per super node s, the member j whose T won
        nontrivial = (T != C) & had_candidate
        members = np.flatnonzero(nontrivial)
        T3, J = _scatter_argmin(
            n, C[members], T[members], members, int(sentinel)
        )
        hooked = T3 != sentinel
        T3 = np.where(hooked, T3, C)

        # collect hook edges (drop the larger side of mutual pairs)
        supernodes = np.flatnonzero((C == np.arange(n)) & hooked)
        for s in supernodes.tolist():
            target = int(T3[s])
            if int(T3[target]) == s and C[target] == target and target < s:
                continue
            j = int(J[s])
            w = int(W[j])
            forest.append((min(j, w), max(j, w)))

        # steps 4-6
        C = T3.copy()
        for _j in range(jumps):
            C = C[C]
        C = np.minimum(C, T3[C])

    return C, forest
