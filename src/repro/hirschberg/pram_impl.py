"""Hirschberg's algorithm executed on the PRAM simulator.

The paper notes that although Hirschberg's algorithm is usually stated for
a CREW PRAM, "only a CROW PRAM is really needed".  This module runs
Listing 1 on :class:`repro.pram.machine.PRAM` under a *selectable* access
mode, with an ownership assignment under which every write is owner-only:

* ``C[i]`` and ``T[i]`` are owned by (virtual) processor ``i``;
* the ``n^2`` reduction temporaries ``TMP[i*n + j]`` ("In order to compute
  the min function in steps 2 and 3 in parallel n^2 temporary variables
  have to be reserved") are owned by processor ``i*n + j``.

Running under ``AccessMode.CROW`` therefore succeeds -- which *is* the
paper's claim, dynamically checked -- while the same program under
``AccessMode.EREW`` raises a read conflict (steps 2/5/6 read ``C``
concurrently).

The min computations use exactly the tree reduction the GCA mapping uses
(``log n`` strided halving steps), so the PRAM step count is structurally
comparable to the GCA generation count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.pram.machine import PRAM, StepContext
from repro.pram.memory import AccessMode, SharedMemory
from repro.util.intmath import (
    jump_iterations,
    outer_iterations,
    reduction_subgenerations,
)
from repro.util.sentinels import infinity_for

GraphLike = Union[AdjacencyMatrix, np.ndarray]


@dataclass
class PRAMRunResult:
    """Outcome of a PRAM execution of Hirschberg's algorithm."""

    labels: np.ndarray
    machine: PRAM

    @property
    def parallel_steps(self) -> int:
        """Synchronous steps executed."""
        return self.machine.cost.steps

    @property
    def time(self) -> int:
        """Brent-adjusted parallel time."""
        return self.machine.cost.time

    @property
    def work(self) -> int:
        """Total operations (active virtual processors summed over steps)."""
        return self.machine.cost.work

    @property
    def peak_read_congestion(self) -> int:
        """Maximum concurrent reads of one shared location in any step."""
        return max(
            (s.max_read_congestion for s in self.machine.step_stats), default=0
        )


def hirschberg_on_pram(
    graph: GraphLike,
    processors: Optional[int] = None,
    mode: AccessMode = AccessMode.CROW,
    iterations: Optional[int] = None,
) -> PRAMRunResult:
    """Run Listing 1 on a PRAM.

    Parameters
    ----------
    graph:
        Undirected input graph with ``n`` nodes.
    processors:
        Physical processor count ``p`` (default ``n^2``, the maximum
        parallelism any step requests; fewer processors engage the Brent
        scheduling in the time accounting).
    mode:
        Shared-memory discipline to enforce.  The program is correct under
        CREW, CROW and CRCW; EREW raises ``ReadConflictError``.
    iterations:
        Outer iterations (default ``ceil(log2 n)``).
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    inf = infinity_for(n)
    total_iters = outer_iterations(n) if iterations is None else iterations
    jumps = jump_iterations(n)
    subgens = reduction_subgenerations(n)
    p = processors if processors is not None else max(1, n * n)

    memory = SharedMemory(mode=mode)
    # Ownership: processor i owns C[i]/T[i]; processor i*n+j owns TMP[i*n+j].
    memory.allocate("A", n * n, initial=g.matrix.ravel())
    memory.allocate("C", n, owners=np.arange(n))
    memory.allocate("T", n, owners=np.arange(n))
    memory.allocate("TMP", n * n, owners=np.arange(n * n))
    machine = PRAM(processors=p, memory=memory)

    # ----- step 1: C(i) <- i ------------------------------------------------
    def init(ctx: StepContext) -> None:
        ctx.write("C", ctx.pid, ctx.pid)

    machine.parallel_step(range(n), init, label="step1")

    for _ in range(total_iters):
        # ----- step 2: candidates TMP[i,j] = C(j) if A(i,j) & foreign ------
        def fill_step2(ctx: StepContext) -> None:
            i, j = divmod(ctx.pid, n)
            a = ctx.read("A", i * n + j)
            cj = ctx.read("C", j)
            ci = ctx.read("C", i)
            ctx.write("TMP", ctx.pid, cj if (a == 1 and cj != ci) else inf)

        machine.parallel_step(range(n * n), fill_step2, label="step2.fill")
        _reduce_rows(machine, n, subgens, label="step2")

        def finish_step2(ctx: StepContext) -> None:
            best = ctx.read("TMP", ctx.pid * n)
            ci = ctx.read("C", ctx.pid)
            ctx.write("T", ctx.pid, ci if best == inf else best)

        machine.parallel_step(range(n), finish_step2, label="step2.finish")

        # ----- step 3: supernode gathers members' candidates ---------------
        def fill_step3(ctx: StepContext) -> None:
            i, j = divmod(ctx.pid, n)
            cj = ctx.read("C", j)
            tj = ctx.read("T", j)
            ctx.write("TMP", ctx.pid, tj if (cj == i and tj != i) else inf)

        machine.parallel_step(range(n * n), fill_step3, label="step3.fill")
        _reduce_rows(machine, n, subgens, label="step3")

        def finish_step3(ctx: StepContext) -> None:
            best = ctx.read("TMP", ctx.pid * n)
            ci = ctx.read("C", ctx.pid)
            ctx.write("T", ctx.pid, ci if best == inf else best)

        machine.parallel_step(range(n), finish_step3, label="step3.finish")

        # ----- step 4: C <- T ----------------------------------------------
        def adopt(ctx: StepContext) -> None:
            ctx.write("C", ctx.pid, ctx.read("T", ctx.pid))

        machine.parallel_step(range(n), adopt, label="step4")

        # ----- step 5: pointer jumping C(i) <- C(C(i)) ----------------------
        def jump(ctx: StepContext) -> None:
            ci = ctx.read("C", ctx.pid)
            ctx.write("C", ctx.pid, ctx.read("C", ci))

        for _j in range(jumps):
            machine.parallel_step(range(n), jump, label="step5")

        # ----- step 6: C(i) <- min(C(i), T(C(i))) ---------------------------
        def resolve(ctx: StepContext) -> None:
            ci = ctx.read("C", ctx.pid)
            tci = ctx.read("T", ci)
            ctx.write("C", ctx.pid, min(ci, tci))

        machine.parallel_step(range(n), resolve, label="step6")

    labels = memory.array("C").copy()
    return PRAMRunResult(labels=labels, machine=machine)


def _reduce_rows(machine: PRAM, n: int, subgens: int, label: str) -> None:
    """Tree-reduce each TMP row to its minimum in ``TMP[i*n]``.

    Sub-step ``s`` activates processors at positions ``j`` aligned to
    ``2^(s+1)`` whose partner ``j + 2^s`` is inside the row -- exactly the
    GCA's generation-3 access pattern, and owner-write compliant because
    each active processor writes only its own temporary.
    """
    for s in range(subgens):
        stride = 1 << s
        active = [
            i * n + j
            for i in range(n)
            for j in range(0, n, stride * 2)
            if j + stride < n
        ]

        def reduce_pair(ctx: StepContext, _stride: int = stride) -> None:
            own = ctx.read("TMP", ctx.pid)
            partner = ctx.read("TMP", ctx.pid + _stride)
            if partner < own:
                ctx.write("TMP", ctx.pid, partner)

        machine.parallel_step(active, reduce_pair, label=f"{label}.reduce{s}")
