"""Min-hooking connected components on a CRCW PRAM (FastSV-style).

The paper stresses that Hirschberg's algorithm needs only a CROW PRAM --
no write conflicts at all.  The classical *alternative* line of parallel
CC algorithms (Shiloach-Vishkin 1982 and its modern descendant FastSV)
instead embraces **concurrent writes with MIN combining**: every edge
tries to hook its endpoints' trees onto the smaller label, conflicting
writes are resolved by taking the minimum, and pointer shortcutting keeps
the trees flat.

This module implements that scheme twice:

* :func:`fastsv_reference` -- vectorised NumPy (``np.minimum.at`` is
  exactly a MIN-combining concurrent write);
* :func:`fastsv_on_pram` -- on the :class:`~repro.pram.machine.PRAM`
  under ``AccessMode.CRCW`` / ``CombinePolicy.MIN``, which *dynamically
  requires* the combining semantics: the same program under CREW raises
  ``WriteConflictError`` on the first contested hook (asserted in the
  tests).

Together with Listing 1 under CROW this completes the access-mode story:
one classical CC algorithm per discipline, both checked by the machinery
rather than by assertion in prose.

The iteration structure per round (on parent vector ``f``):

1. *hooking*: for every edge ``(u, v)``: ``f[f[u]] <- min(f[f[u]], f[v])``
   and symmetrically -- grandparent hooking onto the neighbour's parent;
2. *self-hooking*: ``f[u] <- min(f[u], f[v])`` for every edge;
3. *shortcutting*: ``f[i] <- f[f[i]]`` for all ``i``;

repeated until ``f`` reaches a fixpoint.  ``f`` is non-increasing and
bounded, so termination is guaranteed; convergence is logarithmic in
practice (asserted loosely in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.pram.machine import PRAM, StepContext
from repro.pram.memory import AccessMode, CombinePolicy, SharedMemory

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _edge_arrays(graph: GraphLike) -> Tuple[int, np.ndarray, np.ndarray]:
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    rows, cols = np.nonzero(np.triu(g.matrix, k=1))
    return g.n, rows.astype(np.int64), cols.astype(np.int64)


@dataclass
class FastSVResult:
    """Outcome of a min-hooking run."""

    labels: np.ndarray
    rounds: int

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


def fastsv_reference(graph: GraphLike, max_rounds: int = None) -> FastSVResult:
    """Vectorised min-hooking CC; ``np.minimum.at`` plays the CRCW-MIN
    memory."""
    n, u, v = _edge_arrays(graph)
    f = np.arange(n, dtype=np.int64)
    limit = max_rounds if max_rounds is not None else max(1, n)
    rounds = 0
    for _ in range(limit):
        old = f.copy()
        # 1. grandparent hooking (both directions), MIN-combined
        np.minimum.at(f, f[u], f[v])
        np.minimum.at(f, f[v], f[u])
        # 2. self-hooking
        np.minimum.at(f, u, f[v])
        np.minimum.at(f, v, f[u])
        # 3. shortcutting
        f = f[f]
        rounds += 1
        if np.array_equal(f, old):
            break
    return FastSVResult(labels=f, rounds=rounds)


def fastsv_on_pram(
    graph: GraphLike,
    mode: AccessMode = AccessMode.CRCW,
    max_rounds: int = None,
) -> FastSVResult:
    """Min-hooking CC on the access-checked PRAM.

    Requires ``AccessMode.CRCW`` (with the memory's MIN combining): under
    CREW/CROW the contested hooks raise write conflicts -- which is the
    point: this family of algorithms genuinely *needs* concurrent writes.
    """
    n, u_arr, v_arr = _edge_arrays(graph)
    edges = list(zip(u_arr.tolist(), v_arr.tolist()))
    memory = SharedMemory(mode=mode, combine=CombinePolicy.MIN)
    memory.allocate("F", n, initial=np.arange(n))
    machine = PRAM(processors=max(1, n), memory=memory)
    limit = max_rounds if max_rounds is not None else max(1, n)

    rounds = 0
    for _ in range(limit):
        before = memory.array("F").copy()

        if edges:
            def hook(ctx: StepContext) -> None:
                u, v = edges[ctx.pid]
                fu = ctx.read("F", u)
                fv = ctx.read("F", v)
                ffu = ctx.read("F", fu)
                ffv = ctx.read("F", fv)
                # grandparent hooking, MIN-combined across processors
                if fv < ffu:
                    ctx.write("F", fu, fv)
                if fu < ffv:
                    ctx.write("F", fv, fu)

            machine.parallel_step(range(len(edges)), hook, label="hook")

            def self_hook(ctx: StepContext) -> None:
                u, v = edges[ctx.pid]
                fu = ctx.read("F", u)
                fv = ctx.read("F", v)
                if fv < fu:
                    ctx.write("F", u, fv)
                if fu < fv:
                    ctx.write("F", v, fu)

            machine.parallel_step(range(len(edges)), self_hook, label="selfhook")

        def shortcut(ctx: StepContext) -> None:
            fi = ctx.read("F", ctx.pid)
            ctx.write("F", ctx.pid, ctx.read("F", fi))

        machine.parallel_step(range(n), shortcut, label="shortcut")

        rounds += 1
        if np.array_equal(memory.array("F"), before):
            break
    return FastSVResult(labels=memory.array("F").copy(), rounds=rounds)
