"""Chunk-parallel connected components over the shm worker pool.

The engine behind ``engine="parallel"``: the Liu--Tarjan / FastSV
label-propagation family (:mod:`repro.core.parallel_kernels`) driven as
synchronous rounds whose two phases fan out across the pre-forked
shared-memory workers of :class:`repro.serve.executor.PoolExecutor`:

1. **hook** -- the directed edge array is split into ``chunks`` balanced
   ranges; each worker scatter-MINs its range's label proposals into a
   *private* per-chunk slab (sentinel-initialised, so a retry after a
   worker death just recomputes it);
2. **combine** -- the parent folds the partial slabs into the shared
   front labels with a log-step pairwise-minimum tree (the sharded
   engine's frontier-merge idiom applied to whole label slabs);
3. **jump** -- the vertex range is split the same way; each worker
   pointer-jumps exactly its slice of the back slab (owner-write
   discipline, lint rule SHM204), then front and back swap.

Everything lives in :mod:`repro.analysis.shm` segments created once at
setup -- the edge arrays, both label slabs and the ``chunks x n``
partial block -- so after the first round no allocation happens and
nothing but tiny task descriptors ever crosses a pipe (zero pickling).
Convergence is a quiet deterministic round: no hook proposal lowered a
label and no pointer jump moved.  The stochastic variant's coin can
block every hook in a round, so a quiet *stochastic* round is only a
hint -- the driver then runs one deterministic confirmation round and
stops only if that is quiet too.

With ``pool=None`` the same rounds run inline through the identical
kernels (one chunk, ordinary arrays) -- the 1-core fallback the cost
model routes to-- and because each round is a MIN-combine, the chunked
and inline paths produce bit-identical labels: the canonical
minimum-index labelling every other engine emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core import parallel_kernels as pk
from repro.hirschberg.edgelist import EdgeListGraph

#: Base seed for the stochastic variant's per-round coins (any
#: non-negative value; per-round seeds are ``seed + round``).
DEFAULT_SEED = 0x5EED


@dataclass
class ParallelResult:
    """Outcome of a chunk-parallel label-propagation run.

    ``rounds`` counts every synchronous round executed, *including* the
    ``confirm_rounds`` deterministic confirmation rounds the stochastic
    variant needs before a quiet round may be trusted.  ``workers`` is
    the pool's worker count on the pooled path and 1 inline; ``chunks``
    is the partition width (= per-round task count per phase).
    """

    labels: np.ndarray
    variant: str
    rounds: int
    confirm_rounds: int
    chunks: int
    workers: int
    pooled: bool

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


def connected_components_parallel(
    graph: EdgeListGraph,
    variant: str = "fastsv",
    chunks: Optional[int] = None,
    pool: Optional[Any] = None,
    max_rounds: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> ParallelResult:
    """Connected components by chunk-parallel label propagation.

    Parameters
    ----------
    graph:
        The sparse input (directed both-ways edge arrays).
    variant:
        One of :data:`repro.core.parallel_kernels.VARIANTS`:
        ``"sv"`` (parent hooking), ``"fastsv"`` (grandparent +
        self-hooking; default, fewest rounds), ``"stochastic"``
        (coin-filtered hooking with deterministic confirmation).
    chunks:
        Partition width per phase.  Defaults to the pool's worker count
        (1 inline).  More chunks than edges or vertices is fine --
        trailing chunks are empty no-ops.
    pool:
        A started :class:`repro.serve.executor.PoolExecutor` to fan the
        phases out on; ``None`` runs inline through the same kernels.
    max_rounds:
        Safety cap on synchronous rounds (default ``max(1, n)``; the
        label sum strictly decreases every non-final round, so the
        fixpoint always lands far below it).
    seed:
        Non-negative base seed for the stochastic variant's coins.

    Labels are the canonical minimum-index-per-component vector,
    bit-identical across variants, chunk counts and the inline/pooled
    paths.
    """
    if variant not in pk.VARIANTS:
        raise ValueError(
            f"variant must be one of {pk.VARIANTS}, got {variant!r}"
        )
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    if chunks is not None and chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    n = graph.n
    if n == 0:
        return ParallelResult(
            labels=np.empty(0, dtype=np.int64), variant=variant, rounds=0,
            confirm_rounds=0, chunks=chunks or 1, workers=1, pooled=False,
        )
    if pool is None:
        return _solve_inline(graph, variant, chunks, max_rounds, seed)
    return _solve_pooled(graph, variant, chunks, pool, max_rounds, seed)


def _round_limit(n: int, max_rounds: Optional[int]) -> int:
    return max_rounds if max_rounds is not None else max(1, n)


def _solve_inline(
    graph: EdgeListGraph,
    variant: str,
    chunks: Optional[int],
    max_rounds: Optional[int],
    seed: int,
) -> ParallelResult:
    """The 1-core path: identical kernels, one chunk, no shm."""
    n = graph.n
    f = np.arange(n, dtype=np.int64)
    scratch = np.empty(n, dtype=np.int64)
    back = np.empty(n, dtype=np.int64)
    src, dst = graph.src, graph.dst
    limit = _round_limit(n, max_rounds)
    rounds = confirm = 0
    while rounds < limit:
        round_seed = (
            pk.DETERMINISTIC if variant != "stochastic" else seed + rounds
        )
        hooked, jumped = pk.serial_round(
            f, src, dst, scratch, back, variant, round_seed
        )
        f, back = back, f
        rounds += 1
        if hooked or jumped:
            continue
        if variant != "stochastic":
            break
        if rounds >= limit:
            break
        # A quiet stochastic round only proves the coins said no;
        # confirm the fixpoint with one deterministic round.
        hooked, jumped = pk.serial_round(
            f, src, dst, scratch, back, variant, pk.DETERMINISTIC
        )
        f, back = back, f
        rounds += 1
        confirm += 1
        if not hooked and not jumped:
            break
    return ParallelResult(
        labels=f, variant=variant, rounds=rounds, confirm_rounds=confirm,
        chunks=chunks or 1, workers=1, pooled=False,
    )


def _solve_pooled(
    graph: EdgeListGraph,
    variant: str,
    chunks: Optional[int],
    pool: Optional[Any],
    max_rounds: Optional[int],
    seed: int,
) -> ParallelResult:
    """Fan the hook/jump phases out across the pool's shm workers.

    All segments are created here and owned for the whole solve; the
    workers attach by name once (their per-worker mapping cache makes
    every later round re-map nothing) and only :class:`_Task`
    descriptors cross the pipes.
    """
    from repro.analysis.shm import SharedArray, SharedArrayRef

    n = graph.n
    width = chunks if chunks is not None else max(1, int(pool.workers))
    m_directed = int(graph.src.shape[0])
    edge_bounds = pk.chunk_bounds(m_directed, width)
    vertex_bounds = pk.chunk_bounds(n, width)
    blocks: List[SharedArray] = []

    def shared(source: np.ndarray) -> SharedArray:
        block = SharedArray.create(source)
        blocks.append(block)
        return block

    try:
        src = shared(np.ascontiguousarray(graph.src, dtype=np.int64))
        dst = shared(np.ascontiguousarray(graph.dst, dtype=np.int64))
        front = shared(np.arange(n, dtype=np.int64))
        back = SharedArray.zeros((n,), np.int64)
        blocks.append(back)
        partials = SharedArray.zeros((width, n), np.int64)
        blocks.append(partials)
        itemsize = np.dtype(np.int64).itemsize
        partial_refs = [
            SharedArrayRef(
                name=partials.ref.name, shape=(n,),
                dtype=np.dtype(np.int64).str, offset=i * n * itemsize,
            )
            for i in range(width)
        ]
        partial_rows = [partials.array[i] for i in range(width)]
        # (ref, array) pairs swapped each round; state[0] is the front.
        state: List[Tuple[SharedArrayRef, np.ndarray]] = [
            (front.ref, front.array), (back.ref, back.array),
        ]
        limit = _round_limit(n, max_rounds)
        rounds = confirm = 0

        def one_round(round_seed: int) -> Tuple[bool, bool]:
            nonlocal rounds
            (f_ref, f_arr), (b_ref, _) = state
            pool.label_hook_round(
                f_ref, src.ref, dst.ref, partial_refs, edge_bounds,
                variant, round_seed,
            )
            hooked = pk.combine_partials(f_arr, partial_rows)
            jump_tokens = pool.label_jump_round(f_ref, b_ref, vertex_bounds)
            state[0], state[1] = state[1], state[0]
            rounds += 1
            return hooked, sum(jump_tokens) > 0

        while rounds < limit:
            round_seed = (
                pk.DETERMINISTIC if variant != "stochastic" else seed + rounds
            )
            hooked, jumped = one_round(round_seed)
            if hooked or jumped:
                continue
            if variant != "stochastic":
                break
            if rounds >= limit:
                break
            hooked, jumped = one_round(pk.DETERMINISTIC)
            confirm += 1
            if not hooked and not jumped:
                break
        labels = state[0][1].copy()
    finally:
        for block in blocks:
            block.close()
        for block in blocks:
            block.unlink()
    return ParallelResult(
        labels=labels, variant=variant, rounds=rounds,
        confirm_rounds=confirm, chunks=width,
        workers=int(pool.workers), pooled=True,
    )
