"""The reference algorithm: Listing 1 as a data-parallel NumPy program.

This is the library's executable rendition of Hirschberg's algorithm as the
paper states it, with the outer loop run ``ceil(log2 n)`` times (the
component count at least halves per iteration).  It is the specification
the GCA implementations are validated against, and its per-iteration hook
lets tests observe the invariants (labels only decrease, labels are always
valid super-node ids, component count at least halves while components
remain mergeable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.steps import one_iteration, step1_init
from repro.util.intmath import jump_iterations, outer_iterations

GraphLike = Union[AdjacencyMatrix, np.ndarray]
IterationHook = Callable[[int, np.ndarray, np.ndarray], None]


@dataclass
class ReferenceResult:
    """Outcome of a reference-algorithm run.

    Attributes
    ----------
    labels:
        Final component labels ``C`` (node -> minimum node index of its
        component).
    iterations:
        Number of outer iterations executed.
    history:
        ``C`` after every iteration (``history[0]`` is the initial
        labelling) when ``keep_history=True``; otherwise just the endpoints.
    """

    labels: np.ndarray
    iterations: int
    history: List[np.ndarray] = field(default_factory=list)

    @property
    def component_count(self) -> int:
        """Number of connected components found."""
        return int(np.unique(self.labels).size)

    def components(self) -> List[List[int]]:
        """The components as sorted node lists, ordered by representative."""
        order: dict = {}
        for node, label in enumerate(self.labels.tolist()):
            order.setdefault(label, []).append(node)
        return [sorted(order[k]) for k in sorted(order)]


def _as_graph(graph: GraphLike) -> AdjacencyMatrix:
    if isinstance(graph, AdjacencyMatrix):
        return graph
    return AdjacencyMatrix(np.asarray(graph))


def hirschberg_reference(
    graph: GraphLike,
    iterations: Optional[int] = None,
    keep_history: bool = False,
    on_iteration: Optional[IterationHook] = None,
) -> ReferenceResult:
    """Run Hirschberg's algorithm (Listing 1) on ``graph``.

    Parameters
    ----------
    graph:
        The undirected input graph.
    iterations:
        Outer iterations to run; default ``ceil(log2 n)`` as the paper
        prescribes.  Passing a smaller count is allowed (useful for
        convergence studies) but the result may then be unconverged.
    keep_history:
        Record ``C`` after every iteration in :attr:`ReferenceResult.history`.
    on_iteration:
        Callback ``(iteration_index, C, T)`` fired after each iteration.

    Returns
    -------
    ReferenceResult
        With ``labels[i]`` = minimum node index of ``i``'s component (when
        run to the default iteration count).
    """
    g = _as_graph(graph)
    n = g.n
    total = outer_iterations(n) if iterations is None else iterations
    if total < 0:
        raise ValueError(f"iterations must be >= 0, got {total}")
    jumps = jump_iterations(n)

    C = step1_init(n)
    history = [C.copy()] if keep_history else []
    for k in range(total):
        C, T = one_iteration(g, C, jumps)
        if keep_history:
            history.append(C.copy())
        if on_iteration is not None:
            on_iteration(k, C.copy(), T.copy())
    return ReferenceResult(labels=C, iterations=total, history=history)


def connected_components_reference(graph: GraphLike) -> np.ndarray:
    """Convenience wrapper returning only the canonical labels."""
    return hirschberg_reference(graph).labels
