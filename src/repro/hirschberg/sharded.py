"""Sharded out-of-core connected components: disk-bounded capacity.

Every engine before this one holds the whole edge list (plus same-sized
temporaries) in RAM, which caps the reproduction far below the paper's
"as many processing elements as the problem needs" ambition.  This
module removes the ceiling with the classic three-stage out-of-core
decomposition:

1. **Partition** -- the edge stream is split by stride into ``k`` shard
   files (:class:`~repro.analysis.shards.ShardStore`) without ever
   materialising the full list; the planner
   (:func:`~repro.analysis.shards.plan_shards`) sizes ``k`` so that the
   configured number of concurrent shard solves fits the memory budget.
2. **Per-shard contraction** -- each shard is a subgraph over the
   *global* vertex ids.  A shard solve compacts the ids it actually
   touches (``np.unique``), runs the existing contracting CSR engine
   (:func:`~repro.hirschberg.contracting.connected_components_contracting`),
   and emits its **frontier**: star pairs ``(v, rep)`` linking every
   touched vertex to its shard-local component representative (the
   minimum global id in that shard-component -- ``np.unique`` returns
   sorted ids, so the local minimum index *is* the global minimum).
   Shards run either inline or on the PR 4
   :class:`~repro.serve.executor.PoolExecutor` -- endpoint arrays
   travel through shared-memory slabs with zero pickling, and a bounded
   window of in-flight shards keeps peak resident memory under the
   budget.
3. **Boundary merge** -- the union of the per-shard star forests
   connects ``u`` and ``v`` iff some shard path does, and every edge
   lives in exactly one shard, so the union has the same components as
   the input.  A vectorized log-step label-propagation pass (in the
   spirit of Burkhardt's label-propagation connectivity and the
   Liu--Tarjan framework; same scatter/gather idioms as
   ``hirschberg/fastsv.py``) resolves it: scatter ``min`` over the
   frontier pairs, then pointer-jump (``L = L[L]``) to compress, until
   a full pass changes nothing.

Correctness of the merge rests on two invariants, both preserved by
every update: ``L[x] <= x`` pointwise (min-updates and jumps only ever
lower labels, starting from the identity), and ``L[x]`` is always the
id of a vertex in ``x``'s true component (values propagated are labels
of in-component vertices).  At the fixpoint each label is therefore the
component's minimum id -- exactly the canonical convention every other
engine uses, so results are bit-identical.

Results too large for a full union-find oracle are verified by the
sampled spot-check protocol
(:func:`~repro.analysis.shards.spot_check_labels`), re-streamed from
the shard files.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.shards import (
    DEFAULT_CHUNK_EDGES,
    PairFile,
    ShardPlan,
    ShardStore,
    SpotCheckReport,
    plan_shards,
    remove_workdir,
    spot_check_labels,
)
from repro.hirschberg.edgelist import EdgeListGraph

__all__ = [
    "ShardedResult",
    "connected_components_sharded",
    "solve_shard_arrays",
]

#: Below this many edges the engine defaults to inline shard solves --
#: pool dispatch overhead would dominate.
_INLINE_EDGE_LIMIT = 2_000_000

#: Auto worker cap (per-shard solves are memory-hungry; the planner
#: divides the budget between them).
_MAX_AUTO_WORKERS = 4

#: Fraction of the budget the merge label array may claim before it is
#: spilled to a memory-mapped file.
_LABEL_BUDGET_FRACTION = 0.25

ShardSource = Union[
    EdgeListGraph,
    str,
    Path,
    Tuple[int, Iterable[Tuple[np.ndarray, np.ndarray]]],
]


def solve_shard_arrays(
    n: int, u: np.ndarray, v: np.ndarray, engine: str = "contracting"
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve one shard; return its frontier star pairs.

    ``u``/``v`` hold global vertex ids in ``[0, n)``.  The shard is
    compacted to the ids it touches, solved with the selected per-shard
    engine (``"contracting"``, or ``"parallel"`` for the Liu--Tarjan
    label-propagation kernels of :mod:`repro.hirschberg.parallel` --
    shard-level fan-out across pool workers stays the outer parallelism
    either way), and reduced to pairs ``(vertex, representative)`` for
    every touched vertex whose shard-local representative differs from
    itself.  Representatives are global minimum ids of their
    shard-component (``np.unique`` sorts, so local index order is
    global id order) -- both engines emit exactly that canonical
    labelling, so the frontier is engine-independent.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    verts, inverse = np.unique(np.concatenate([u, v]), return_inverse=True)
    if verts[0] < 0 or verts[-1] >= n:
        raise ValueError(
            f"shard endpoints outside [0, {n}): "
            f"min={int(verts[0])}, max={int(verts[-1])}"
        )
    local_graph = EdgeListGraph.from_arrays(
        int(verts.size), inverse[: u.size], inverse[u.size:]
    )
    if engine == "parallel":
        from repro.hirschberg.parallel import connected_components_parallel

        local_labels = connected_components_parallel(local_graph).labels
    elif engine == "contracting":
        from repro.hirschberg.contracting import (
            connected_components_contracting,
        )

        local_labels = connected_components_contracting(local_graph).labels
    else:
        raise ValueError(
            f"shard engine must be 'contracting' or 'parallel', "
            f"got {engine!r}"
        )
    reps = verts[local_labels]
    keep = reps != verts
    return verts[keep], reps[keep]


@dataclass
class ShardedResult:
    """Outcome of one out-of-core solve.

    ``labels`` is the canonical component labelling (min id per
    component), bit-identical to the in-RAM engines.  ``shard_stats``
    records per-shard edge and frontier counts; ``seconds`` breaks the
    wall time into the three stages (plus verification); ``spot_check``
    is the sampled verification report when requested.
    """

    labels: np.ndarray
    plan: ShardPlan
    edges: int
    frontier_pairs: int
    merge_passes: int
    shard_stats: List[Dict[str, int]] = field(default_factory=list)
    seconds: Dict[str, float] = field(default_factory=dict)
    spot_check: Optional[SpotCheckReport] = None

    @property
    def components(self) -> int:
        return int(np.unique(self.labels).size)


def _as_stream(
    source: ShardSource,
    n: Optional[int],
    edges_hint: Optional[int],
) -> Tuple[int, int, Iterable[Tuple[np.ndarray, np.ndarray]]]:
    """Normalise a shard source to ``(n, edge estimate, chunk stream)``.

    The estimate only sizes the plan; the strided partitioner keeps
    shards balanced whatever the stream's real length turns out to be.
    """
    if isinstance(source, EdgeListGraph):
        edges = int(source.src.size)

        def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
            for start in range(0, max(edges, 1), DEFAULT_CHUNK_EDGES):
                stop = min(start + DEFAULT_CHUNK_EDGES, edges)
                if stop > start:
                    yield source.src[start:stop], source.dst[start:stop]

        return int(source.n), edges, chunks()
    if isinstance(source, (str, Path)):
        from repro.graphs.io import open_edge_list_stream

        file_n, stream = open_edge_list_stream(
            source, chunk_edges=DEFAULT_CHUNK_EDGES
        )
        if edges_hint is None:
            # ~"u v\n" with modest ids: a crude but plan-sufficient guess
            edges_hint = max(Path(source).stat().st_size // 12, 1)
        return file_n, int(edges_hint), stream
    if isinstance(source, tuple) and len(source) == 2:
        src_n, stream = source
        if edges_hint is None:
            edges_hint = DEFAULT_CHUNK_EDGES
        return int(src_n), int(edges_hint), stream
    if n is not None and hasattr(source, "__iter__"):
        return int(n), int(edges_hint or DEFAULT_CHUNK_EDGES), source
    raise TypeError(
        "source must be an EdgeListGraph, a path to an edge-list file, "
        f"or an (n, chunk-iterable) pair; got {type(source).__name__}"
    )


def _resolve_workers(
    workers: Optional[int], pool: Optional[Any], edges: int
) -> int:
    """How many shard solves may be in flight (0 = inline)."""
    if workers is not None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        return workers
    if pool is not None:
        return int(pool.workers)
    cpu = os.cpu_count() or 1
    if cpu == 1 or edges < _INLINE_EDGE_LIMIT:
        return 0
    return min(cpu, _MAX_AUTO_WORKERS)


def _merge_frontier(
    labels: np.ndarray, frontier: PairFile, chunk_pairs: int
) -> int:
    """Vectorized log-step label propagation over the frontier forest.

    Alternates a scatter-min over the star pairs with chunked pointer
    jumping (``L = min(L, L[L])``) until a full pass changes nothing.
    Every update strictly lowers some label and labels are bounded
    below by the component minimum, so termination is guaranteed; the
    pass count is logarithmic in the length of the longest
    representative chain across shards (each jump round halves it).
    Returns the number of outer passes (the last one is the quiescent
    proof pass).
    """
    n = labels.shape[0]
    passes = 0
    while True:
        passes += 1
        changed = False
        for u, v in frontier.iter_chunks(chunk_pairs):
            lo = np.minimum(labels[u], labels[v])
            if (labels[u] != lo).any() or (labels[v] != lo).any():
                changed = True
                np.minimum.at(labels, u, lo)
                np.minimum.at(labels, v, lo)
        while True:
            jumped = False
            for start in range(0, n, chunk_pairs):
                block = labels[start:start + chunk_pairs]
                hop = labels[block]
                if (hop < block).any():
                    labels[start:start + chunk_pairs] = np.minimum(block, hop)
                    jumped = True
            if not jumped:
                break
            changed = True
        if not changed:
            return passes


def connected_components_sharded(
    source: ShardSource,
    n: Optional[int] = None,
    edges_hint: Optional[int] = None,
    shards: Optional[int] = None,
    memory_budget: Optional[int] = None,
    workers: Optional[int] = None,
    workdir: Optional[Union[str, Path]] = None,
    pool: Optional[Any] = None,
    spot_check: bool = False,
    spot_check_seed: int = 0,
    keep_workdir: bool = False,
    shard_engine: str = "contracting",
) -> ShardedResult:
    """Out-of-core connected components over a sharded edge stream.

    Parameters
    ----------
    source:
        An :class:`~repro.hirschberg.edgelist.EdgeListGraph`, a path to
        an edge-list text file (streamed, never materialised), or a
        pair ``(n, iterable of (u, v) chunk arrays)``.
    n, edges_hint:
        Vertex count / edge estimate for iterable sources (the hint
        only sizes the plan).
    shards:
        Override the planned shard count.
    memory_budget:
        Resident byte budget; defaults to half the host's available
        memory (see :func:`~repro.analysis.shards.plan_shards`).
    workers:
        In-flight shard solves.  ``0`` forces inline solving; ``None``
        picks inline for small inputs and a bounded pool otherwise.
    workdir:
        Directory for shard files (a private temp directory by
        default).  Only files this engine creates are ever deleted.
    pool:
        An already-running :class:`~repro.serve.executor.PoolExecutor`
        to borrow instead of forking a private one.
    spot_check:
        Run the sampled verification protocol on the result
        (re-streamed from the shard files) and attach the report.
    keep_workdir:
        Leave the shard files behind (debugging / postmortems).
    shard_engine:
        Per-shard solver: ``"contracting"`` (default) or ``"parallel"``
        (the chunk-parallel engine's Liu--Tarjan kernels; big shards
        then run the same data-parallel update rules the standalone
        ``engine="parallel"`` uses, while shard-level fan-out across
        the pool remains the outer parallelism).  The frontier pairs
        and final labels are bit-identical either way.
    """
    if shard_engine not in ("contracting", "parallel"):
        raise ValueError(
            f"shard_engine must be 'contracting' or 'parallel', "
            f"got {shard_engine!r}"
        )
    t_start = time.perf_counter()
    n, edges_est, stream = _as_stream(source, n, edges_hint)
    window = _resolve_workers(workers, pool, edges_est)
    plan = plan_shards(
        n, edges_est, memory_budget=memory_budget, shards=shards,
        workers=max(1, window),
    )
    owned_dir = workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro-shards-") if owned_dir else workdir
    )
    own_pool = None
    store: Optional[ShardStore] = None
    frontier: Optional[PairFile] = None
    seconds: Dict[str, float] = {}
    try:
        # -- stage 1: partition the stream into shard files ------------
        store = ShardStore(workdir, plan.shards)
        total_edges = store.partition(stream)
        # A wildly low estimate means shards came out oversized; replan
        # from the realized total and repartition shard-to-shard (one
        # extra bounded-memory pass over the files).
        realized_max = max(
            store.edge_count(i) for i in range(plan.shards)
        )
        if realized_max > 2 * plan.shard_edges and shards is None:
            replan = plan_shards(
                n, total_edges, memory_budget=plan.memory_budget,
                workers=plan.workers,
            )
            if replan.shards > plan.shards:
                redo = ShardStore(workdir / "repart", replan.shards)
                redo.partition(store.iter_all_chunks(plan.chunk_edges))
                store.remove()
                store, plan = redo, replan
        seconds["partition"] = time.perf_counter() - t_start

        # -- stage 2: per-shard contraction (bounded window) -----------
        t0 = time.perf_counter()
        use_pool = pool is not None or window >= 1
        active_pool = pool
        if use_pool and active_pool is None:
            from repro.serve.executor import PoolExecutor

            own_pool = PoolExecutor(workers=window, calibrate=False).start()
            active_pool = own_pool
        frontier = PairFile(workdir / "frontier.pairs")
        shard_stats: List[Dict[str, int]] = []
        emit_lock = threading.Lock()

        def solve_one(i: int) -> None:
            u, v = store.read_shard(i)
            if active_pool is not None:
                verts, reps = active_pool.solve_shard(
                    n, u, v, engine=shard_engine
                )
            else:
                verts, reps = solve_shard_arrays(n, u, v, engine=shard_engine)
            with emit_lock:
                frontier.append(verts, reps)
                shard_stats.append({
                    "shard": i,
                    "edges": int(u.size),
                    "frontier": int(verts.size),
                })

        if active_pool is not None and plan.shards > 1:
            with ThreadPoolExecutor(
                max_workers=max(1, window), thread_name_prefix="repro-shard"
            ) as tpe:
                # list() re-raises the first worker failure
                list(tpe.map(solve_one, range(plan.shards)))
        else:
            for i in range(plan.shards):
                solve_one(i)
        frontier.flush()
        shard_stats.sort(key=lambda s: s["shard"])
        seconds["solve"] = time.perf_counter() - t0

        # -- stage 3: boundary merge over the frontier forest ----------
        t0 = time.perf_counter()
        labels_path = workdir / "labels.bin"
        spill_labels = n * 8 > plan.memory_budget * _LABEL_BUDGET_FRACTION
        if spill_labels:
            labels = np.memmap(
                labels_path, dtype=np.int64, mode="w+", shape=(n,)
            )
            for start in range(0, n, plan.chunk_edges):
                stop = min(start + plan.chunk_edges, n)
                labels[start:stop] = np.arange(start, stop, dtype=np.int64)
        else:
            labels = np.arange(n, dtype=np.int64)
        merge_passes = _merge_frontier(labels, frontier, plan.chunk_edges)
        seconds["merge"] = time.perf_counter() - t0

        # -- optional sampled verification -----------------------------
        report = None
        if spot_check:
            t0 = time.perf_counter()
            report = spot_check_labels(
                labels, n,
                store.iter_all_chunks(plan.chunk_edges),
                edges_hint=total_edges,
                seed=spot_check_seed,
            )
            seconds["spot_check"] = time.perf_counter() - t0

        final = np.array(labels, dtype=np.int64)
        if spill_labels:
            labels._mmap.close()
        frontier_pairs = frontier.pairs
        seconds["total"] = time.perf_counter() - t_start
        return ShardedResult(
            labels=final,
            plan=plan,
            edges=total_edges,
            frontier_pairs=frontier_pairs,
            merge_passes=merge_passes,
            shard_stats=shard_stats,
            seconds=seconds,
            spot_check=report,
        )
    finally:
        if own_pool is not None:
            own_pool.shutdown()
        if store is not None:
            store.close()
        if frontier is not None:
            frontier.close()
        if not keep_workdir:
            remove_workdir(workdir / "repart")
            remove_workdir(workdir)
