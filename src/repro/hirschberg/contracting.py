"""Contracting sparse (CSR) variant of Hirschberg's algorithm.

The edge-list variant (:mod:`repro.hirschberg.edgelist`) already brings
the paper's algorithm from ``Theta(n^2)`` field cells down to
``O((n + m) log n)`` work -- but it keeps *all* ``n`` vertices and all
``m`` edges live in every outer iteration, even though most of them are
settled after the first round or two.  Modern concurrent-components work
(Liu & Tarjan 2019; Burkhardt 2018) observes that the hook-and-shortcut
iteration structure composes with **graph contraction**: once an outer
iteration has merged vertices into supervertices, the next iteration only
needs the *contracted* graph -- one vertex per supervertex, with
intra-supervertex and duplicate edges removed.

This module implements that scheme.  Each outer iteration:

1. runs Hirschberg's steps 2-6 on the current contracted graph.  The
   labels start every level from the identity (each supervertex is its
   own supernode), so step 2 reduces to "minimum neighbour per vertex"
   and step 3 to the identity.  The reduction runs either as a
   MIN-combining scatter (``np.minimum.at`` -- the CRCW-MIN discipline of
   :mod:`repro.hirschberg.fastsv`) or, when the level's CSR rows are
   sorted, as a first-entry read off the CSR structure;
2. relabels the surviving supervertices to a dense ``0..k-1`` range in
   O(n_t) -- the hook forest is idempotent after step 6 (all cycles are
   mutual pairs, resolved to their minimum), so the representatives are
   exactly the fixed points of the label array and no sort is needed;
3. maps the edges through the relabelling and drops the
   intra-supervertex survivors, so level ``t+1`` runs on ``(n_{t+1},
   m_{t+1})`` instead of ``(n, m)``;
4. drops duplicate (parallel) contracted edges and rebuilds sorted CSR
   rows **when that is linear-time profitable**: via a counting-table
   dedup once ``k^2`` is comparable to the edge count, or via a packed
   sort once the level is small.  Early huge levels skip the dedup --
   a comparison sort of millions of keys costs more than the duplicate
   scatters it would save (measured in
   ``benchmarks/bench_sparse_scaling.py``) -- which only delays, never
   loses, edges: the per-level edge count is non-increasing either way.

A per-level minimum-original-index array plays the contraction stack:
composing the per-level vertex maps and reading that array off at the end
reproduces the paper's canonical labelling (component label = minimum
*original* node index), validated against
:func:`repro.hirschberg.fastsv.fastsv_reference` and the union-find
oracle in the tests.

Because every vertex with at least one incident edge merges with a
neighbour each round, the number of non-isolated supervertices at least
halves per level, so the engine terminates within ``ceil(log2 n)`` levels
-- on real sparse graphs the active problem collapses much faster than
that bound (the result records the measured ``(n_t, m_t)`` series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.edgelist import _PACK_LIMIT, EdgeListGraph
from repro.util.intmath import jump_iterations, outer_iterations

GraphLike = Union[AdjacencyMatrix, np.ndarray]

#: Dedup via a k*k counting table when it fits comfortably in memory:
#: the table costs O(k^2) space but the dedup is pure linear passes.
_DEDUP_TABLE_K = 4096

#: Dedup via a packed ``np.unique`` sort below this directed edge count;
#: beyond it a comparison sort costs more than the duplicates it saves.
_DEDUP_SORT_M = 1 << 19

#: Test pointer-jumping convergence (early exit) only on levels at least
#: this big; below it the test costs more than the jumps it can save.
_JUMP_CHECK_N = 512


@dataclass(frozen=True)
class ContractionLevel:
    """The problem size one outer iteration actually ran on."""

    n: int            #: supervertices entering the level
    m: int            #: directed edge-array length entering the level
    jumps: int        #: pointer jumps executed (early-exits on convergence)
    deduplicated: bool  #: whether this level's edges were CSR-sorted/unique

    @property
    def edge_count(self) -> int:
        """Undirected edge count entering the level (duplicates included
        on levels the dedup policy skipped)."""
        return self.m // 2


@dataclass
class ContractingResult:
    """Outcome of a contracting run."""

    labels: np.ndarray
    levels: List[ContractionLevel]
    contracted_to_empty: bool

    @property
    def iterations(self) -> int:
        """Number of outer iterations (= contraction levels) executed."""
        return len(self.levels)

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)

    @property
    def total_work(self) -> int:
        """``sum(n_t + m_t)`` over the levels -- the contracted work, to
        set against the edge-list variant's ``iterations * (n + m)``."""
        return sum(level.n + level.m for level in self.levels)


def _min_neighbour(
    n: int, src: np.ndarray, dst: np.ndarray, sorted_rows: bool
) -> np.ndarray:
    """Step 2 from identity labels: ``T[u] = min(neighbours of u)``,
    ``T[u] = u`` for isolated ``u``.

    With sorted CSR rows the row minimum is the row's first entry; with
    unsorted rows it is a MIN-combining scatter.
    """
    T = np.arange(n, dtype=np.int64)
    if sorted_rows:
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        nonempty = indptr[:-1] < indptr[1:]
        T[nonempty] = dst[indptr[:-1][nonempty]]
    elif src.size:
        sentinel = np.int64(n)
        scattered = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(scattered, src, dst)
        found = scattered != sentinel
        T[found] = scattered[found]
    return T


def _dedup_edges(
    k: int, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Drop duplicate directed edges and sort into CSR row order -- but
    only through a linear-time (counting) or small sort; large levels are
    returned unchanged with ``deduplicated=False``."""
    if src.size == 0:
        return src, dst, True
    if k <= _DEDUP_TABLE_K:
        # O(m + k^2) counting dedup; flatnonzero returns the surviving
        # packed keys sorted, i.e. already in CSR row order.
        table = np.zeros(k * k, dtype=bool)
        table[src * np.int64(k) + dst] = True
        key = np.flatnonzero(table)
        return key // k, key % k, True
    if src.size <= _DEDUP_SORT_M and k <= _PACK_LIMIT:
        # the k guard keeps the packed key inside int64: beyond the
        # limit ``src * k + dst`` would wrap silently and the "dedup"
        # would merge unrelated edges -- skipping dedup is always safe
        # (duplicates only cost time, never correctness)
        key = np.unique(src * np.int64(k) + dst)
        return key // k, key % k, True
    return src, dst, False


def _one_contraction_round(
    n: int, src: np.ndarray, dst: np.ndarray, sorted_rows: bool
) -> Tuple[np.ndarray, int, np.ndarray, np.ndarray, bool, int]:
    """Steps 2-6 from identity labels, then contract.

    Returns ``(phi, k, new_src, new_dst, new_sorted, jumps)`` where
    ``phi`` maps each current vertex to its supervertex in ``0..k-1``.
    """
    T = _min_neighbour(n, src, dst, sorted_rows)

    # step 4: hook; step 5: pointer jumping; step 6: resolve mutual pairs.
    # The PRAM schedule prescribes ceil(log2 n) jumps, but hooking trees
    # are only as deep as the longest chain of decreasing min-neighbour
    # links -- a disjoint union of small blocks converges in two or
    # three.  Jumping is monotone toward the roots and the identity once
    # converged, so stopping at the first no-op jump is exact.  The
    # convergence test costs about one gather, so it only runs on levels
    # big enough for the saved jumps to outweigh it.
    check = n >= _JUMP_CHECK_N
    C = T.copy()
    jumps = 0
    for _ in range(jump_iterations(n)):
        nxt = C[C]
        jumps += 1
        if check and np.array_equal(nxt, C):
            break
        C = nxt
    C = np.minimum(C, T[C])

    # Min-neighbour hooking admits no cycles longer than two, and step 6
    # collapses each mutual pair to its minimum, so C is idempotent: the
    # supervertex representatives are exactly its fixed points.  That
    # yields a dense O(n) relabelling with no sort.
    identity = np.arange(n, dtype=np.int64)
    roots = C == identity
    k = int(np.count_nonzero(roots))
    new_id = np.cumsum(roots) - 1          # root -> dense id, in index order
    phi = new_id[C]

    # contract the edges: map endpoints, drop intra-supervertex edges,
    # then dedup/sort when the policy says it pays.
    ns, nd = phi[src], phi[dst]
    foreign = ns != nd
    ns, nd = ns[foreign], nd[foreign]
    ns, nd, new_sorted = _dedup_edges(k, ns, nd)
    return phi, k, ns, nd, new_sorted, jumps


def connected_components_contracting(
    graph: Union[EdgeListGraph, GraphLike],
    max_levels: Optional[int] = None,
) -> ContractingResult:
    """Canonical component labels via contracting Hirschberg iterations.

    Accepts an :class:`~repro.hirschberg.edgelist.EdgeListGraph` or any
    dense graph (converted).  ``max_levels`` optionally caps the number of
    contraction levels (for instrumentation); when the cap stops the run
    before the edge set is empty, ``contracted_to_empty`` is ``False`` and
    the labels describe the partial merge, not the final components.
    """
    g = (
        graph
        if isinstance(graph, EdgeListGraph)
        else EdgeListGraph.from_adjacency(graph)
    )
    n0 = g.n
    limit = outer_iterations(n0) if max_levels is None else max_levels
    if limit < 0:
        raise ValueError(f"max_levels must be >= 0, got {limit}")

    src, dst = g.src, g.dst
    keep = src != dst  # tolerate hand-built graphs with self-loops
    if not keep.all():
        src, dst = src[keep], dst[keep]
    sorted_rows = False
    n = n0
    to_current = np.arange(n0, dtype=np.int64)  # original -> current vertex
    orig_min = np.arange(n0, dtype=np.int64)    # current vertex -> min original
    levels: List[ContractionLevel] = []

    while src.size and len(levels) < limit:
        m, was_sorted = int(src.size), sorted_rows
        phi, k, src, dst, sorted_rows, jumps = _one_contraction_round(
            n, src, dst, sorted_rows
        )
        levels.append(ContractionLevel(
            n=n, m=m, jumps=jumps, deduplicated=was_sorted,
        ))
        new_min = np.full(k, n0, dtype=np.int64)
        np.minimum.at(new_min, phi, orig_min)
        orig_min = new_min
        to_current = phi[to_current]
        n = k

    labels = orig_min[to_current]
    return ContractingResult(
        labels=labels,
        levels=levels,
        contracted_to_empty=not src.size,
    )
