"""Hirschberg's connected-components algorithm (the paper's Listing 1).

* :mod:`~repro.hirschberg.steps` -- the six steps as pure vector ops;
* :mod:`~repro.hirschberg.reference` -- the reference data-parallel run;
* :mod:`~repro.hirschberg.pram_impl` -- the same program executed on the
  access-mode-checked PRAM simulator (demonstrating the CROW claim);
* :mod:`~repro.hirschberg.variants` -- literal-step-6, HCS'79 and naive
  label-propagation comparison points.
"""

from repro.hirschberg.contracting import (
    ContractingResult,
    ContractionLevel,
    connected_components_contracting,
)
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    EdgeListResult,
    connected_components_edgelist,
    random_edge_list,
    spanning_forest_edgelist,
)
from repro.hirschberg.fastsv import (
    FastSVResult,
    fastsv_on_pram,
    fastsv_reference,
)
from repro.hirschberg.pram_impl import PRAMRunResult, hirschberg_on_pram
from repro.hirschberg.reference import (
    ReferenceResult,
    connected_components_reference,
    hirschberg_reference,
)
from repro.hirschberg.steps import (
    one_iteration,
    step1_init,
    step2_candidate_components,
    step3_supernode_min,
    step4_adopt,
    step5_pointer_jump,
    step6_resolve_pairs,
)
from repro.hirschberg.variants import (
    hirschberg_literal_step6,
    label_propagation,
    label_propagation_rounds,
    supernode_only_step3,
)

__all__ = [
    "ContractingResult",
    "ContractionLevel",
    "connected_components_contracting",
    "EdgeListGraph",
    "EdgeListResult",
    "connected_components_edgelist",
    "random_edge_list",
    "spanning_forest_edgelist",
    "FastSVResult",
    "fastsv_on_pram",
    "fastsv_reference",
    "PRAMRunResult",
    "hirschberg_on_pram",
    "ReferenceResult",
    "connected_components_reference",
    "hirschberg_reference",
    "one_iteration",
    "step1_init",
    "step2_candidate_components",
    "step3_supernode_min",
    "step4_adopt",
    "step5_pointer_jump",
    "step6_resolve_pairs",
    "hirschberg_literal_step6",
    "label_propagation",
    "label_propagation_rounds",
    "supernode_only_step3",
]
