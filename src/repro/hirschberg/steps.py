"""The six steps of Hirschberg's algorithm as composable vector operations.

Listing 1 of the paper (the *reference algorithm*)::

    1. for all i in parallel do C(i) <- i
       do steps 2 through 6 for log n iterations
    2. for all i in parallel do
         T(i) <- min_j { C(j) | A(i,j)=1 and C(j) != C(i) }   else C(i)
    3. for all i in parallel do
         T(i) <- min_j { T(j) | C(j)=i and T(j) != i }        else C(i)
    4. for all i in parallel do C(i) <- T(i)
    5. repeat for log n iterations:
         for all i in parallel do C(i) <- C(C(i))
    6. for all i in parallel do C(i) <- min(C(i), T(C(i)))

Step 6 as printed in the paper reads ``C(i) <- min{C(T(i)), T(i)}``;
executed *after* the pointer jumping of step 5 that version fails to
resolve mutual super-node pairs (2-cycles) -- on ``K_2`` it oscillates
forever.  The GCA implementation of the same paper (generation 11:
pointer ``p = d*n + 1`` into the column that stores T, data operation
``d <- min(d, d*)``) computes ``C(i) <- min(C(i), T(C(i)))``, which does
resolve 2-cycles; we therefore treat generation 11 as the authoritative
semantics for step 6 (see DESIGN.md, "Faithfulness notes").

Every function here is a pure ``numpy`` transformation over the state
vectors, so the reference algorithm, its PRAM rendering and the GCA
mapping can all be tested against the same primitives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.sentinels import infinity_for


def step1_init(n: int) -> np.ndarray:
    """Step 1: every node starts as its own component: ``C(i) = i``."""
    return np.arange(n, dtype=np.int64)


def step2_candidate_components(
    graph: AdjacencyMatrix, C: np.ndarray
) -> np.ndarray:
    """Step 2: ``T(i)`` = smallest *foreign* neighbouring component of ``i``.

    ``T(i) = min_j { C(j) | A(i,j) = 1 and C(j) != C(i) }``, defaulting to
    ``C(i)`` when node ``i`` has no neighbour outside its own component.
    """
    n = graph.n
    inf = infinity_for(n)
    adjacent = graph.matrix.astype(bool)
    foreign = C[None, :] != C[:, None]
    candidates = np.where(adjacent & foreign, C[None, :], inf)
    T = candidates.min(axis=1)
    return np.where(T == inf, C, T)


def step3_supernode_min(C: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Step 3: each super node picks the smallest candidate its members found.

    ``T'(i) = min_j { T(j) | C(j) = i and T(j) != i }``, defaulting to
    ``C(i)``.  For non-super-nodes the member set ``{j | C(j) = i}`` is
    empty, so they receive ``C(i)`` unchanged.
    """
    n = C.shape[0]
    inf = infinity_for(n)
    ids = np.arange(n, dtype=np.int64)
    member = C[None, :] == ids[:, None]
    nontrivial = T[None, :] != ids[:, None]
    candidates = np.where(member & nontrivial, T[None, :], inf)
    T_new = candidates.min(axis=1)
    return np.where(T_new == inf, C, T_new)


def step4_adopt(T: np.ndarray) -> np.ndarray:
    """Step 4: ``C(i) <- T(i)`` -- components hook onto their chosen target."""
    return T.copy()


def step5_pointer_jump(C: np.ndarray, iterations: int) -> np.ndarray:
    """Step 5: ``iterations`` rounds of synchronous pointer jumping
    ``C(i) <- C(C(i))``, collapsing the hook trees to (near-)roots."""
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    for _ in range(iterations):
        C = C[C]
    return C


def step6_resolve_pairs(C: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Step 6: ``C(i) <- min(C(i), T(C(i)))`` -- resolve mutual super-node
    pairs so both sides of a 2-cycle agree on the smaller index.

    ``T`` must be the step-3 output of the *same* iteration (the GCA keeps
    it in the last row / column 1 of the field for exactly this purpose).
    """
    return np.minimum(C, T[C])


def one_iteration(
    graph: AdjacencyMatrix, C: np.ndarray, jump_iterations: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Run steps 2-6 once; returns ``(new C, the step-3 T)``."""
    T = step2_candidate_components(graph, C)
    T = step3_supernode_min(C, T)
    C = step4_adopt(T)
    C = step5_pointer_jump(C, jump_iterations)
    C = step6_resolve_pairs(C, T)
    return C, T
