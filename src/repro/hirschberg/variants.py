"""Algorithm variants around the reference implementation.

The paper situates Hirschberg's algorithm in a family (Hirschberg 1976;
Hirschberg, Chandra, Sarwate 1979; Chin, Lam, Chen 1982).  The variants
here serve the benchmark suite:

* :func:`hirschberg_literal_step6` -- Listing 1 *exactly as printed*
  (step 6 = ``C(i) <- min(C(T(i)), T(i))`` executed after jumping).  Kept
  to document why the printed version is not self-sufficient: it fails to
  resolve mutual super-node pairs (see DESIGN.md), which the test-suite
  demonstrates on ``K_2``.
* :func:`label_propagation` -- the naive ``C(i) <- min(C(i), min_j C(j))``
  relaxation; converges in ``diameter`` rounds and is the classical
  comparison point showing why the ``O(log^2 n)`` algorithm matters on
  high-diameter graphs.
* :func:`supernode_only_step3` -- step 3 restricted to super nodes, the
  HCS'79 formulation; equivalent output, used as a cross-check.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.steps import (
    step1_init,
    step2_candidate_components,
    step3_supernode_min,
    step4_adopt,
    step5_pointer_jump,
)
from repro.util.intmath import jump_iterations, outer_iterations
from repro.util.sentinels import infinity_for

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _as_graph(graph: GraphLike) -> AdjacencyMatrix:
    if isinstance(graph, AdjacencyMatrix):
        return graph
    return AdjacencyMatrix(np.asarray(graph))


def hirschberg_literal_step6(
    graph: GraphLike, iterations: Optional[int] = None
) -> np.ndarray:
    """Listing 1 with step 6 exactly as printed: ``C(i) <- min(C(T(i)), T(i))``.

    Not guaranteed to converge to the canonical labelling (2-cycles can
    oscillate); exists so the test-suite can document the failure mode that
    motivated the generation-11 reading.
    """
    g = _as_graph(graph)
    n = g.n
    total = outer_iterations(n) if iterations is None else iterations
    jumps = jump_iterations(n)
    C = step1_init(n)
    for _ in range(total):
        T = step2_candidate_components(g, C)
        T = step3_supernode_min(C, T)
        C = step4_adopt(T)
        C = step5_pointer_jump(C, jumps)
        C = np.minimum(C[T], T)  # the printed step 6
    return C


def supernode_only_step3(
    graph: GraphLike, iterations: Optional[int] = None
) -> np.ndarray:
    """The HCS'79 formulation: step 3 only updates super nodes (``i`` with
    ``C(i) = i``); other nodes keep their step-2 value but step 4 then
    adopts the *super node's* choice via ``C(i) <- T(C(i))``.

    Produces the same labelling as the reference algorithm.
    """
    g = _as_graph(graph)
    n = g.n
    total = outer_iterations(n) if iterations is None else iterations
    jumps = jump_iterations(n)
    C = step1_init(n)
    for _ in range(total):
        T2 = step2_candidate_components(g, C)
        T3 = step3_supernode_min(C, T2)
        # Members adopt the decision of their super node; super nodes adopt
        # their own.  Because step3 gives non-super-nodes T3(i) = C(i), the
        # reference's step4 (C <- T3) followed by jumping reaches the same
        # fixpoint; here we hook members directly to T3(C(i)).
        C = T3[C]
        C = step5_pointer_jump(C, jumps)
        C = np.minimum(C, T3[C])
    return C


def label_propagation(graph: GraphLike, max_rounds: Optional[int] = None) -> np.ndarray:
    """Naive parallel relaxation: every round, each node takes the minimum
    label in its closed neighbourhood.  Converges in ``diameter`` rounds --
    ``O(n)`` on paths -- and is the baseline against which the
    ``O(log^2 n)`` bound is benchmarked.
    """
    g = _as_graph(graph)
    n = g.n
    inf = infinity_for(n)
    limit = max_rounds if max_rounds is not None else n
    C = step1_init(n)
    adjacent = g.matrix.astype(bool)
    for _ in range(limit):
        neighbor_min = np.where(adjacent, C[None, :], inf).min(axis=1)
        new_C = np.minimum(C, neighbor_min)
        if np.array_equal(new_C, C):
            break
        C = new_C
    return C


def label_propagation_rounds(graph: GraphLike) -> int:
    """Number of rounds :func:`label_propagation` needs to converge --
    the measured comparison series for the scaling bench."""
    g = _as_graph(graph)
    n = g.n
    inf = infinity_for(n)
    C = step1_init(n)
    adjacent = g.matrix.astype(bool)
    rounds = 0
    while True:
        neighbor_min = np.where(adjacent, C[None, :], inf).min(axis=1)
        new_C = np.minimum(C, neighbor_min)
        if np.array_equal(new_C, C):
            return rounds
        C = new_C
        rounds += 1
