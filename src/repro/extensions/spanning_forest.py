"""Spanning forest extraction from Hirschberg's hook choices.

Hirschberg's algorithm almost computes a spanning forest for free: in
every iteration each component *hooks* onto its smallest neighbouring
component, and the hook is witnessed by a concrete graph edge -- the edge
``(j, w)`` through which the winning member ``j`` saw the winning
neighbour ``w`` in step 2.  Collecting one witness edge per successful
hook, over all iterations, yields a spanning forest:

* every merge event contributes exactly one edge joining two previously
  distinct components, so the edge set is acyclic and has exactly
  ``n - #components`` edges;
* mutual hooks (the 2-cycles step 6 resolves) would contribute *two*
  witness edges for one merge, so the extraction keeps only the edge
  proposed by the smaller-indexed super node of the pair.

This is the classic augmentation of CC algorithms to spanning forest
(e.g. in the Chin-Lam-Chen line of work the paper cites) and exercises
the same step structure, so it doubles as an oracle-checked exercise of
the step decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.steps import (
    step1_init,
    step5_pointer_jump,
    step6_resolve_pairs,
)
from repro.util.intmath import jump_iterations, outer_iterations
from repro.util.sentinels import infinity_for

GraphLike = Union[AdjacencyMatrix, np.ndarray]

Edge = Tuple[int, int]


@dataclass
class SpanningForestResult:
    """A spanning forest plus the labelling it certifies."""

    edges: List[Edge]
    labels: np.ndarray
    n: int
    iterations: int
    per_iteration_edges: List[List[Edge]] = field(default_factory=list)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


def _argmin_step2(g: AdjacencyMatrix, C: np.ndarray):
    """Step 2 with witnesses: ``(T, W)`` where ``W[i]`` is the neighbour
    through which ``i`` saw the minimum (or -1)."""
    n = g.n
    inf = infinity_for(n)
    adjacent = g.matrix.astype(bool)
    foreign = C[None, :] != C[:, None]
    candidates = np.where(adjacent & foreign, C[None, :], inf)
    T = candidates.min(axis=1)
    # witness: smallest column index attaining the minimum (deterministic)
    W = np.where(T[:, None] == candidates, np.arange(n)[None, :], n).min(axis=1)
    W = np.where(T == inf, -1, W)
    T = np.where(T == inf, C, T)
    return T, W


def _argmin_step3(C: np.ndarray, T: np.ndarray):
    """Step 3 with witnesses: ``(T3, J)`` where ``J[s]`` is the member of
    super node ``s`` whose candidate won (or -1)."""
    n = C.shape[0]
    inf = infinity_for(n)
    ids = np.arange(n)
    member = C[None, :] == ids[:, None]
    nontrivial = T[None, :] != ids[:, None]
    candidates = np.where(member & nontrivial, T[None, :], inf)
    T3 = candidates.min(axis=1)
    J = np.where(T3[:, None] == candidates, ids[None, :], n).min(axis=1)
    J = np.where(T3 == inf, -1, J)
    T3 = np.where(T3 == inf, C, T3)
    return T3, J


def spanning_forest(graph: GraphLike) -> SpanningForestResult:
    """Compute a spanning forest (and the canonical labelling) of ``graph``.

    Runs the reference algorithm's iteration structure and records one
    witness edge per successful hook.
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    iters = outer_iterations(n)
    jumps = jump_iterations(n)
    C = step1_init(n)
    all_edges: List[Edge] = []
    per_iteration: List[List[Edge]] = []

    for _ in range(iters):
        T2, W = _argmin_step2(g, C)
        T3, J = _argmin_step3(C, T2)

        iteration_edges: List[Edge] = []
        for s in range(n):
            if C[s] != s:
                continue                     # not a super node
            target = int(T3[s])
            if target == int(C[s]):
                continue                     # no hook this iteration
            # mutual pair: keep only the smaller side's edge
            if C[target] == target and int(T3[target]) == s and target < s:
                continue
            j = int(J[s])
            w = int(W[j])
            a, b = min(j, w), max(j, w)
            iteration_edges.append((a, b))

        all_edges.extend(iteration_edges)
        per_iteration.append(iteration_edges)

        C = T3.copy()
        C = step5_pointer_jump(C, jumps)
        C = step6_resolve_pairs(C, T3)

    return SpanningForestResult(
        edges=all_edges,
        labels=C,
        n=n,
        iterations=iters,
        per_iteration_edges=per_iteration,
    )
