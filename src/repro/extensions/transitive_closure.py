"""Transitive closure on the GCA (Hirschberg's companion problem).

Hirschberg's STOC'76 paper treats the transitive closure together with
connected components; the GCA mapping is the canonical "more elaborate
PRAM algorithm" follow-up the paper's conclusion announces.  The scheme is
repeated Boolean matrix squaring::

    B_0 = A | I
    B_{k+1} = B_k | (B_k x B_k)          (Boolean product)

after ``ceil(log2 n)`` squarings ``B`` is the reachability matrix (paths
double in length per squaring).

GCA realisation: an ``n x n`` field of *two-handed* cells; cell ``(i, j)``
owns ``B(i, j)``.  One squaring takes ``n`` sub-generations: in
sub-generation ``k`` cell ``(i, j)`` reads ``B(i, k')`` and ``B(k', j)``
with the **rotated** middle index ``k' = (i + j + k) mod n``, and ORs
their conjunction into an accumulator.  The rotation makes every
sub-generation's reads collision-balanced (each cell is read exactly
``2``x per sub-generation: once as a row source, once as a column
source), the two-handed analogue of Section 4's replication trick.  A
final local sub-generation commits the accumulator so squarings stay
synchronous.

Total generations: ``ceil(log2 n) * (n + 1)`` with ``n^2`` cells --
``O(n log n)``, matching the structure of the row-machine trade-off.

The instrumented simulation is vectorised but records the same
per-sub-generation access statistics as the other machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.gca.instrumentation import AccessLog, GenerationStats
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _as_graph(graph: GraphLike) -> AdjacencyMatrix:
    if isinstance(graph, AdjacencyMatrix):
        return graph
    return AdjacencyMatrix(np.asarray(graph))


def transitive_closure_reference(graph: GraphLike) -> np.ndarray:
    """Reachability by plain repeated Boolean squaring (the oracle)."""
    g = _as_graph(graph)
    B = (g.matrix.astype(bool)) | np.eye(g.n, dtype=bool)
    for _ in range(ceil_log2(g.n) if g.n > 1 else 0):
        B = B | (B @ B)
    return B


def reachability_matrix(graph: GraphLike) -> np.ndarray:
    """Alias for :func:`transitive_closure_reference` (public name)."""
    return transitive_closure_reference(graph)


@dataclass
class TransitiveClosureResult:
    """Outcome of a GCA transitive-closure run."""

    closure: np.ndarray          # boolean n x n reachability matrix
    n: int
    squarings: int
    access_log: AccessLog = field(default_factory=AccessLog)

    @property
    def total_generations(self) -> int:
        return self.access_log.total_generations

    def reachable(self, i: int, j: int) -> bool:
        """Whether ``j`` is reachable from ``i``."""
        return bool(self.closure[i, j])

    def component_labels(self) -> np.ndarray:
        """Connected-component labels derived from the closure: node i's
        label is its smallest reachable node (equals the canonical CC
        labelling on undirected graphs) -- the Hirschberg'76 derivation of
        components from the closure."""
        n = self.n
        ids = np.arange(n)
        candidates = np.where(self.closure, ids[None, :], n)
        return candidates.min(axis=1)


def transitive_closure_gca(
    graph: GraphLike,
    squarings: Optional[int] = None,
    record_access: bool = True,
) -> TransitiveClosureResult:
    """Run the two-handed GCA transitive-closure machine.

    Parameters
    ----------
    graph:
        Undirected input graph (the scheme itself works for any Boolean
        relation; the validation oracle assumes the library's undirected
        matrices).
    squarings:
        Number of squaring rounds (default ``ceil(log2 n)``).
    record_access:
        Record per-sub-generation access statistics.
    """
    g = _as_graph(graph)
    n = g.n
    check_positive("n", n)
    rounds = (ceil_log2(n) if n > 1 else 0) if squarings is None else squarings
    if rounds < 0:
        raise ValueError(f"squarings must be >= 0, got {rounds}")

    log = AccessLog()
    B = (g.matrix.astype(bool)) | np.eye(n, dtype=bool)
    rows = np.arange(n)[:, None]
    cols = np.arange(n)[None, :]

    def record(label: str, reads: Optional[dict]) -> None:
        if record_access:
            log.record(
                GenerationStats(
                    label=label, active_cells=n * n, reads_per_cell=reads or {}
                )
            )

    for r in range(rounds):
        acc = B.copy()           # accumulator register per cell
        for k in range(n):
            middle = (rows + cols + k) % n
            # cell (i, j) reads B(i, middle) and B(middle, j): two hands
            left = B[rows, middle]
            right = B[middle, cols]
            acc = acc | (left & right)
            if record_access:
                # reads per source cell: each cell (i, m) serves as the
                # left operand for exactly one j per sub-generation and as
                # the right operand for exactly one i: 2 reads per cell.
                reads = {int(c): 2 for c in range(n * n)}
                record(f"sq{r}.k{k}", reads)
        B = acc
        record(f"sq{r}.commit", None)

    return TransitiveClosureResult(
        closure=B, n=n, squarings=rounds, access_log=log
    )


def closure_generations(n: int) -> int:
    """Closed form for the GCA transitive closure's generation count:
    ``ceil(log2 n) * (n + 1)``."""
    check_positive("n", n)
    if n == 1:
        return 0
    return ceil_log2(n) * (n + 1)
