"""Extensions beyond the paper's core experiment.

The paper's conclusion announces "the implementation of more elaborate
PRAM algorithms" as future work, and Hirschberg's original STOC'76 paper
treats transitive closure alongside connected components.  This package
implements those natural next steps on the same engines:

* :mod:`~repro.extensions.transitive_closure` -- reachability via
  ``ceil(log2 n)`` Boolean matrix squarings on an ``n x n`` two-handed
  GCA field (and a vectorised reference);
* :mod:`~repro.extensions.spanning_forest` -- a spanning forest extracted
  from the hook choices Hirschberg's algorithm makes, per iteration.
"""

from repro.extensions.spanning_forest import (
    SpanningForestResult,
    spanning_forest,
)
from repro.extensions.transitive_closure import (
    TransitiveClosureResult,
    reachability_matrix,
    transitive_closure_gca,
    transitive_closure_reference,
)

__all__ = [
    "SpanningForestResult",
    "spanning_forest",
    "TransitiveClosureResult",
    "reachability_matrix",
    "transitive_closure_gca",
    "transitive_closure_reference",
]
