"""Interconnection-network substrate (Section 1's routing discussion).

"Concurrent reading can be handled in certain networks, in particular
butterfly networks, by special routing algorithms, e.g. Ranade's
algorithm.  [...] The duration of the communication is not only
determined by the congestion, but also by the communication network.
A fully connected network may not be realizable."

This package provides the butterfly network that discussion assumes:

* :mod:`~repro.network.butterfly` -- a synchronous store-and-forward
  butterfly router with optional Ranade-style *combining* of same-
  destination read requests, plus delivery verification and cycle
  accounting;
* :mod:`~repro.network.mesh` -- a 2-D mesh with XY routing, the
  contrast case for the configurable-communication argument.
"""

from repro.network.butterfly import (
    ButterflyNetwork,
    RouteResult,
    route_read_pattern,
)
from repro.network.mesh import MeshNetwork, square_mesh

__all__ = [
    "ButterflyNetwork",
    "MeshNetwork",
    "square_mesh",
    "RouteResult",
    "route_read_pattern",
]
