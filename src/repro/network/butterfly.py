"""A synchronous butterfly router with Ranade-style request combining.

The network has ``p = 2^k`` ports and ``k`` switch stages.  Stage ``s``
switch ``(s, r)`` forwards packets toward their destination by fixing one
address bit per stage: a packet at ``(s, r)`` bound for destination ``d``
leaves on the *straight* edge to ``(s+1, r)`` if bit ``k-1-s`` of ``r``
already equals that bit of ``d``, else on the *cross* edge to
``(s+1, r XOR 2^(k-1-s))``.

Each switch output forwards **one packet per cycle** (store-and-forward,
FIFO queues).  The model's point is the paper's point about concurrent
reads:

* **without combining**, ``c`` read requests for one memory cell must all
  cross the destination's last edge one by one -- the network serialises
  exactly the congestion δ, so a broadcast generation costs Θ(δ) cycles;
* **with combining** (Ranade), two requests for the *same* destination
  meeting in a queue merge into one packet (the reply is later fanned
  back out along the merge tree).  A ``p``-way concurrent read then
  collapses stage by stage and delivers in Θ(log p) cycles.

The simulator is deliberately simple -- no virtual channels, no reply
phase (its cost mirrors the request phase by symmetry) -- but it is a
real packet-stepping simulation with conservation checks, not a formula.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro.util.intmath import ceil_log2, is_power_of_two
from repro.util.validation import check_positive


@dataclass
class _Packet:
    """A (possibly combined) read request."""

    destination: int
    weight: int  # how many original requests this packet represents


@dataclass
class RouteResult:
    """Outcome of routing one batch of requests."""

    ports: int
    stages: int
    cycles: int
    delivered: Dict[int, int]      # destination -> original request count
    combined: bool
    packets_injected: int

    @property
    def total_requests(self) -> int:
        return sum(self.delivered.values())


class ButterflyNetwork:
    """A ``p``-port butterfly (``p`` a power of two).

    Parameters
    ----------
    ports:
        Number of input/output ports (sources and memory modules).
    combining:
        Merge same-destination packets that meet in a queue (Ranade).
    """

    def __init__(self, ports: int, combining: bool = True):
        check_positive("ports", ports)
        if not is_power_of_two(ports):
            raise ValueError(f"ports must be a power of two, got {ports}")
        self.ports = ports
        self.stages = ceil_log2(ports) if ports > 1 else 0
        self.combining = combining

    # ------------------------------------------------------------------
    def _next_row(self, stage: int, row: int, destination: int) -> int:
        """Row of the stage-``stage`` switch's chosen successor."""
        bit = self.stages - 1 - stage
        if ((row >> bit) & 1) == ((destination >> bit) & 1):
            return row
        return row ^ (1 << bit)

    def route(self, requests: Sequence[Tuple[int, int]]) -> RouteResult:
        """Route ``(source, destination)`` read requests; returns cycle
        count and per-destination delivery tallies.

        One switch forwards one packet per cycle per output queue; all
        switches operate synchronously.
        """
        for src, dst in requests:
            if not 0 <= src < self.ports or not 0 <= dst < self.ports:
                raise ValueError(
                    f"request ({src}, {dst}) outside the {self.ports}-port network"
                )
        if self.stages == 0:
            delivered: Dict[int, int] = {}
            for _src, dst in requests:
                delivered[dst] = delivered.get(dst, 0) + 1
            return RouteResult(
                ports=self.ports, stages=0,
                cycles=1 if requests else 0,
                delivered=delivered, combined=self.combining,
                packets_injected=len(requests),
            )

        # queues[stage][row]: packets waiting at switch (stage, row)
        queues: List[Dict[int, Deque[_Packet]]] = [
            {} for _ in range(self.stages + 1)
        ]

        def enqueue(stage: int, row: int, packet: _Packet) -> None:
            queue = queues[stage].setdefault(row, deque())
            if self.combining:
                for waiting in queue:
                    if waiting.destination == packet.destination:
                        waiting.weight += packet.weight
                        return
            queue.append(packet)

        for src, dst in requests:
            enqueue(0, src, _Packet(destination=dst, weight=1))

        delivered = {}
        cycles = 0
        in_flight = sum(len(q) for q in queues[0].values())
        while in_flight:
            cycles += 1
            # process stages from last to first so a packet moves at most
            # one hop per cycle
            for stage in range(self.stages, -1, -1):
                for row in list(queues[stage].keys()):
                    queue = queues[stage][row]
                    if not queue:
                        continue
                    packet = queue.popleft()
                    if stage == self.stages:
                        delivered[packet.destination] = (
                            delivered.get(packet.destination, 0) + packet.weight
                        )
                    else:
                        enqueue(
                            stage + 1,
                            self._next_row(stage, row, packet.destination),
                            packet,
                        )
            in_flight = sum(
                len(q) for stage_q in queues for q in stage_q.values()
            )

        return RouteResult(
            ports=self.ports,
            stages=self.stages,
            cycles=cycles,
            delivered=delivered,
            combined=self.combining,
            packets_injected=len(requests),
        )


def route_read_pattern(
    reads_per_cell: Dict[int, int],
    readers_per_cell: Dict[int, List[int]] = None,
    ports: int = None,
    combining: bool = True,
) -> RouteResult:
    """Route a GCA generation's read pattern through a butterfly.

    ``reads_per_cell`` is the instrumentation's per-target read count
    (:attr:`~repro.gca.instrumentation.GenerationStats.reads_per_cell`).
    Sources are synthesised round-robin unless ``readers_per_cell`` gives
    them explicitly; cell indices are folded onto the network's ports
    (``index mod ports``).  ``ports`` defaults to the smallest power of
    two covering the largest index.
    """
    if not reads_per_cell:
        net = ButterflyNetwork(max(1, ports or 1) if is_power_of_two(max(1, ports or 1)) else 1,
                               combining=combining)
        return net.route([])
    max_index = max(reads_per_cell)
    if ports is None:
        ports = 1 << ceil_log2(max(2, max_index + 1))
    net = ButterflyNetwork(ports, combining=combining)
    requests: List[Tuple[int, int]] = []
    source_cursor = 0
    for target, count in sorted(reads_per_cell.items()):
        dst = target % ports
        if readers_per_cell and target in readers_per_cell:
            for reader in readers_per_cell[target]:
                requests.append((reader % ports, dst))
        else:
            for _ in range(count):
                requests.append((source_cursor % ports, dst))
                source_cursor += 1
    return net.route(requests)
