"""A 2-D mesh router -- the contrast case to the butterfly.

Section 1 closes its routing discussion with the FPGA argument: "the
communication structure can be adapted to the needs of the application.
Thus, for many problems, the configurability of a GCA can provide better
performance than a universal PRAM emulation."  To quantify that, this
module provides the *other* universal network one would consider -- a
``rows x cols`` mesh with dimension-order (XY) routing and store-and-
forward switching -- so the bench can line up three delivery models for
the same measured read patterns:

* dedicated static wiring (the synthesised GCA): 1 cycle per generation,
  by construction;
* butterfly with combining: ``Theta(log p)`` (see
  :mod:`repro.network.butterfly`);
* mesh: ``Theta(sqrt(p))`` base latency plus serialisation at hot
  destinations.

Requests travel first along the row (X), then along the column (Y); each
link forwards one packet per cycle with FIFO queues, and same-destination
requests can optionally combine in a queue, exactly as in the butterfly
model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro.network.butterfly import RouteResult
from repro.util.validation import check_positive


@dataclass
class _Packet:
    destination: int
    weight: int


class MeshNetwork:
    """A ``rows x cols`` mesh with XY routing.

    Ports are the ``rows * cols`` switch positions (row-major); every
    switch injects/ejects locally.
    """

    def __init__(self, rows: int, cols: int, combining: bool = True):
        self.rows = check_positive("rows", rows)
        self.cols = check_positive("cols", cols)
        self.combining = combining

    @property
    def ports(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def _next_hop(self, position: int, destination: int) -> int:
        """XY routing: fix the column first, then the row."""
        r, c = divmod(position, self.cols)
        dr, dc = divmod(destination, self.cols)
        if c != dc:
            return r * self.cols + (c + (1 if dc > c else -1))
        return (r + (1 if dr > r else -1)) * self.cols + c

    def route(self, requests: Sequence[Tuple[int, int]]) -> RouteResult:
        """Route ``(source, destination)`` requests; one packet per switch
        per cycle (single-ported switches -- the conservative model)."""
        for src, dst in requests:
            if not 0 <= src < self.ports or not 0 <= dst < self.ports:
                raise ValueError(
                    f"request ({src}, {dst}) outside the "
                    f"{self.rows}x{self.cols} mesh"
                )

        queues: Dict[int, Deque[_Packet]] = {}

        def enqueue(position: int, packet: _Packet) -> None:
            queue = queues.setdefault(position, deque())
            if self.combining:
                for waiting in queue:
                    if waiting.destination == packet.destination:
                        waiting.weight += packet.weight
                        return
            queue.append(packet)

        for src, dst in requests:
            enqueue(src, _Packet(destination=dst, weight=1))

        delivered: Dict[int, int] = {}
        cycles = 0
        while any(queues.values()):
            cycles += 1
            moves: List[Tuple[int, _Packet]] = []
            for position in list(queues.keys()):
                queue = queues[position]
                if not queue:
                    continue
                packet = queue.popleft()
                if packet.destination == position:
                    delivered[position] = delivered.get(position, 0) + packet.weight
                else:
                    moves.append((self._next_hop(position, packet.destination), packet))
            for position, packet in moves:
                enqueue(position, packet)

        return RouteResult(
            ports=self.ports,
            stages=self.rows + self.cols - 2,   # worst-case hop count
            cycles=cycles,
            delivered=delivered,
            combined=self.combining,
            packets_injected=len(requests),
        )


def square_mesh(ports: int, combining: bool = True) -> MeshNetwork:
    """The smallest square mesh with at least ``ports`` positions."""
    check_positive("ports", ports)
    side = 1
    while side * side < ports:
        side += 1
    return MeshNetwork(side, side, combining=combining)
