"""Finite representation of the paper's infinity value.

Generations 2 and 6 of the GCA algorithm mark cells that must not
participate in the row-minimum reduction by writing the symbol "infinity"
into their data field.  Hardware (and a fixed-width integer simulation)
cannot store a true infinity, so we use a sentinel that is strictly larger
than every value that can legitimately appear in a data field:

* node numbers ``0 .. n-1``,
* the row numbers ``0 .. n`` written by generation 0,
* linear indices ``0 .. n(n+1)-1`` (never stored in ``d``, but reserving
  headroom above them keeps the invariant trivially safe).

``infinity_for(n) == n * (n + 1)`` satisfies all three and still fits the
``ceil(log2(n^2+n+1))``-bit registers the hardware model budgets for.
"""

from __future__ import annotations


def infinity_for(n: int) -> int:
    """Return the infinity sentinel for a field built over ``n`` nodes.

    >>> infinity_for(4)
    20
    >>> infinity_for(1)
    2
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n * (n + 1)


def is_infinite(value: int, n: int) -> bool:
    """Return ``True`` iff ``value`` is the infinity sentinel for ``n`` nodes.

    Values *above* the sentinel are rejected as corruption rather than being
    treated as infinite, because no rule ever produces them.
    """
    sentinel = infinity_for(n)
    if value > sentinel:
        raise ValueError(
            f"data value {value} exceeds the infinity sentinel {sentinel} "
            f"for n={n}; the field is corrupted"
        )
    return value == sentinel
