"""Deterministic random-number conventions.

Every stochastic component of the library (graph generators, workload
builders, failure-injection tests) accepts either a seed or a ready
:class:`numpy.random.Generator`; this module provides the single conversion
point so reproducibility rules live in one place.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` -> a fresh, OS-seeded generator,
    * ``int`` -> ``np.random.default_rng(seed)``,
    * a ``Generator`` -> returned unchanged (shared state, deliberate).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn(seed: SeedLike, index: int) -> np.random.Generator:
    """Derive an independent child generator for parallel workload streams.

    ``spawn(seed, i)`` with distinct ``i`` gives streams that are
    statistically independent and stable across runs for integer seeds.
    """
    if isinstance(seed, np.random.Generator):
        # Child streams of a live generator: jump via spawning new seeds.
        return np.random.default_rng(seed.integers(0, 2**63 - 1) + index)
    base = 0 if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence(entropy=base, spawn_key=(index,)))
