"""Uniform argument validation.

Every public entry point of the library validates its inputs through these
helpers so error messages are consistent and tests can assert on them.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_positive(name: str, value: int, minimum: int = 1) -> int:
    """Check that ``value`` is an integer ``>= minimum`` and return it.

    Accepts any integral type (including NumPy integers) but rejects bools,
    floats and other types.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_index(name: str, value: int, size: int) -> int:
    """Check that ``value`` is a valid index into a container of ``size``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not 0 <= value < size:
        raise IndexError(f"{name} must be in [0, {size}), got {value}")
    return int(value)


def check_square(name: str, matrix: np.ndarray) -> np.ndarray:
    """Check that ``matrix`` is a 2-D square NumPy array and return it."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"{name} must be a square 2-D array, got shape {matrix.shape}"
        )
    return matrix


def check_symmetric_binary(name: str, matrix: np.ndarray) -> np.ndarray:
    """Check that ``matrix`` is a square, symmetric, 0/1 adjacency matrix.

    The diagonal may be anything on input; callers normalise it.  Returns the
    matrix as ``np.int8``.
    """
    matrix = check_square(name, matrix)
    values = np.unique(matrix)
    if not np.isin(values, (0, 1)).all():
        raise ValueError(
            f"{name} must contain only 0/1 entries, found values {values[:10]}"
        )
    if not np.array_equal(matrix, matrix.T):
        raise ValueError(f"{name} must be symmetric (undirected graph)")
    return matrix.astype(np.int8)


def check_type(name: str, value: Any, expected: type) -> Any:
    """Check that ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
