"""Integer arithmetic helpers.

The paper counts iterations and sub-generations in terms of ``log n``; all of
those counts are integers, and for non-power-of-two ``n`` the correct reading
is the ceiling logarithm (enough doubling steps to cover ``n``).  These
helpers centralise that arithmetic so every module agrees on the same
definitions.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff ``value`` is a positive power of two.

    >>> [v for v in range(1, 20) if is_power_of_two(v)]
    [1, 2, 4, 8, 16]
    """
    return value > 0 and (value & (value - 1)) == 0


def floor_log2(value: int) -> int:
    """Return ``floor(log2(value))`` for a positive integer.

    >>> [floor_log2(v) for v in (1, 2, 3, 4, 7, 8)]
    [0, 1, 1, 2, 2, 3]
    """
    if value <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {value}")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer.

    This is the number of halving steps needed to reduce ``value`` items to
    one, and equivalently the number of doubling strides a tree reduction
    over ``value`` elements requires.

    >>> [ceil_log2(v) for v in (1, 2, 3, 4, 5, 8, 9)]
    [0, 1, 2, 2, 3, 3, 4]
    """
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {value}")
    return (value - 1).bit_length()


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two ``>= value``.

    >>> [next_power_of_two(v) for v in (1, 2, 3, 4, 5, 9)]
    [1, 2, 4, 4, 8, 16]
    """
    if value <= 0:
        raise ValueError(f"next_power_of_two requires a positive integer, got {value}")
    return 1 << ceil_log2(value)


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` for non-negative operands.

    Used by the Brent-scheduling layer of the PRAM simulator to compute how
    many virtual processors each physical processor must emulate.

    >>> [ceil_div(n, 4) for n in (0, 1, 4, 5, 8, 9)]
    [0, 1, 1, 2, 2, 3]
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def outer_iterations(n: int) -> int:
    """Number of outer iterations of Hirschberg's algorithm for ``n`` nodes.

    The component count at least halves per iteration, so ``ceil(log2 n)``
    iterations always suffice.  A single-node graph needs no iteration at
    all, but running zero iterations would skip initialisation bookkeeping in
    some callers, so we clamp to a minimum of one whenever ``n > 1`` and
    return 0 for ``n <= 1``.

    >>> [outer_iterations(n) for n in (1, 2, 3, 4, 8, 9)]
    [0, 1, 2, 2, 3, 4]
    """
    if n <= 1:
        return 0
    return ceil_log2(n)


def jump_iterations(n: int) -> int:
    """Number of pointer-jumping repetitions inside step 5 (``ceil(log2 n)``).

    >>> [jump_iterations(n) for n in (1, 2, 4, 5)]
    [0, 1, 2, 3]
    """
    if n <= 1:
        return 0
    return ceil_log2(n)


def reduction_subgenerations(n: int) -> int:
    """Number of sub-generations a row-minimum tree reduction over ``n``
    elements needs (generations 3, 7 of the GCA algorithm).

    >>> [reduction_subgenerations(n) for n in (1, 2, 3, 4, 8)]
    [0, 1, 2, 2, 3]
    """
    if n <= 1:
        return 0
    return ceil_log2(n)
