"""Shared low-level utilities for the reproduction library.

This package deliberately contains only small, dependency-free helpers:

* :mod:`repro.util.intmath` -- integer logarithms and power-of-two helpers
  used throughout the generation/iteration counting of the GCA algorithm.
* :mod:`repro.util.sentinels` -- the finite representation of the paper's
  "infinity" value used during the row-minimum reductions.
* :mod:`repro.util.validation` -- argument checking helpers that raise
  uniform, descriptive exceptions.
* :mod:`repro.util.formatting` -- plain-text table and matrix renderers used
  by the analysis reports and the benchmark harnesses.
* :mod:`repro.util.rng` -- a thin wrapper around :class:`numpy.random.Generator`
  providing deterministic seeding conventions.
"""

from repro.util.intmath import (
    ceil_div,
    ceil_log2,
    floor_log2,
    is_power_of_two,
    next_power_of_two,
)
from repro.util.sentinels import infinity_for
from repro.util.validation import (
    check_index,
    check_positive,
    check_square,
    check_symmetric_binary,
)

__all__ = [
    "ceil_div",
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "next_power_of_two",
    "infinity_for",
    "check_index",
    "check_positive",
    "check_square",
    "check_symmetric_binary",
]
