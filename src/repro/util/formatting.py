"""Plain-text rendering of tables and cell fields.

The benchmark harnesses print the same rows the paper's tables report and
render the Figure-3 access patterns as ASCII grids; this module holds the
shared renderers so every report looks the same.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 22], [333, 4]]))
      a |  b
    ----+---
      1 | 22
    333 |  4
    """
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([str(c) for c in row])
    widths = [max(len(r[col]) for r in str_rows) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.rjust(w) for h, w in zip(str_rows[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_matrix(
    matrix: np.ndarray,
    infinity: Optional[int] = None,
    highlight: Optional[np.ndarray] = None,
) -> str:
    """Render an integer matrix, optionally replacing ``infinity`` with "oo"
    and marking ``highlight`` (boolean mask) cells with a trailing ``*``.

    Used to print the D field generation by generation (Figure 3 style).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    if highlight is not None and highlight.shape != matrix.shape:
        raise ValueError(
            f"highlight shape {highlight.shape} != matrix shape {matrix.shape}"
        )

    def cell_text(r: int, c: int) -> str:
        v = matrix[r, c]
        text = "oo" if infinity is not None and v == infinity else str(v)
        if highlight is not None and highlight[r, c]:
            text += "*"
        return text

    texts = [
        [cell_text(r, c) for c in range(matrix.shape[1])]
        for r in range(matrix.shape[0])
    ]
    width = max(len(t) for row in texts for t in row)
    return "\n".join(" ".join(t.rjust(width) for t in row) for row in texts)


def render_histogram(pairs: Sequence[tuple], value_label: str = "delta") -> str:
    """Render a (count-of-cells, value) histogram like Table 1's read-access
    columns: ``"<#cells> cells with <value_label>=<value>"`` per line.
    """
    lines = []
    for count, value in pairs:
        lines.append(f"{count} cells with {value_label}={value}")
    return "\n".join(lines) if lines else f"no cells with any {value_label}"


def format_ratio(measured: float, predicted: float) -> str:
    """Format a measured/predicted comparison as ``"measured/predicted (xR)"``.

    ``predicted == 0`` yields "n/a" for the ratio rather than dividing.
    """
    if predicted == 0:
        return f"{measured}/0 (n/a)"
    return f"{measured}/{predicted} (x{measured / predicted:.3f})"
