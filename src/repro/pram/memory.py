"""PRAM shared memory with access-mode enforcement.

The paper observes that the GCA resembles the **CROW** PRAM -- concurrent
read, owner write: every processor may read any cell, but each memory
location is written only by its dedicated owner.  This module implements a
shared memory that *checks* such disciplines dynamically:

* ``EREW``  -- exclusive read, exclusive write;
* ``CREW``  -- concurrent read, exclusive write;
* ``CROW``  -- concurrent read, owner write (write exclusivity follows from
  ownership);
* ``CRCW``  -- concurrent read/write with a combining policy (``ARBITRARY``,
  ``PRIORITY`` = lowest processor id wins, ``MIN`` = minimum value wins).

Memory is organised as named integer arrays ("the constant A, the variables
C, T and the temporary variables ... stored in the common memory").  Reads
during a step see the state at the beginning of the step; writes are
buffered and committed when the step ends, which makes the simulator's step
semantics identical to the synchronous PRAM of the literature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pram.errors import (
    OwnershipError,
    ProgramError,
    ReadConflictError,
    WriteConflictError,
)
from repro.util.validation import check_positive


class AccessMode(enum.Enum):
    """PRAM access disciplines."""

    EREW = "EREW"
    CREW = "CREW"
    CROW = "CROW"
    CRCW = "CRCW"


class CombinePolicy(enum.Enum):
    """Concurrent-write resolution under CRCW."""

    ARBITRARY = "ARBITRARY"
    PRIORITY = "PRIORITY"
    MIN = "MIN"


Location = Tuple[str, int]
"""A shared-memory address: (array name, flat offset)."""


@dataclass
class StepAccessStats:
    """Access counts for one PRAM step (the analogue of the GCA's
    per-generation congestion accounting)."""

    reads_per_location: Dict[Location, int] = field(default_factory=dict)
    writes_per_location: Dict[Location, int] = field(default_factory=dict)

    @property
    def total_reads(self) -> int:
        return sum(self.reads_per_location.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes_per_location.values())

    @property
    def max_read_congestion(self) -> int:
        """Maximum concurrent reads of any one location this step."""
        return max(self.reads_per_location.values(), default=0)

    @property
    def max_write_congestion(self) -> int:
        return max(self.writes_per_location.values(), default=0)


class SharedMemory:
    """Named integer arrays with per-step access checking.

    Use :meth:`allocate` to create arrays, then hand the memory to a
    :class:`~repro.pram.machine.PRAM`; user step functions interact with it
    through the machine's :class:`~repro.pram.machine.StepContext`.
    """

    def __init__(self, mode: AccessMode = AccessMode.CREW,
                 combine: CombinePolicy = CombinePolicy.ARBITRARY):
        if not isinstance(mode, AccessMode):
            raise TypeError(f"mode must be an AccessMode, got {type(mode).__name__}")
        self._mode = mode
        self._combine = combine
        self._arrays: Dict[str, np.ndarray] = {}
        self._owners: Dict[str, Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def mode(self) -> AccessMode:
        """The enforced access discipline."""
        return self._mode

    def allocate(
        self,
        name: str,
        size: int,
        initial: object = 0,
        owners: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Create array ``name`` of ``size`` integers.

        ``owners`` assigns an owning processor id to each location (required
        for CROW writes to the array; ignored under other modes).
        """
        if name in self._arrays:
            raise ProgramError(f"array {name!r} already allocated")
        size = check_positive("size", size)
        arr = np.asarray(initial, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(size, int(arr), dtype=np.int64)
        else:
            arr = arr.astype(np.int64).ravel().copy()
            if arr.size != size:
                raise ProgramError(
                    f"initial data for {name!r} has {arr.size} elements, "
                    f"expected {size}"
                )
        self._arrays[name] = arr
        if owners is not None:
            owners = np.asarray(owners, dtype=np.int64).ravel().copy()
            if owners.size != size:
                raise ProgramError(
                    f"owner map for {name!r} has {owners.size} entries, "
                    f"expected {size}"
                )
            self._owners[name] = owners
        else:
            self._owners[name] = None
        return arr

    def array(self, name: str) -> np.ndarray:
        """Direct (un-checked) view of array ``name`` -- for setup and for
        reading results after a program has finished."""
        if name not in self._arrays:
            raise ProgramError(f"unknown array {name!r}; have {sorted(self._arrays)}")
        return self._arrays[name]

    def names(self) -> List[str]:
        """Allocated array names."""
        return sorted(self._arrays)

    # ------------------------------------------------------------------
    # step transaction protocol (driven by the PRAM machine)
    # ------------------------------------------------------------------
    def begin_step(self) -> "_StepTransaction":
        """Open a transaction: reads see current state, writes are buffered."""
        return _StepTransaction(self)

    def _commit(self, txn: "_StepTransaction") -> StepAccessStats:
        stats = StepAccessStats(
            reads_per_location=dict(txn.read_counts),
            writes_per_location={
                loc: len(writes) for loc, writes in txn.writes.items()
            },
        )
        # read-conflict checks
        if self._mode is AccessMode.EREW:
            for loc, count in txn.read_counts.items():
                if count > 1:
                    raise ReadConflictError(
                        f"{count} concurrent reads of {loc} under EREW"
                    )
        # write-conflict checks / combining
        for (name, offset), writes in txn.writes.items():
            if self._mode is AccessMode.CROW:
                owners = self._owners.get(name)
                for pid, _value in writes:
                    if owners is None:
                        raise OwnershipError(
                            f"array {name!r} has no owner map; CROW writes "
                            "require ownership"
                        )
                    if owners[offset] != pid:
                        raise OwnershipError(
                            f"processor {pid} wrote {name}[{offset}] owned "
                            f"by processor {int(owners[offset])}"
                        )
            if len(writes) > 1:
                if self._mode in (AccessMode.EREW, AccessMode.CREW, AccessMode.CROW):
                    pids = sorted(pid for pid, _ in writes)
                    raise WriteConflictError(
                        f"processors {pids} wrote {name}[{offset}] "
                        f"concurrently under {self._mode.value}"
                    )
                value = self._combine_writes(writes)
            else:
                value = writes[0][1]
            self._arrays[name][offset] = value
        return stats

    def _combine_writes(self, writes: List[Tuple[int, int]]) -> int:
        if self._combine is CombinePolicy.ARBITRARY:
            # Deterministic "arbitrary": highest processor id, so tests can
            # rely on the outcome while still exercising the policy switch.
            return max(writes)[1]
        if self._combine is CombinePolicy.PRIORITY:
            return min(writes)[1]
        if self._combine is CombinePolicy.MIN:
            return min(value for _pid, value in writes)
        raise ProgramError(f"unknown combine policy {self._combine}")


class _StepTransaction:
    """Collects the reads and buffered writes of one synchronous step."""

    __slots__ = ("memory", "read_counts", "writes", "snapshot")

    def __init__(self, memory: SharedMemory):
        self.memory = memory
        self.read_counts: Dict[Location, int] = {}
        self.writes: Dict[Location, List[Tuple[int, int]]] = {}
        # Copy-on-read snapshot is unnecessary: writes are buffered, so the
        # arrays themselves are immutable during the step.
        self.snapshot = memory._arrays

    def read(self, pid: int, name: str, offset: int) -> int:
        arr = self.snapshot.get(name)
        if arr is None:
            raise ProgramError(f"unknown array {name!r}")
        if not 0 <= offset < arr.size:
            raise ProgramError(
                f"processor {pid} read {name}[{offset}] out of range "
                f"[0, {arr.size})"
            )
        loc = (name, offset)
        self.read_counts[loc] = self.read_counts.get(loc, 0) + 1
        return int(arr[offset])

    def write(self, pid: int, name: str, offset: int, value: int) -> None:
        arr = self.snapshot.get(name)
        if arr is None:
            raise ProgramError(f"unknown array {name!r}")
        if not 0 <= offset < arr.size:
            raise ProgramError(
                f"processor {pid} wrote {name}[{offset}] out of range "
                f"[0, {arr.size})"
            )
        self.writes.setdefault((name, offset), []).append((pid, int(value)))

    def commit(self) -> StepAccessStats:
        return self.memory._commit(self)
