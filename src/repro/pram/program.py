"""Declarative PRAM programs and a library of classic building blocks.

The paper closes with "our future work will comprise the implementation of
more elaborate PRAM algorithms".  This module provides the scaffolding that
makes such programs convenient to express and account:

* :class:`Step` / :class:`Program` -- a program is a named sequence of
  parallel steps; each step declares *which* virtual processors are active
  (as a function of the instance size) and *what* each does.  Programs run
  on any :class:`~repro.pram.machine.PRAM`, inheriting its access-mode
  checking and cost accounting.
* a library of the standard PRAM primitives Hirschberg-style algorithms
  build on: parallel **reduction**, **prefix sums** (Hillis-Steele) and
  **list ranking** by pointer jumping -- each returning both the result
  and the machine for cost inspection.

These are genuine CREW programs: the tests run them under access-mode
enforcement and assert both results and step counts (``O(log n)`` depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.pram.machine import PRAM, StepContext
from repro.pram.memory import AccessMode, SharedMemory
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Step:
    """One parallel step of a program.

    Attributes
    ----------
    name:
        Label used in the cost accounting.
    pids:
        The active virtual processor ids.
    body:
        The per-processor step function.
    """

    name: str
    pids: Sequence[int]
    body: Callable[[StepContext], None]


@dataclass
class Program:
    """A named sequence of parallel steps."""

    name: str
    steps: List[Step] = field(default_factory=list)

    def add(self, name: str, pids: Iterable[int],
            body: Callable[[StepContext], None]) -> "Program":
        """Append a step (chainable)."""
        self.steps.append(Step(name=name, pids=list(pids), body=body))
        return self

    def run(self, machine: PRAM) -> PRAM:
        """Execute all steps in order on ``machine``."""
        for step in self.steps:
            machine.parallel_step(step.pids, step.body,
                                  label=f"{self.name}.{step.name}")
        return machine

    @property
    def depth(self) -> int:
        """Number of parallel steps (the program's time on enough PEs)."""
        return len(self.steps)

    @property
    def work(self) -> int:
        """Total operations (sum of active processors over steps)."""
        return sum(len(s.pids) for s in self.steps)


# ----------------------------------------------------------------------
# library programs
# ----------------------------------------------------------------------

def reduction_program(n: int, op_name: str = "min") -> Program:
    """Tree reduction of ``X[0..n)`` into ``X[0]`` in ``ceil(log2 n)`` steps.

    ``op_name``: ``"min"``, ``"max"`` or ``"sum"``.
    """
    check_positive("n", n)
    ops = {
        "min": min,
        "max": max,
        "sum": lambda a, b: a + b,
    }
    if op_name not in ops:
        raise ValueError(f"op_name must be one of {sorted(ops)}, got {op_name!r}")
    op = ops[op_name]
    program = Program(name=f"reduce_{op_name}")
    for s in range(ceil_log2(n) if n > 1 else 0):
        stride = 1 << s
        active = [i for i in range(0, n, 2 * stride) if i + stride < n]

        def body(ctx: StepContext, _stride=stride, _op=op) -> None:
            own = ctx.read("X", ctx.pid)
            partner = ctx.read("X", ctx.pid + _stride)
            ctx.write("X", ctx.pid, _op(own, partner))

        program.add(f"level{s}", active, body)
    return program


def run_reduction(values: Sequence[int], op_name: str = "min",
                  processors: Optional[int] = None,
                  mode: AccessMode = AccessMode.CREW) -> Tuple[int, PRAM]:
    """Reduce ``values`` on a fresh PRAM; returns ``(result, machine)``."""
    values = list(values)
    n = len(values)
    check_positive("n", n)
    memory = SharedMemory(mode)
    memory.allocate("X", n, initial=values, owners=np.arange(n))
    machine = PRAM(processors=processors or max(1, n), memory=memory)
    reduction_program(n, op_name).run(machine)
    return int(memory.array("X")[0]), machine


def prefix_sum_program(n: int) -> Program:
    """Inclusive prefix sums by the Hillis-Steele doubling scheme.

    ``X[i] <- X[i - 2^s] + X[i]`` for ``s = 0 .. ceil(log2 n) - 1``;
    depth ``ceil(log2 n)``, work ``O(n log n)`` (the classic non-work-
    optimal variant, chosen for its GCA-like obliviousness).
    """
    check_positive("n", n)
    program = Program(name="prefix_sum")
    for s in range(ceil_log2(n) if n > 1 else 0):
        stride = 1 << s
        active = list(range(stride, n))

        def body(ctx: StepContext, _stride=stride) -> None:
            left = ctx.read("X", ctx.pid - _stride)
            own = ctx.read("X", ctx.pid)
            ctx.write("X", ctx.pid, left + own)

        program.add(f"level{s}", active, body)
    return program


def run_prefix_sum(values: Sequence[int],
                   processors: Optional[int] = None,
                   mode: AccessMode = AccessMode.CREW) -> Tuple[List[int], PRAM]:
    """Prefix sums of ``values``; returns ``(sums, machine)``."""
    values = list(values)
    n = len(values)
    check_positive("n", n)
    memory = SharedMemory(mode)
    memory.allocate("X", n, initial=values, owners=np.arange(n))
    machine = PRAM(processors=processors or max(1, n), memory=memory)
    prefix_sum_program(n).run(machine)
    return memory.array("X").tolist(), machine


def list_ranking_program(n: int) -> Program:
    """Wyllie's list ranking by pointer jumping.

    Input: ``NEXT[i]`` = successor in a linked list (tail points to
    itself), ``RANK[i]`` initialised to 0 for the tail and 1 otherwise.
    After ``ceil(log2 n)`` jumping steps ``RANK[i]`` is the distance of
    ``i`` from the tail.  This is the same pointer-jumping engine as the
    GCA's generation 10, in PRAM form.
    """
    check_positive("n", n)
    program = Program(name="list_ranking")
    for s in range(ceil_log2(n) if n > 1 else 0):

        def body(ctx: StepContext) -> None:
            nxt = ctx.read("NEXT", ctx.pid)
            own_rank = ctx.read("RANK", ctx.pid)
            ctx.write("RANK", ctx.pid, own_rank + ctx.read("RANK", nxt))
            ctx.write("NEXT", ctx.pid, ctx.read("NEXT", nxt))

        program.add(f"jump{s}", range(n), body)
    return program


def run_list_ranking(successors: Sequence[int],
                     processors: Optional[int] = None,
                     mode: AccessMode = AccessMode.CREW) -> Tuple[List[int], PRAM]:
    """Rank the linked list given by ``successors`` (tail self-loops).

    Returns ``(ranks, machine)`` where ``ranks[i]`` = hops from ``i`` to
    the tail.
    """
    successors = list(successors)
    n = len(successors)
    check_positive("n", n)
    for i, s in enumerate(successors):
        if not 0 <= s < n:
            raise ValueError(f"successor of {i} out of range: {s}")
    ranks = [0 if successors[i] == i else 1 for i in range(n)]
    memory = SharedMemory(mode)
    memory.allocate("NEXT", n, initial=successors, owners=np.arange(n))
    memory.allocate("RANK", n, initial=ranks, owners=np.arange(n))
    machine = PRAM(processors=processors or max(1, n), memory=memory)
    list_ranking_program(n).run(machine)
    return memory.array("RANK").tolist(), machine
