"""A synchronous PRAM simulator with access-mode enforcement.

The paper frames the GCA as an implementation platform for CROW PRAM
algorithms; this package provides the PRAM side of that bridge:

* :class:`~repro.pram.memory.SharedMemory` -- named integer arrays with
  dynamic EREW/CREW/CROW/CRCW checking and per-step congestion statistics;
* :class:`~repro.pram.machine.PRAM` -- synchronous parallel steps in the
  ``for all i in parallel do`` style, with buffered writes;
* :mod:`~repro.pram.brent` -- Brent-scheduling of ``P(n)`` virtual PEs onto
  ``p`` physical PEs;
* :mod:`~repro.pram.accounting` -- time / work / cost bookkeeping for the
  work-optimality discussion of Section 3.
"""

from repro.pram.accounting import CostModel, StepCharge
from repro.pram.brent import (
    BrentAssignment,
    block_schedule,
    brent_time_bound,
    round_robin_schedule,
    simulated_step_time,
)
from repro.pram.errors import (
    OwnershipError,
    PRAMError,
    ProgramError,
    ReadConflictError,
    WriteConflictError,
)
from repro.pram.machine import PRAM, StepContext
from repro.pram.memory import AccessMode, CombinePolicy, SharedMemory
from repro.pram.program import (
    Program,
    Step,
    list_ranking_program,
    prefix_sum_program,
    reduction_program,
    run_list_ranking,
    run_prefix_sum,
    run_reduction,
)

__all__ = [
    "PRAM",
    "StepContext",
    "Program",
    "Step",
    "list_ranking_program",
    "prefix_sum_program",
    "reduction_program",
    "run_list_ranking",
    "run_prefix_sum",
    "run_reduction",
    "SharedMemory",
    "AccessMode",
    "CombinePolicy",
    "CostModel",
    "StepCharge",
    "BrentAssignment",
    "block_schedule",
    "brent_time_bound",
    "round_robin_schedule",
    "simulated_step_time",
    "PRAMError",
    "ProgramError",
    "ReadConflictError",
    "WriteConflictError",
    "OwnershipError",
]
