"""Work/time/cost accounting for PRAM executions.

PRAM algorithmics evaluates an algorithm by its parallel time ``t_p``, its
processor count ``P`` and its work ``w = t_p * P``; an algorithm is
*work-optimal* when ``w = Theta(t_s)``, the sequential complexity.  The
paper contrasts this with the GCA cost model, where cells are cheap and the
``n^2`` memory dominates.  This module provides the PRAM side of that
comparison; :mod:`repro.analysis.comparison` joins both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class StepCharge:
    """The cost of one parallel step."""

    label: Optional[str]
    virtual_processors: int
    time_units: int

    @property
    def work(self) -> int:
        """Operations performed in this step (one per virtual processor)."""
        return self.virtual_processors


@dataclass
class CostModel:
    """Accumulates step charges for one machine run."""

    processors: int
    charges: List[StepCharge] = field(default_factory=list)

    def charge_step(
        self,
        virtual_processors: int,
        time_units: int,
        label: Optional[str] = None,
    ) -> None:
        """Record one step with ``virtual_processors`` active PEs taking
        ``time_units`` (already Brent-adjusted by the machine)."""
        if virtual_processors < 0:
            raise ValueError(f"virtual_processors must be >= 0, got {virtual_processors}")
        if time_units < 1:
            raise ValueError(f"time_units must be >= 1, got {time_units}")
        self.charges.append(
            StepCharge(
                label=label,
                virtual_processors=virtual_processors,
                time_units=time_units,
            )
        )

    @property
    def steps(self) -> int:
        """Number of parallel steps executed."""
        return len(self.charges)

    @property
    def time(self) -> int:
        """Total parallel time in (Brent-adjusted) step units."""
        return sum(c.time_units for c in self.charges)

    @property
    def work(self) -> int:
        """Total operations executed (sum of active virtual processors)."""
        return sum(c.work for c in self.charges)

    @property
    def cost(self) -> int:
        """The processor-time product ``p * t`` (the classical "cost")."""
        return self.processors * self.time

    def speedup(self, sequential_time: int) -> float:
        """Speedup over a sequential algorithm taking ``sequential_time``."""
        if self.time == 0:
            raise ZeroDivisionError("no steps executed yet")
        return sequential_time / self.time

    def efficiency(self, sequential_time: int) -> float:
        """Efficiency = speedup / processors (1.0 is work-optimal use)."""
        return self.speedup(sequential_time) / self.processors

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"p={self.processors} steps={self.steps} time={self.time} "
            f"work={self.work} cost={self.cost}"
        )
