"""The synchronous PRAM machine.

A :class:`PRAM` owns a :class:`~repro.pram.memory.SharedMemory` and executes
*parallel steps*: in one step, every active processor runs the same step
function (SIMD-style, matching the original formulation of Hirschberg's
algorithm for vector machines).  All reads observe the memory state at the
beginning of the step; all writes commit atomically at the end; access-mode
violations surface as exceptions at commit time.

Processor activity is expressed with index ranges so programs read like the
paper's ``for all i in parallel do`` notation::

    machine.parallel_step(range(n), body)

Accounting (:class:`~repro.pram.accounting.CostModel`) charges one time unit
per step and one unit of work per active processor, plus the Brent factor
when more virtual processors are requested than the machine physically has.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.pram.accounting import CostModel
from repro.pram.errors import ProgramError
from repro.pram.memory import AccessMode, SharedMemory, StepAccessStats
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive


class StepContext:
    """The façade a step function uses to touch shared memory.

    One context is created per (virtual) processor per step.  It records
    every access for congestion accounting and routes reads/writes through
    the step transaction so synchronous semantics hold.
    """

    __slots__ = ("pid", "_txn")

    def __init__(self, pid: int, txn) -> None:
        self.pid = pid
        self._txn = txn

    def read(self, name: str, offset: int) -> int:
        """Read ``name[offset]`` (value as of the step's beginning)."""
        return self._txn.read(self.pid, name, offset)

    def write(self, name: str, offset: int, value: int) -> None:
        """Write ``name[offset]`` (visible after the step commits)."""
        self._txn.write(self.pid, name, offset, value)


StepFunction = Callable[[StepContext], None]


class PRAM:
    """A synchronous PRAM with ``processors`` physical processors.

    Parameters
    ----------
    processors:
        Physical processor count ``p``.  Programs may request more *virtual*
        processors per step; Brent's theorem is applied automatically: a
        step with ``v`` virtual processors costs ``ceil(v / p)`` time units.
    memory:
        The shared memory; defaults to a fresh CREW memory.
    """

    def __init__(self, processors: int, memory: Optional[SharedMemory] = None):
        self._processors = check_positive("processors", processors)
        self.memory = memory if memory is not None else SharedMemory(AccessMode.CREW)
        self.cost = CostModel(processors=self._processors)
        self.step_stats: List[StepAccessStats] = []

    @property
    def processors(self) -> int:
        """Physical processor count ``p``."""
        return self._processors

    def parallel_step(
        self,
        pids: Iterable[int],
        body: StepFunction,
        label: Optional[str] = None,
    ) -> StepAccessStats:
        """Run ``body`` once per virtual processor id in ``pids``, as one
        synchronous step.

        Returns the step's access statistics.  Raises the shared memory's
        conflict errors if the program violates the access mode.
        """
        pid_list = list(pids)
        if any(p < 0 for p in pid_list):
            raise ProgramError(f"negative processor ids in step: {pid_list[:5]}")
        txn = self.memory.begin_step()
        for pid in pid_list:
            body(StepContext(pid, txn))
        stats = txn.commit()
        virtual = len(pid_list)
        self.cost.charge_step(
            virtual_processors=virtual,
            time_units=max(1, ceil_div(virtual, self._processors)),
            label=label,
        )
        self.step_stats.append(stats)
        return stats

    def sequential(self, body: Callable[[], None]) -> None:
        """Run host-side setup code that is *not* part of the parallel cost
        (input loading etc.).  Provided for readability of programs."""
        body()

    def __repr__(self) -> str:
        return (
            f"PRAM(p={self._processors}, mode={self.memory.mode.value}, "
            f"steps={len(self.step_stats)})"
        )
