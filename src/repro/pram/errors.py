"""Exception hierarchy of the PRAM simulator."""

from __future__ import annotations


class PRAMError(Exception):
    """Base class for PRAM model violations."""


class ReadConflictError(PRAMError):
    """Two processors read the same location in one step under EREW."""


class WriteConflictError(PRAMError):
    """Two processors wrote the same location in one step under a model
    that forbids concurrent writes (EREW/CREW/CROW)."""


class OwnershipError(PRAMError):
    """A processor wrote a location it does not own under CROW."""


class ProgramError(PRAMError):
    """A PRAM program is malformed (unknown array, bad processor count...)."""
