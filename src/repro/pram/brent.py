"""Brent-scheduling: simulating many virtual PEs on few physical ones.

Brent's theorem states that an algorithm performing ``w`` operations in
``t`` parallel steps runs on ``p`` processors in at most ``w/p + t`` steps.
The paper invokes it for the GCA mapping: "each cell shall sequentially
simulate ``P(n)/p`` processing elements round robin".

This module provides both the static partitioning (which virtual processor
runs on which physical one, in which sub-round) and the timing arithmetic;
:class:`~repro.pram.machine.PRAM` uses the arithmetic implicitly, while the
explicit schedule feeds the GCA-vs-PRAM comparison and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.intmath import ceil_div
from repro.util.validation import check_positive


@dataclass(frozen=True)
class BrentAssignment:
    """Where and when a virtual processor executes."""

    virtual_pid: int
    physical_pid: int
    sub_round: int


def round_robin_schedule(virtual: int, physical: int) -> List[BrentAssignment]:
    """Round-robin assignment of ``virtual`` PEs to ``physical`` PEs.

    Virtual PE ``v`` runs on physical PE ``v % physical`` during sub-round
    ``v // physical`` -- exactly the paper's "round robin" prescription.

    >>> [(a.virtual_pid, a.physical_pid, a.sub_round)
    ...  for a in round_robin_schedule(5, 2)]
    [(0, 0, 0), (1, 1, 0), (2, 0, 1), (3, 1, 1), (4, 0, 2)]
    """
    if virtual < 0:
        raise ValueError(f"virtual must be >= 0, got {virtual}")
    check_positive("physical", physical)
    return [
        BrentAssignment(
            virtual_pid=v,
            physical_pid=v % physical,
            sub_round=v // physical,
        )
        for v in range(virtual)
    ]


def block_schedule(virtual: int, physical: int) -> List[BrentAssignment]:
    """Blocked assignment: physical PE ``q`` runs the contiguous slice of
    virtual PEs ``[q * ceil(v/p), ...)``.  Blocked layouts preserve memory
    locality when virtual PEs own contiguous shared-memory regions.
    """
    if virtual < 0:
        raise ValueError(f"virtual must be >= 0, got {virtual}")
    check_positive("physical", physical)
    per = ceil_div(virtual, physical) if virtual else 0
    result = []
    for v in range(virtual):
        q = v // per if per else 0
        result.append(
            BrentAssignment(virtual_pid=v, physical_pid=q, sub_round=v % per)
        )
    return result


def simulated_step_time(virtual: int, physical: int) -> int:
    """Time units one parallel step of ``virtual`` PEs takes on ``physical``
    PEs: ``ceil(virtual / physical)`` (minimum 1 even for an empty step,
    because the synchronisation barrier itself costs a unit).

    >>> [simulated_step_time(v, 4) for v in (0, 1, 4, 5, 8)]
    [1, 1, 1, 2, 2]
    """
    if virtual < 0:
        raise ValueError(f"virtual must be >= 0, got {virtual}")
    check_positive("physical", physical)
    return max(1, ceil_div(virtual, physical))


def brent_time_bound(work: int, depth: int, physical: int) -> int:
    """Brent's upper bound ``ceil(work / p) + depth`` on simulated time.

    >>> brent_time_bound(100, 10, 10)
    20
    """
    if work < 0 or depth < 0:
        raise ValueError("work and depth must be >= 0")
    check_positive("physical", physical)
    return ceil_div(work, physical) + depth
