"""Analysis toolkit: the quantitative reproductions of Tables 1/2 and the
complexity and cost-model claims.

* :mod:`~repro.analysis.congestion` -- Table 1 (active cells, reads, δ);
* :mod:`~repro.analysis.complexity` -- Table 2 and the total-generation
  bound ``1 + log n (3 log n + 8)``;
* :mod:`~repro.analysis.comparison` -- GCA vs PRAM vs sequential costs and
  engine wall-clock timings;
* :mod:`~repro.analysis.report` -- text-table rendering for the benches.
"""

from repro.analysis.comparison import (
    ModelRow,
    TimingRow,
    compare_models,
    predicted_comparison,
    time_engines,
)
from repro.analysis.complexity import (
    Table2Row,
    TotalGenerations,
    compare_table2,
    gca_cells,
    gca_time,
    gca_work,
    measured_generations_per_step,
    measured_total,
    pram_work_optimal_processors,
    predicted_table2,
    predicted_total,
    schedule_total,
    sequential_time,
)
from repro.analysis.hashing import (
    CongestionProfile,
    UniversalHash,
    adversarial_mapping,
    aware_mapping,
    compare_mappings,
    direct_mapping,
    mapping_congestion,
)
from repro.analysis.congestion import (
    MeasuredRow,
    Table1Comparison,
    Table1Row,
    compare_table1,
    exact_expected_table1,
    measured_table1,
    paper_table1,
)
from repro.analysis.shm import (
    SharedArray,
    SharedArrayRef,
    SharedEdgeListRef,
    SharedWorkspace,
    attach_edge_list,
    share_edge_list,
)
from repro.analysis.sweep import (
    ENGINES,
    SPARSE_ENGINES,
    WORKLOADS,
    RunRecord,
    SparseSweepSpec,
    SweepSpec,
    dumps_records,
    load_records,
    loads_records,
    run_sparse_sweep,
    run_sweep,
    save_records,
    summarize,
)
from repro.analysis.report import (
    render_model_comparison,
    render_table1,
    render_table2,
    render_timings,
    render_totals,
)

__all__ = [
    "ModelRow",
    "TimingRow",
    "compare_models",
    "predicted_comparison",
    "time_engines",
    "Table2Row",
    "TotalGenerations",
    "compare_table2",
    "gca_cells",
    "gca_time",
    "gca_work",
    "measured_generations_per_step",
    "measured_total",
    "pram_work_optimal_processors",
    "predicted_table2",
    "predicted_total",
    "schedule_total",
    "sequential_time",
    "CongestionProfile",
    "UniversalHash",
    "adversarial_mapping",
    "aware_mapping",
    "compare_mappings",
    "direct_mapping",
    "mapping_congestion",
    "MeasuredRow",
    "Table1Comparison",
    "Table1Row",
    "compare_table1",
    "exact_expected_table1",
    "measured_table1",
    "paper_table1",
    "SharedArray",
    "SharedArrayRef",
    "SharedEdgeListRef",
    "SharedWorkspace",
    "attach_edge_list",
    "share_edge_list",
    "ENGINES",
    "SPARSE_ENGINES",
    "WORKLOADS",
    "RunRecord",
    "SparseSweepSpec",
    "SweepSpec",
    "dumps_records",
    "load_records",
    "loads_records",
    "run_sparse_sweep",
    "run_sweep",
    "save_records",
    "summarize",
    "render_model_comparison",
    "render_table1",
    "render_table2",
    "render_timings",
    "render_totals",
]
