"""Declarative experiment sweeps for the benchmark harness.

The reproduction benches each regenerate one table/figure; this module
provides the generic machinery for *parameter sweeps* across them:

* :class:`SweepSpec` -- a declarative grid (sizes x densities x engines x
  seeds) with a workload family;
* :func:`run_sweep` -- executes the grid, verifying every result against
  the union-find oracle, timing the engine, and collecting the
  model-level metrics (generations, work, peak congestion) where the
  engine exposes them; ``jobs=N`` fans the grid cells out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* the ``"batched"`` engine -- groups a cell's seeds into **one**
  :class:`~repro.core.batched.BatchedGCA` call, so the sweep measures the
  throughput path the same harness otherwise measures per graph;
* :class:`SparseSweepSpec` + :func:`run_sparse_sweep` -- the sparse-scale
  counterpart: workloads are :class:`~repro.hirschberg.edgelist
  .EdgeListGraph` instances placed in **shared memory**
  (:mod:`repro.analysis.shm`), so ``jobs=N`` workers attach zero-copy
  views instead of pickling multi-million-entry edge arrays through the
  process pipe, and write their label vectors into pre-allocated shared
  slots the parent verifies (union-find oracle at small ``n``,
  cross-engine agreement at scale);
* :class:`RunRecord` + JSON (de)serialisation -- archive-stable records
  so sweeps can be compared across machines/runs;
* :func:`summarize` -- aggregation into printable rows (median seconds
  per (engine, n)).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.shm import (
    SharedArray,
    SharedArrayRef,
    SharedEdgeListRef,
    SharedWorkspace,
    attach_edge_list,
    share_edge_list,
)
from repro.core.batched import BatchedGCA
from repro.core.machine import connected_components_interpreter
from repro.core.row_machine import RowGCA
from repro.core.vectorized import run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels, components_union_find
from repro.graphs.generators import (
    path_graph,
    planted_components,
    random_graph,
    random_spanning_tree,
)
from repro.graphs.union_find import UnionFind
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    connected_components_edgelist,
    random_edge_list,
)
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.hirschberg.reference import connected_components_reference

PathLike = Union[str, Path]

#: Workload families available to sweeps: name -> (n, density, seed) -> graph.
WORKLOADS: Dict[str, Callable[[int, float, int], AdjacencyMatrix]] = {
    "random": lambda n, p, seed: random_graph(n, p, seed=seed),
    "path": lambda n, p, seed: path_graph(n),
    "tree": lambda n, p, seed: random_spanning_tree(n, seed=seed),
    "planted": lambda n, p, seed: planted_components(
        [max(1, n // 4)] * 4, intra_p=max(p, 0.2), seed=seed
    ),
}


def _run_engine(name: str, graph: AdjacencyMatrix) -> Dict[str, Optional[int]]:
    """Execute one engine; returns labels plus engine-native metrics."""
    if name == "vectorized":
        res = run_vectorized(graph)
        return {"labels": res.labels, "generations": res.total_generations,
                "work": None, "peak_congestion": None}
    if name == "vectorized_early":
        res = run_vectorized(graph, early_exit=True)
        return {"labels": res.labels, "generations": res.total_generations,
                "work": None, "peak_congestion": None}
    if name == "interpreter":
        res = connected_components_interpreter(graph)
        return {"labels": res.labels,
                "generations": res.total_generations,
                "work": res.access_log.total_active,
                "peak_congestion": res.access_log.peak_congestion}
    if name == "reference":
        return {"labels": connected_components_reference(graph),
                "generations": None, "work": None, "peak_congestion": None}
    if name == "pram":
        res = hirschberg_on_pram(graph)
        return {"labels": res.labels, "generations": res.parallel_steps,
                "work": res.work, "peak_congestion": res.peak_read_congestion}
    if name == "row":
        res = RowGCA(graph).run()
        return {"labels": res.labels, "generations": res.total_generations,
                "work": res.access_log.total_active,
                "peak_congestion": res.access_log.peak_congestion}
    if name == "unionfind":
        return {"labels": components_union_find(graph),
                "generations": None, "work": None, "peak_congestion": None}
    if name == "edgelist":
        res = connected_components_edgelist(EdgeListGraph.from_adjacency(graph))
        return {"labels": res.labels, "generations": res.iterations,
                "work": None, "peak_congestion": None}
    if name == "contracting":
        res = connected_components_contracting(
            EdgeListGraph.from_adjacency(graph)
        )
        return {"labels": res.labels, "generations": res.iterations,
                "work": res.total_work, "peak_congestion": None}
    if name == "auto":
        from repro.core.api import connected_components

        res = connected_components(graph, engine="auto")
        return {"labels": res.labels, "generations": None,
                "work": None, "peak_congestion": None}
    raise ValueError(f"unknown engine {name!r}")


#: Engines selectable in sweeps.  ``batched`` is special: it executes all
#: of a cell's seeds in one :class:`~repro.core.batched.BatchedGCA` call.
ENGINES = ("vectorized", "vectorized_early", "interpreter", "reference",
           "pram", "row", "unionfind", "batched", "edgelist", "contracting",
           "auto")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid."""

    name: str
    sizes: Sequence[int]
    engines: Sequence[str] = ("vectorized", "reference", "unionfind")
    densities: Sequence[float] = (0.1,)
    workload: str = "random"
    seeds: Sequence[int] = (0,)

    def validate(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; have {sorted(WORKLOADS)}"
            )
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
        if not self.sizes:
            raise ValueError("sizes must be non-empty")

    @property
    def run_count(self) -> int:
        return (len(self.sizes) * len(self.engines) * len(self.densities)
                * len(self.seeds))


@dataclass
class RunRecord:
    """One (engine, workload-instance) execution's outcome."""

    sweep: str
    engine: str
    workload: str
    n: int
    density: float
    seed: int
    seconds: float
    correct: bool
    generations: Optional[int] = None
    work: Optional[int] = None
    peak_congestion: Optional[int] = None
    batch_size: Optional[int] = None
    #: Undirected edge count (recorded by sparse sweeps, where density is
    #: a derived quantity rather than a grid parameter).
    m: Optional[int] = None
    #: The engine ``"auto"`` dispatched to (sparse sweeps only).
    resolved_engine: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _run_cell(args: Tuple[SweepSpec, int, float]) -> List[RunRecord]:
    """Execute one (n, density) grid cell: every seed on every engine.

    Top-level (rather than a closure) so ``jobs=N`` can ship cells to a
    :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    spec, n, density = args
    instances = []
    for seed in spec.seeds:
        graph = WORKLOADS[spec.workload](n, density, seed)
        instances.append((seed, graph, canonical_labels(graph)))
    records: List[RunRecord] = []
    for engine in spec.engines:
        if engine == "batched":
            graphs = [graph for _, graph, _ in instances]
            start = time.perf_counter()
            result = BatchedGCA(graphs).run()
            elapsed = time.perf_counter() - start
            generations = result.generations_run()
            for slot, (seed, graph, oracle) in enumerate(instances):
                records.append(
                    RunRecord(
                        sweep=spec.name,
                        engine=engine,
                        workload=spec.workload,
                        n=graph.n,
                        density=density,
                        seed=seed,
                        seconds=elapsed / len(instances),
                        correct=bool(
                            np.array_equal(result.labels[slot], oracle)
                        ),
                        generations=int(generations[slot]),
                        batch_size=result.batch_size,
                    )
                )
            continue
        for seed, graph, oracle in instances:
            start = time.perf_counter()
            result = _run_engine(engine, graph)
            elapsed = time.perf_counter() - start
            records.append(
                RunRecord(
                    sweep=spec.name,
                    engine=engine,
                    workload=spec.workload,
                    n=graph.n,
                    density=density,
                    seed=seed,
                    seconds=elapsed,
                    correct=bool(np.array_equal(result["labels"], oracle)),
                    generations=result["generations"],
                    work=result["work"],
                    peak_congestion=result["peak_congestion"],
                )
            )
    return records


def run_sweep(spec: SweepSpec, jobs: int = 1) -> List[RunRecord]:
    """Execute the sweep grid; every run is oracle-verified.

    Parameters
    ----------
    spec:
        The declarative grid.
    jobs:
        Number of worker processes.  ``1`` (default) runs in-process;
        ``N > 1`` distributes the (n, density) grid cells over a
        :class:`~concurrent.futures.ProcessPoolExecutor` (record order is
        preserved; timings then reflect a loaded machine).
    """
    spec.validate()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cells = [(spec, n, density) for n in spec.sizes for density in spec.densities]
    if jobs == 1 or len(cells) == 1:
        parts = [_run_cell(cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            parts = list(pool.map(_run_cell, cells))
    return [record for part in parts for record in part]


# ----------------------------------------------------------------------
# sparse sweeps over shared memory
# ----------------------------------------------------------------------

#: Engines selectable in sparse sweeps (all consume an
#: :class:`~repro.hirschberg.edgelist.EdgeListGraph` directly).
SPARSE_ENGINES = ("edgelist", "contracting", "auto")


@dataclass(frozen=True)
class SparseSweepSpec:
    """A sweep grid over sparse random edge lists.

    Workload instances are ``random_edge_list(n, round(edge_factor * n))``
    graphs; ``edge_factor`` replaces the dense grid's density axis
    because at sparse scale ``m/n`` -- not ``m / (n choose 2)`` -- is the
    knob that stays meaningful as ``n`` grows.
    """

    name: str
    sizes: Sequence[int]
    edge_factors: Sequence[float] = (2.0,)
    engines: Sequence[str] = ("edgelist", "contracting")
    seeds: Sequence[int] = (0,)
    #: Largest ``n`` still verified against the union-find oracle; above
    #: it the engines are cross-checked against each other instead (the
    #: Python-loop oracle would dominate the sweep's wall clock).
    oracle_max_n: int = 50_000

    def validate(self) -> None:
        for engine in self.engines:
            if engine not in SPARSE_ENGINES:
                raise ValueError(
                    f"unknown sparse engine {engine!r}; have {SPARSE_ENGINES}"
                )
        if not self.sizes:
            raise ValueError("sizes must be non-empty")
        if not self.engines:
            raise ValueError("engines must be non-empty")
        for factor in self.edge_factors:
            if factor < 0:
                raise ValueError(f"edge_factor must be >= 0, got {factor}")

    @property
    def run_count(self) -> int:
        return (len(self.sizes) * len(self.edge_factors) * len(self.engines)
                * len(self.seeds))


def _run_sparse_task(
    task: Tuple[str, SharedEdgeListRef, SharedArrayRef]
) -> Dict[str, object]:
    """Execute one (engine, shared graph) run inside a worker process.

    Attaches zero-copy views of the parent's edge arrays, solves, writes
    the label vector into the pre-allocated shared slot, and returns only
    scalars -- no array crosses the process boundary in either direction.
    Top-level so ``jobs=N`` can ship it to a ProcessPoolExecutor.
    """
    engine, graph_ref, labels_ref = task
    graph, handles = attach_edge_list(graph_ref)
    out = SharedArray.attach(labels_ref)
    try:
        start = time.perf_counter()
        if engine == "edgelist":
            labels = connected_components_edgelist(graph).labels
            resolved = engine
        elif engine == "contracting":
            labels = connected_components_contracting(graph).labels
            resolved = engine
        elif engine == "auto":
            from repro.core.api import connected_components

            res = connected_components(graph, engine="auto")
            labels, resolved = res.labels, res.method
        else:
            raise ValueError(f"unknown sparse engine {engine!r}")
        elapsed = time.perf_counter() - start
        out.array[...] = labels
    finally:
        out.close()
        for handle in handles:
            handle.close()
    return {"engine": engine, "resolved": resolved, "seconds": elapsed}


def run_sparse_sweep(spec: SparseSweepSpec, jobs: int = 1) -> List[RunRecord]:
    """Execute a sparse sweep; every run is verified.

    The parent generates each workload once and publishes it in shared
    memory; workers (``jobs > 1``) attach zero-copy views and deposit
    their label vectors in shared result slots.  Verification happens in
    the parent while the blocks are still mapped: against the union-find
    oracle up to ``spec.oracle_max_n``, by cross-engine agreement (first
    engine in ``spec.engines`` is the baseline) beyond it.
    """
    spec.validate()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    instances = []
    for n in spec.sizes:
        for factor in spec.edge_factors:
            for seed in spec.seeds:
                graph = random_edge_list(
                    n, max(0, int(round(factor * n))), seed=seed
                )
                instances.append((seed, graph))
    records: List[RunRecord] = []
    with SharedWorkspace() as workspace:
        tasks = []
        slots = []
        for idx, (_seed, graph) in enumerate(instances):
            graph_ws, graph_ref = share_edge_list(graph)
            workspace.blocks.extend(graph_ws.blocks)
            for engine in spec.engines:
                slot = workspace.zeros((graph.n,), np.int64)
                tasks.append((engine, graph_ref, slot.ref))
                slots.append((idx, engine, slot))
        if jobs == 1 or len(tasks) == 1:
            outcomes = [_run_sparse_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
                outcomes = list(pool.map(_run_sparse_task, tasks))

        oracles: Dict[int, np.ndarray] = {}
        baselines: Dict[int, np.ndarray] = {}
        for (idx, engine, slot), outcome in zip(slots, outcomes):
            seed, graph = instances[idx]
            labels = slot.array
            if graph.n <= spec.oracle_max_n:
                if idx not in oracles:
                    uf = UnionFind(graph.n)
                    half = graph.src.size // 2
                    for u, v in zip(graph.src[:half].tolist(),
                                    graph.dst[:half].tolist()):
                        uf.union(u, v)
                    oracles[idx] = uf.canonical_labels()
                correct = bool(np.array_equal(labels, oracles[idx]))
            else:
                baseline = baselines.setdefault(idx, labels.copy())
                correct = bool(np.array_equal(labels, baseline))
            records.append(
                RunRecord(
                    sweep=spec.name,
                    engine=engine,
                    workload="sparse-random",
                    n=graph.n,
                    density=graph.edge_count / max(1, graph.n * (graph.n - 1) // 2),
                    seed=seed,
                    seconds=float(outcome["seconds"]),
                    correct=correct,
                    m=graph.edge_count,
                    resolved_engine=str(outcome["resolved"]),
                )
            )
    return records


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def dumps_records(records: Sequence[RunRecord]) -> str:
    """Serialise records to a JSON document."""
    return json.dumps([r.to_dict() for r in records], indent=2)


def loads_records(text: str) -> List[RunRecord]:
    """Parse records written by :func:`dumps_records`."""
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("expected a JSON list of run records")
    return [RunRecord(**entry) for entry in raw]


def save_records(records: Sequence[RunRecord], path: PathLike) -> None:
    Path(path).write_text(dumps_records(records))


def load_records(path: PathLike) -> List[RunRecord]:
    return loads_records(Path(path).read_text())


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

def summarize(records: Sequence[RunRecord]) -> List[List[object]]:
    """Aggregate to rows ``[engine, n, runs, median_ms, all_correct,
    generations]`` sorted by engine then n."""
    groups: Dict[tuple, List[RunRecord]] = {}
    for r in records:
        groups.setdefault((r.engine, r.n), []).append(r)
    rows = []
    for (engine, n), group in sorted(groups.items()):
        times = sorted(r.seconds for r in group)
        median = times[len(times) // 2]
        gens = {r.generations for r in group if r.generations is not None}
        rows.append([
            engine, n, len(group), round(median * 1e3, 3),
            all(r.correct for r in group),
            sorted(gens)[0] if len(gens) == 1 else (sorted(gens) if gens else "-"),
        ])
    return rows
