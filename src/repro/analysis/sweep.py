"""Declarative experiment sweeps for the benchmark harness.

The reproduction benches each regenerate one table/figure; this module
provides the generic machinery for *parameter sweeps* across them:

* :class:`SweepSpec` -- a declarative grid (sizes x densities x engines x
  seeds) with a workload family;
* :func:`run_sweep` -- executes the grid, verifying every result against
  the union-find oracle, timing the engine, and collecting the
  model-level metrics (generations, work, peak congestion) where the
  engine exposes them;
* :class:`RunRecord` + JSON (de)serialisation -- archive-stable records
  so sweeps can be compared across machines/runs;
* :func:`summarize` -- aggregation into printable rows (median seconds
  per (engine, n)).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.machine import connected_components_interpreter
from repro.core.row_machine import RowGCA
from repro.core.vectorized import run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels, components_union_find
from repro.graphs.generators import (
    path_graph,
    planted_components,
    random_graph,
    random_spanning_tree,
)
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.hirschberg.reference import connected_components_reference

PathLike = Union[str, Path]

#: Workload families available to sweeps: name -> (n, density, seed) -> graph.
WORKLOADS: Dict[str, Callable[[int, float, int], AdjacencyMatrix]] = {
    "random": lambda n, p, seed: random_graph(n, p, seed=seed),
    "path": lambda n, p, seed: path_graph(n),
    "tree": lambda n, p, seed: random_spanning_tree(n, seed=seed),
    "planted": lambda n, p, seed: planted_components(
        [max(1, n // 4)] * 4, intra_p=max(p, 0.2), seed=seed
    ),
}


def _run_engine(name: str, graph: AdjacencyMatrix) -> Dict[str, Optional[int]]:
    """Execute one engine; returns labels plus engine-native metrics."""
    if name == "vectorized":
        res = run_vectorized(graph)
        return {"labels": res.labels, "generations": res.total_generations,
                "work": None, "peak_congestion": None}
    if name == "interpreter":
        res = connected_components_interpreter(graph)
        return {"labels": res.labels,
                "generations": res.total_generations,
                "work": res.access_log.total_active,
                "peak_congestion": res.access_log.peak_congestion}
    if name == "reference":
        return {"labels": connected_components_reference(graph),
                "generations": None, "work": None, "peak_congestion": None}
    if name == "pram":
        res = hirschberg_on_pram(graph)
        return {"labels": res.labels, "generations": res.parallel_steps,
                "work": res.work, "peak_congestion": res.peak_read_congestion}
    if name == "row":
        res = RowGCA(graph).run()
        return {"labels": res.labels, "generations": res.total_generations,
                "work": res.access_log.total_active,
                "peak_congestion": res.access_log.peak_congestion}
    if name == "unionfind":
        return {"labels": components_union_find(graph),
                "generations": None, "work": None, "peak_congestion": None}
    raise ValueError(f"unknown engine {name!r}")


ENGINES = ("vectorized", "interpreter", "reference", "pram", "row", "unionfind")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid."""

    name: str
    sizes: Sequence[int]
    engines: Sequence[str] = ("vectorized", "reference", "unionfind")
    densities: Sequence[float] = (0.1,)
    workload: str = "random"
    seeds: Sequence[int] = (0,)

    def validate(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; have {sorted(WORKLOADS)}"
            )
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
        if not self.sizes:
            raise ValueError("sizes must be non-empty")

    @property
    def run_count(self) -> int:
        return (len(self.sizes) * len(self.engines) * len(self.densities)
                * len(self.seeds))


@dataclass
class RunRecord:
    """One (engine, workload-instance) execution's outcome."""

    sweep: str
    engine: str
    workload: str
    n: int
    density: float
    seed: int
    seconds: float
    correct: bool
    generations: Optional[int] = None
    work: Optional[int] = None
    peak_congestion: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def run_sweep(spec: SweepSpec) -> List[RunRecord]:
    """Execute the sweep grid; every run is oracle-verified."""
    spec.validate()
    records: List[RunRecord] = []
    for n in spec.sizes:
        for density in spec.densities:
            for seed in spec.seeds:
                graph = WORKLOADS[spec.workload](n, density, seed)
                oracle = canonical_labels(graph)
                for engine in spec.engines:
                    start = time.perf_counter()
                    result = _run_engine(engine, graph)
                    elapsed = time.perf_counter() - start
                    records.append(
                        RunRecord(
                            sweep=spec.name,
                            engine=engine,
                            workload=spec.workload,
                            n=graph.n,
                            density=density,
                            seed=seed,
                            seconds=elapsed,
                            correct=bool(np.array_equal(result["labels"], oracle)),
                            generations=result["generations"],
                            work=result["work"],
                            peak_congestion=result["peak_congestion"],
                        )
                    )
    return records


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def dumps_records(records: Sequence[RunRecord]) -> str:
    """Serialise records to a JSON document."""
    return json.dumps([r.to_dict() for r in records], indent=2)


def loads_records(text: str) -> List[RunRecord]:
    """Parse records written by :func:`dumps_records`."""
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("expected a JSON list of run records")
    return [RunRecord(**entry) for entry in raw]


def save_records(records: Sequence[RunRecord], path: PathLike) -> None:
    Path(path).write_text(dumps_records(records))


def load_records(path: PathLike) -> List[RunRecord]:
    return loads_records(Path(path).read_text())


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

def summarize(records: Sequence[RunRecord]) -> List[List[object]]:
    """Aggregate to rows ``[engine, n, runs, median_ms, all_correct,
    generations]`` sorted by engine then n."""
    groups: Dict[tuple, List[RunRecord]] = {}
    for r in records:
        groups.setdefault((r.engine, r.n), []).append(r)
    rows = []
    for (engine, n), group in sorted(groups.items()):
        times = sorted(r.seconds for r in group)
        median = times[len(times) // 2]
        gens = {r.generations for r in group if r.generations is not None}
        rows.append([
            engine, n, len(group), round(median * 1e3, 3),
            all(r.correct for r in group),
            sorted(gens)[0] if len(gens) == 1 else (sorted(gens) if gens else "-"),
        ])
    return rows
