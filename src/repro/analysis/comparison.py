"""Cross-model comparison: GCA vs PRAM vs sequential (Sections 1 and 3).

The paper's conceptual point is that PRAM work-optimality (minimise
``P * t_p``) and GCA optimality (minimise hardware, where memory dominates
and cells are cheap) are different criteria.  This module runs the same
graph through

* the GCA (generations, cells, memory cells),
* the PRAM simulator (steps, Brent-adjusted time, work, peak congestion),
* the sequential baseline (``Theta(n^2)`` matrix scan),

and emits one row per model so the bench can print who wins under which
metric.  Wall-clock timing of the Python engines is also provided for the
throughput bench (E9), clearly separated from the model metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.analysis.complexity import (
    gca_cells,
    gca_time,
    gca_work,
    sequential_time,
)
from repro.core.vectorized import run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import components_union_find
from repro.hirschberg.pram_impl import hirschberg_on_pram

GraphLike = Union[AdjacencyMatrix, np.ndarray]


@dataclass(frozen=True)
class ModelRow:
    """One model's cost figures on one input."""

    model: str
    n: int
    time_units: int           # generations / Brent steps / sequential ops
    processing_elements: int
    work: int                 # PEs x time (PRAM convention)
    memory_cells: int         # state words the model needs
    peak_congestion: int
    labels_correct: bool


def compare_models(
    graph: GraphLike,
    pram_processors: Optional[int] = None,
) -> List[ModelRow]:
    """Run all three models on ``graph`` and tabulate their costs.

    ``pram_processors`` defaults to ``n^2`` (full parallelism); pass fewer
    to see Brent's theorem inflate the PRAM time.
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    oracle = components_union_find(g)

    # --- GCA ------------------------------------------------------------
    gca = run_vectorized(g, record_access=True)
    gca_peak = gca.access_log.peak_congestion if gca.access_log else 0
    rows = [
        ModelRow(
            model="gca",
            n=n,
            time_units=gca.total_generations,
            processing_elements=gca_cells(n),
            work=gca_cells(n) * gca.total_generations,
            memory_cells=2 * n * (n + 1) + n * n,  # D + P + A planes
            peak_congestion=gca_peak,
            labels_correct=bool(np.array_equal(gca.labels, oracle)),
        )
    ]

    # --- PRAM -----------------------------------------------------------
    p = pram_processors if pram_processors is not None else max(1, n * n)
    pram = hirschberg_on_pram(g, processors=p)
    rows.append(
        ModelRow(
            model="pram",
            n=n,
            time_units=pram.time,
            processing_elements=p,
            work=pram.work,
            memory_cells=n * n + 2 * n + n * n,  # A + C + T + temporaries
            peak_congestion=pram.peak_read_congestion,
            labels_correct=bool(np.array_equal(pram.labels, oracle)),
        )
    )

    # --- sequential -------------------------------------------------------
    rows.append(
        ModelRow(
            model="sequential",
            n=n,
            time_units=sequential_time(n),
            processing_elements=1,
            work=sequential_time(n),
            memory_cells=n * n + n,
            peak_congestion=0,
            labels_correct=True,
        )
    )
    return rows


def predicted_comparison(n: int) -> List[ModelRow]:
    """Closed-form comparison (no execution), for large-``n`` tables."""
    from repro.util.intmath import ceil_log2

    log = max(1, ceil_log2(max(2, n)))
    pram_time = 2 + log * (9 + 3 * log)  # steps of the simulator's program
    return [
        ModelRow(
            model="gca",
            n=n,
            time_units=gca_time(n),
            processing_elements=gca_cells(n),
            work=gca_work(n),
            memory_cells=2 * n * (n + 1) + n * n,
            peak_congestion=n + 1,
            labels_correct=True,
        ),
        ModelRow(
            model="pram",
            n=n,
            time_units=pram_time,
            processing_elements=n * n,
            work=n * n * pram_time,
            memory_cells=2 * n * n + 2 * n,
            peak_congestion=n,
            labels_correct=True,
        ),
        ModelRow(
            model="sequential",
            n=n,
            time_units=sequential_time(n),
            processing_elements=1,
            work=sequential_time(n),
            memory_cells=n * n + n,
            peak_congestion=0,
            labels_correct=True,
        ),
    ]


# ----------------------------------------------------------------------
# wall-clock throughput of the Python engines (bench E9)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimingRow:
    """Wall-clock timing of one engine on one input."""

    engine: str
    n: int
    seconds: float


def time_engines(
    graph: GraphLike,
    engines: Optional[List[str]] = None,
    repeats: int = 3,
) -> List[TimingRow]:
    """Best-of-``repeats`` wall-clock time per engine.

    Engines: ``"vectorized"``, ``"reference"``, ``"unionfind"`` and (for
    small ``n`` only -- it is an interpreter) ``"interpreter"``.
    """
    from repro.core.machine import connected_components_interpreter
    from repro.hirschberg.reference import connected_components_reference

    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    chosen = engines or ["vectorized", "reference", "unionfind"]
    runners = {
        "vectorized": lambda: run_vectorized(g).labels,
        "reference": lambda: connected_components_reference(g),
        "unionfind": lambda: components_union_find(g),
        "interpreter": lambda: connected_components_interpreter(g).labels,
    }
    rows = []
    for name in chosen:
        if name not in runners:
            raise ValueError(f"unknown engine {name!r}; have {sorted(runners)}")
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            runners[name]()
            best = min(best, time.perf_counter() - start)
        rows.append(TimingRow(engine=name, n=g.n, seconds=best))
    return rows
