"""Zero-copy shared-memory plumbing for parallel sparse sweeps and serving.

The dense sweep runner ships each grid cell's *parameters* to its worker
process and regenerates the graphs there -- fine at field sizes, but a
non-starter for the sparse engines, where a single workload can be tens
of millions of edge entries: pickling the arrays through the
``ProcessPoolExecutor`` pipe (or regenerating them per worker) costs more
than the solve.

This module instead places the edge arrays (and per-run label slots) in
POSIX shared memory (:mod:`multiprocessing.shared_memory`):

* the parent builds the workload once and publishes it with
  :func:`share_edge_list`;
* workers receive only a tiny picklable :class:`SharedArrayRef` /
  :class:`SharedEdgeListRef` descriptor (block name + shape + dtype),
  attach with :func:`attach_edge_list`, and get NumPy views **backed by
  the same physical pages** -- no copy, no serialisation;
* results flow back the same way: each run writes its label vector into
  a pre-allocated shared slot, so the parent can oracle-check and
  cross-compare engines without any arrays crossing the process pipe.

Lifetime rules follow the stdlib's: every attachment must be
``close()``-d, and the creating side additionally ``unlink()``-s (both
are idempotent here, so teardown paths may overlap safely).
:class:`SharedArray` is a context manager for the worker side;
:class:`SharedWorkspace` gathers the parent side's blocks so one
``with`` block owns the whole sweep's memory.

Two additions serve the persistent serve-layer pool
(:mod:`repro.serve.executor`):

* every segment *created* by this process is tracked in a registry until
  it is unlinked -- :func:`live_segments` lets tests and shutdown hooks
  assert that nothing leaked into ``/dev/shm``;
* :class:`SlabPool` recycles fixed-capacity blocks across batches, so a
  steady-state server performs no shm create/unlink syscalls per flush
  (workers re-attach the same names and cache the mapping).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.hirschberg.edgelist import EdgeListGraph

# ----------------------------------------------------------------------
# segment registry (leak accounting)
# ----------------------------------------------------------------------
_registry_lock = threading.Lock()
_live_segments: Dict[str, int] = {}  # name -> nbytes, created by this process

#: Optional observer (see :func:`repro.check.sanitizer.shm_sanitizer`):
#: an object with ``on_create`` / ``on_unlink`` / ``on_attach`` /
#: ``on_close`` / ``on_acquire`` / ``on_release`` hooks, notified at the
#: corresponding lifecycle points.  ``None`` (the default) costs one
#: attribute load per event.
_observer = None


def set_shm_observer(observer):
    """Install ``observer`` (or ``None`` to remove); returns the
    previous observer so sanitizer windows can nest/restore."""
    global _observer
    previous = _observer
    _observer = observer
    return previous


def _register_segment(name: str, nbytes: int) -> None:
    with _registry_lock:
        _live_segments[name] = nbytes
    if _observer is not None:
        _observer.on_create(name, nbytes)


def _unregister_segment(name: str) -> None:
    with _registry_lock:
        _live_segments.pop(name, None)
    if _observer is not None:
        _observer.on_unlink(name)


def live_segments() -> FrozenSet[str]:
    """Names of shared-memory segments created by this process and not
    yet unlinked.  Empty after a clean shutdown -- the leak assertion the
    shm/serve tests (and CI) check after every server or sweep run."""
    with _registry_lock:
        return frozenset(_live_segments)


def live_segment_bytes() -> int:
    """Total bytes of this process's not-yet-unlinked segments."""
    with _registry_lock:
        return sum(_live_segments.values())


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable pointer to a shared-memory NumPy array.

    ``offset`` (bytes into the block) lets one pooled slab carry arrays
    smaller than its capacity; plain refs leave it 0.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """A NumPy array whose buffer lives in a shared-memory block.

    Create on the parent side with :meth:`create` (copies the source data
    in once) or :meth:`zeros`; attach on the worker side with
    :meth:`attach`.  Usable as a context manager (closes on exit; the
    owner must still :meth:`unlink`).  ``close`` and ``unlink`` are
    idempotent: calling either twice (or from overlapping teardown
    paths) is a no-op, not an error.
    """

    def __init__(self, shm: shared_memory.SharedMemory, ref: SharedArrayRef,
                 owner: bool):
        self._shm = shm
        self.ref = ref
        self.owner = owner
        self._closed = False
        self._unlinked = False
        self.array = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf,
            offset=ref.offset,
        )

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """A new shared block initialised with ``source``'s contents."""
        source = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, source.nbytes)
        )
        _register_segment(shm.name, shm.size)
        ref = SharedArrayRef(
            name=shm.name, shape=source.shape, dtype=source.dtype.str
        )
        out = cls(shm, ref, owner=True)
        out.array[...] = source
        return out

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=np.int64) -> "SharedArray":
        """A new zero-filled shared block."""
        dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        _register_segment(shm.name, shm.size)
        ref = SharedArrayRef(name=shm.name, shape=tuple(shape), dtype=dtype.str)
        out = cls(shm, ref, owner=True)
        out.array[...] = 0
        return out

    @classmethod
    def attach(cls, ref: SharedArrayRef) -> "SharedArray":
        """A zero-copy view of an existing block (worker side).

        Raises ``FileNotFoundError`` when the owner has already unlinked
        the block -- a worker must treat that as "the batch moved on",
        not corrupt data.
        """
        out = cls(shared_memory.SharedMemory(name=ref.name), ref, owner=False)
        if _observer is not None:
            _observer.on_attach(ref.name)
        return out

    def close(self) -> None:
        """Release this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self.array = None
        self._shm.close()
        if _observer is not None:
            _observer.on_close(self.ref.name)

    def unlink(self) -> None:
        """Destroy the block (owner side, after every close)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        finally:
            _unregister_segment(self.ref.name)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class SharedEdgeListRef:
    """A picklable pointer to a shared :class:`EdgeListGraph`."""

    n: int
    src: SharedArrayRef
    dst: SharedArrayRef

    @property
    def edge_count(self) -> int:
        return self.src.shape[0] // 2


def share_edge_list(graph: EdgeListGraph) -> Tuple["SharedWorkspace", SharedEdgeListRef]:
    """Publish ``graph``'s edge arrays in shared memory.

    Returns the owning workspace (close+unlink when the sweep is done)
    and the descriptor to hand to workers.
    """
    src = SharedArray.create(graph.src)
    try:
        dst = SharedArray.create(graph.dst)
    except BaseException:
        # a failed second create (ENOSPC, shm quota) must not leak the
        # first segment until reboot
        src.close()
        src.unlink()
        raise
    ref = SharedEdgeListRef(n=graph.n, src=src.ref, dst=dst.ref)
    return SharedWorkspace([src, dst]), ref


def attach_edge_list(ref: SharedEdgeListRef) -> Tuple[EdgeListGraph, List[SharedArray]]:
    """Worker-side zero-copy view of a shared graph.

    The returned graph's ``src``/``dst`` are views into the shared
    blocks; keep the returned handles alive while the graph is in use
    and ``close()`` them afterwards.
    """
    src = SharedArray.attach(ref.src)
    try:
        dst = SharedArray.attach(ref.dst)
    except BaseException:
        # the owner unlinked between the two attaches: drop the first
        # mapping instead of pinning the orphaned pages
        src.close()
        raise
    graph = EdgeListGraph(n=ref.n, src=src.array, dst=dst.array)
    return graph, [src, dst]


class SharedWorkspace:
    """Owner of a set of shared blocks; one ``with`` per sweep."""

    def __init__(self, blocks: Sequence[SharedArray] = ()):
        self.blocks: List[SharedArray] = list(blocks)

    def add(self, block: SharedArray) -> SharedArray:
        self.blocks.append(block)
        return block

    def zeros(self, shape, dtype=np.int64) -> SharedArray:
        """Allocate a zero-filled block owned by this workspace."""
        return self.add(SharedArray.zeros(shape, dtype))

    def close(self) -> None:
        for block in self.blocks:
            block.close()

    def unlink(self) -> None:
        for block in self.blocks:
            block.unlink()

    def __enter__(self) -> "SharedWorkspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


# ----------------------------------------------------------------------
# slab recycling for the persistent serve pool
# ----------------------------------------------------------------------
class Slab:
    """One pooled block plus the array view of its current tenant.

    ``array``/``ref`` describe the *requested* shape laid out at offset
    0 of a block whose capacity is the next power of two -- the same
    physical block is re-viewed with a fresh shape on every
    :meth:`SlabPool.acquire`, so workers keep re-attaching the same
    segment name batch after batch.
    """

    __slots__ = ("block", "capacity", "array", "ref", "transient")

    def __init__(self, block: SharedArray, capacity: int, transient: bool):
        self.block = block
        self.capacity = capacity
        self.transient = transient
        self.array: np.ndarray = None  # type: ignore[assignment]
        self.ref: SharedArrayRef = None  # type: ignore[assignment]

    def view_as(self, shape: Tuple[int, ...], dtype: np.dtype) -> "Slab":
        dtype = np.dtype(dtype)
        self.ref = SharedArrayRef(
            name=self.block.ref.name, shape=tuple(shape), dtype=dtype.str
        )
        self.array = np.ndarray(shape, dtype=dtype, buffer=self.block._shm.buf)
        return self


class SlabPool:
    """Recycles shared-memory blocks across serve batches.

    ``acquire(shape, dtype)`` hands out a :class:`Slab` backed by a free
    block of capacity ``>= nbytes`` (capacities are rounded to powers of
    two so steady mixed-size traffic converges on a handful of reusable
    blocks); ``release`` returns it to the free list.  When the pooled
    bytes would exceed ``byte_budget``, the block is created *transient*
    instead: released transients are unlinked immediately rather than
    kept.  ``close_all`` (idempotent) unlinks everything -- the pool
    never leaves segments behind (asserted via :func:`live_segments`).

    Thread-safe: the server's worker threads acquire concurrently.
    """

    def __init__(self, byte_budget: int = 256 << 20):
        if byte_budget < 1:
            raise ValueError(f"byte_budget must be >= 1, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self._lock = threading.Lock()
        self._free: Dict[int, List[SharedArray]] = {}
        self._all: Dict[str, SharedArray] = {}  # every live block, by name
        self._pooled_bytes = 0
        self._closed = False

    @staticmethod
    def _capacity(nbytes: int) -> int:
        return 1 << max(int(nbytes) - 1, 0).bit_length() if nbytes > 1 else 1

    def acquire(self, shape: Tuple[int, ...], dtype=np.int64) -> Slab:
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        capacity = self._capacity(nbytes)
        with self._lock:
            if self._closed:
                raise RuntimeError("SlabPool is closed")
            free = self._free.get(capacity)
            if free:
                block = free.pop()
                slab = Slab(block, capacity, transient=False).view_as(
                    tuple(shape), dtype
                )
                if _observer is not None:
                    _observer.on_acquire(slab)
                return slab
            transient = self._pooled_bytes + capacity > self.byte_budget
            if not transient:
                self._pooled_bytes += capacity
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        _register_segment(shm.name, capacity)
        base = SharedArrayRef(name=shm.name, shape=(capacity,), dtype="|u1")
        block = SharedArray(shm, base, owner=True)
        with self._lock:
            self._all[shm.name] = block
        slab = Slab(block, capacity, transient).view_as(tuple(shape), dtype)
        if _observer is not None:
            _observer.on_acquire(slab)
        return slab

    def release(self, slab: Slab) -> None:
        if _observer is not None:
            _observer.on_release(slab)
        slab.array = None
        if slab.transient:
            with self._lock:
                self._all.pop(slab.block.ref.name, None)
            slab.block.close()
            slab.block.unlink()
            return
        with self._lock:
            if self._closed:  # pool torn down while the slab was out
                self._all.pop(slab.block.ref.name, None)
                slab.block.close()
                slab.block.unlink()
                return
            self._free.setdefault(slab.capacity, []).append(slab.block)

    @property
    def pooled_bytes(self) -> int:
        with self._lock:
            return self._pooled_bytes

    def close_all(self) -> None:
        """Unlink every block this pool ever created (idempotent).

        Blocks still checked out are unlinked too -- an in-flight writer
        keeps scribbling on its (now orphaned) mapping harmlessly, and
        the slab's late :meth:`release` is a no-op because close and
        unlink are idempotent.  Nothing can leak past this call.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            blocks = list(self._all.values())
            self._all.clear()
            self._free.clear()
            self._pooled_bytes = 0
        for block in blocks:
            block.close()
            block.unlink()
