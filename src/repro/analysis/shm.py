"""Zero-copy shared-memory plumbing for parallel sparse sweeps.

The dense sweep runner ships each grid cell's *parameters* to its worker
process and regenerates the graphs there -- fine at field sizes, but a
non-starter for the sparse engines, where a single workload can be tens
of millions of edge entries: pickling the arrays through the
``ProcessPoolExecutor`` pipe (or regenerating them per worker) costs more
than the solve.

This module instead places the edge arrays (and per-run label slots) in
POSIX shared memory (:mod:`multiprocessing.shared_memory`):

* the parent builds the workload once and publishes it with
  :func:`share_edge_list`;
* workers receive only a tiny picklable :class:`SharedArrayRef` /
  :class:`SharedEdgeListRef` descriptor (block name + shape + dtype),
  attach with :func:`attach_edge_list`, and get NumPy views **backed by
  the same physical pages** -- no copy, no serialisation;
* results flow back the same way: each run writes its label vector into
  a pre-allocated shared slot, so the parent can oracle-check and
  cross-compare engines without any arrays crossing the process pipe.

Lifetime rules follow the stdlib's: every attachment must be
``close()``-d, and the creating side additionally ``unlink()``-s.
:class:`SharedArray` is a context manager for the worker side;
:class:`SharedWorkspace` gathers the parent side's blocks so one
``with`` block owns the whole sweep's memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Sequence, Tuple

import numpy as np

from repro.hirschberg.edgelist import EdgeListGraph


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable pointer to a shared-memory NumPy array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """A NumPy array whose buffer lives in a shared-memory block.

    Create on the parent side with :meth:`create` (copies the source data
    in once) or :meth:`zeros`; attach on the worker side with
    :meth:`attach`.  Usable as a context manager (closes on exit; the
    owner must still :meth:`unlink`).
    """

    def __init__(self, shm: shared_memory.SharedMemory, ref: SharedArrayRef,
                 owner: bool):
        self._shm = shm
        self.ref = ref
        self.owner = owner
        self.array = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf
        )

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """A new shared block initialised with ``source``'s contents."""
        source = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, source.nbytes)
        )
        ref = SharedArrayRef(
            name=shm.name, shape=source.shape, dtype=source.dtype.str
        )
        out = cls(shm, ref, owner=True)
        out.array[...] = source
        return out

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=np.int64) -> "SharedArray":
        """A new zero-filled shared block."""
        dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        ref = SharedArrayRef(name=shm.name, shape=tuple(shape), dtype=dtype.str)
        out = cls(shm, ref, owner=True)
        out.array[...] = 0
        return out

    @classmethod
    def attach(cls, ref: SharedArrayRef) -> "SharedArray":
        """A zero-copy view of an existing block (worker side)."""
        return cls(shared_memory.SharedMemory(name=ref.name), ref, owner=False)

    def close(self) -> None:
        """Release this process's mapping (views become invalid)."""
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the block (owner side, after every close)."""
        self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class SharedEdgeListRef:
    """A picklable pointer to a shared :class:`EdgeListGraph`."""

    n: int
    src: SharedArrayRef
    dst: SharedArrayRef

    @property
    def edge_count(self) -> int:
        return self.src.shape[0] // 2


def share_edge_list(graph: EdgeListGraph) -> Tuple["SharedWorkspace", SharedEdgeListRef]:
    """Publish ``graph``'s edge arrays in shared memory.

    Returns the owning workspace (close+unlink when the sweep is done)
    and the descriptor to hand to workers.
    """
    src = SharedArray.create(graph.src)
    dst = SharedArray.create(graph.dst)
    ref = SharedEdgeListRef(n=graph.n, src=src.ref, dst=dst.ref)
    return SharedWorkspace([src, dst]), ref


def attach_edge_list(ref: SharedEdgeListRef) -> Tuple[EdgeListGraph, List[SharedArray]]:
    """Worker-side zero-copy view of a shared graph.

    The returned graph's ``src``/``dst`` are views into the shared
    blocks; keep the returned handles alive while the graph is in use
    and ``close()`` them afterwards.
    """
    src = SharedArray.attach(ref.src)
    dst = SharedArray.attach(ref.dst)
    graph = EdgeListGraph(n=ref.n, src=src.array, dst=dst.array)
    return graph, [src, dst]


class SharedWorkspace:
    """Owner of a set of shared blocks; one ``with`` per sweep."""

    def __init__(self, blocks: Sequence[SharedArray] = ()):
        self.blocks: List[SharedArray] = list(blocks)

    def add(self, block: SharedArray) -> SharedArray:
        self.blocks.append(block)
        return block

    def zeros(self, shape, dtype=np.int64) -> SharedArray:
        """Allocate a zero-filled block owned by this workspace."""
        return self.add(SharedArray.zeros(shape, dtype))

    def close(self) -> None:
        for block in self.blocks:
            if block.array is not None:
                block.close()

    def unlink(self) -> None:
        for block in self.blocks:
            block.unlink()

    def __enter__(self) -> "SharedWorkspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
