"""Memory-mapping congestion: deterministic vs universal hashing (Sec. 1).

The introduction discusses how PRAM shared memory is mapped onto GCA cells
or memory modules: "Unfortunate mappings can be prevented either by
choosing an appropriate mapping in case where the neighbour relations are
known beforehand, or by applying universal hashing.  Universal hashing
presents two difficulties.  First, the owner relationship may get lost,
second the congestion can only get down to a value of O(log p) for hash
function classes that can be easily implemented."

This module makes that discussion measurable.  A *mapping* assigns each
cell (memory location) to one of ``p`` modules; a generation's **module
congestion** is the maximum number of reads any one module serves.  We
provide:

* :func:`aware_mapping` -- the algorithm-aware diagonal layout (module
  ``(row + col) mod p``), balanced for this algorithm's hot groups;
* :func:`direct_mapping` -- naive round-robin ``x mod p`` (collapses the
  hot first column whenever ``p`` divides ``n``);
* :func:`adversarial_mapping` -- the "unfortunate" blocked layout, under
  which the broadcast generations hammer one module;
* :class:`UniversalHash` -- the classic multiply-shift family
  ``h(x) = ((a x + b) mod P) mod p``, sampled per run;
* :func:`mapping_congestion` -- evaluates any mapping against a recorded
  :class:`~repro.gca.instrumentation.AccessLog`.

The bench shows the paper's claims quantitatively: the aware mapping wins,
the adversarial mapping degrades to Theta(reads/1) on broadcasts, and the
hashed mapping lands near the balanced optimum with overwhelming
probability (with the O(log p)-ish tail the paper mentions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.gca.instrumentation import AccessLog
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive

Mapping = Callable[[int], int]

_MERSENNE = (1 << 61) - 1  # a Mersenne prime, the classic modulus choice


def direct_mapping(modules: int) -> Mapping:
    """Naive round-robin layout: location ``x`` lives on module ``x mod p``.

    Simple but oblivious to the field geometry: when ``p`` divides ``n``
    the hot first column (cells ``i * n``) collapses onto module 0.
    """
    check_positive("modules", modules)
    return lambda x: x % modules


def aware_mapping(n: int, modules: int) -> Mapping:
    """The algorithm-aware layout ("choosing an appropriate mapping in
    case where the neighbour relations are known beforehand"): module
    ``(row + col) mod p``.  The diagonal skew spreads both hot groups of
    this algorithm -- the first column (read by the broadcasts) and the
    bottom row (read by the masking generations) -- across all modules
    for every ``p``.
    """
    check_positive("n", n)
    check_positive("modules", modules)
    return lambda x: ((x // n) + (x % n)) % modules


def adversarial_mapping(size: int, modules: int) -> Mapping:
    """Blocked layout: the first ``ceil(size/p)`` locations share module 0,
    and so on.  For the GCA algorithm this is "unfortunate": the whole
    first column (the C vector, the hottest data) lands on one module."""
    check_positive("size", size)
    check_positive("modules", modules)
    block = -(-size // modules)
    return lambda x: min(x // block, modules - 1)


@dataclass(frozen=True)
class UniversalHash:
    """One member of the universal family ``((a x + b) mod P) mod p``."""

    a: int
    b: int
    modules: int

    def __call__(self, x: int) -> int:
        return ((self.a * x + self.b) % _MERSENNE) % self.modules

    @staticmethod
    def sample(modules: int, seed: SeedLike = None) -> "UniversalHash":
        """Draw a random member of the family."""
        check_positive("modules", modules)
        rng = as_generator(seed)
        return UniversalHash(
            a=int(rng.integers(1, _MERSENNE)),
            b=int(rng.integers(0, _MERSENNE)),
            modules=modules,
        )


@dataclass
class CongestionProfile:
    """Module congestion of one mapping over a recorded run."""

    mapping_name: str
    modules: int
    per_generation_max: List[int]

    @property
    def peak(self) -> int:
        """Worst per-generation module congestion of the run."""
        return max(self.per_generation_max, default=0)

    @property
    def total_serialised_cycles(self) -> int:
        """Run duration if every generation costs its module congestion
        (each module serves one read per cycle)."""
        return sum(max(1, m) for m in self.per_generation_max)


def mapping_congestion(
    log: AccessLog, mapping: Mapping, modules: int, name: str
) -> CongestionProfile:
    """Evaluate ``mapping`` against the read streams of ``log``."""
    check_positive("modules", modules)
    per_generation = []
    for stats in log.generations:
        loads: Dict[int, int] = {}
        for cell, reads in stats.reads_per_cell.items():
            module = mapping(cell)
            if not 0 <= module < modules:
                raise ValueError(
                    f"mapping {name!r} sent cell {cell} to module {module}, "
                    f"outside [0, {modules})"
                )
            loads[module] = loads.get(module, 0) + reads
        per_generation.append(max(loads.values(), default=0))
    return CongestionProfile(
        mapping_name=name, modules=modules, per_generation_max=per_generation
    )


def compare_mappings(
    log: AccessLog,
    n: int,
    modules: int,
    hash_samples: int = 5,
    seed: SeedLike = 0,
) -> List[CongestionProfile]:
    """Profile the four mapping strategies on one recorded run.

    The hashed profile reports the *median-peak* sample of
    ``hash_samples`` independent draws (universal hashing is a
    distribution, not a single function).
    """
    size = n * (n + 1)
    profiles = [
        mapping_congestion(log, aware_mapping(n, modules), modules, "aware"),
        mapping_congestion(log, direct_mapping(modules), modules, "direct"),
        mapping_congestion(
            log, adversarial_mapping(size, modules), modules, "adversarial"
        ),
    ]
    rng = as_generator(seed)
    hashed = [
        mapping_congestion(
            log, UniversalHash.sample(modules, rng), modules, f"hash{k}"
        )
        for k in range(max(1, hash_samples))
    ]
    hashed.sort(key=lambda prof: prof.peak)
    median = hashed[len(hashed) // 2]
    profiles.append(
        CongestionProfile(
            mapping_name="universal-hash (median of samples)",
            modules=modules,
            per_generation_max=median.per_generation_max,
        )
    )
    return profiles
