"""Hashing: memory-mapping congestion (Sec. 1) and graph fingerprints.

Two unrelated-looking users share this module because both reduce to
"hash the structure, not the representation":

* the paper's *memory-mapping* discussion (below), where a hash assigns
  cells to memory modules;
* the serve layer's *content-addressed result cache*
  (:mod:`repro.serve.cache`), which keys solved label vectors by
  :func:`graph_fingerprint` -- a digest of the canonical edge set, so a
  dense adjacency and an edge list describing the same graph (in any
  edge order, any orientation, with duplicates) address the same cache
  entry, while any actual structural difference (including a vertex
  permutation) changes the key.

Memory-mapping congestion: deterministic vs universal hashing (Sec. 1).

The introduction discusses how PRAM shared memory is mapped onto GCA cells
or memory modules: "Unfortunate mappings can be prevented either by
choosing an appropriate mapping in case where the neighbour relations are
known beforehand, or by applying universal hashing.  Universal hashing
presents two difficulties.  First, the owner relationship may get lost,
second the congestion can only get down to a value of O(log p) for hash
function classes that can be easily implemented."

This module makes that discussion measurable.  A *mapping* assigns each
cell (memory location) to one of ``p`` modules; a generation's **module
congestion** is the maximum number of reads any one module serves.  We
provide:

* :func:`aware_mapping` -- the algorithm-aware diagonal layout (module
  ``(row + col) mod p``), balanced for this algorithm's hot groups;
* :func:`direct_mapping` -- naive round-robin ``x mod p`` (collapses the
  hot first column whenever ``p`` divides ``n``);
* :func:`adversarial_mapping` -- the "unfortunate" blocked layout, under
  which the broadcast generations hammer one module;
* :class:`UniversalHash` -- the classic multiply-shift family
  ``h(x) = ((a x + b) mod P) mod p``, sampled per run;
* :func:`mapping_congestion` -- evaluates any mapping against a recorded
  :class:`~repro.gca.instrumentation.AccessLog`.

The bench shows the paper's claims quantitatively: the aware mapping wins,
the adversarial mapping degrades to Theta(reads/1) on broadcasts, and the
hashed mapping lands near the balanced optimum with overwhelming
probability (with the O(log p)-ish tail the paper mentions).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

import numpy as np

from repro.gca.instrumentation import AccessLog
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    _PACK_LIMIT,
    _canonical_pairs,
)
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive

Mapping = Callable[[int], int]

GraphInput = Union[AdjacencyMatrix, np.ndarray, EdgeListGraph]

#: Digest size (bytes) of :func:`graph_fingerprint` -- 128 bits, far
#: below any collision concern at cache scale.
_FINGERPRINT_BYTES = 16

#: splitmix64 finalizer constants (vectorised PRF-ish mixer).
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_S30, _S27, _S31 = np.uint64(30), np.uint64(27), np.uint64(31)


def _splitmix(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer applied element-wise (wrapping uint64)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> _S30
    x *= _MIX_A
    x ^= x >> _S27
    x *= _MIX_B
    x ^= x >> _S31
    return x


def _edge_set_sums(key: np.ndarray) -> Tuple[int, int]:
    """Two order-invariant 64-bit reductions of a duplicate-free
    edge-key set: the wrapping sum and the xor of the per-key splitmix64
    hashes (AdHash-style multiset hashing).  Both reductions commute, so
    no sort is needed -- the O(m log m) ``np.unique`` that dominated the
    digest cost for large sparse graphs is gone from every path that can
    prove its keys are already duplicate-free.  One mixing pass feeds
    both lanes; a set difference must escape a 128-bit constraint to
    collide, ample for a result cache that also offers
    verify-on-first-hit for the paranoid."""
    x = np.ascontiguousarray(key)
    if x.dtype != np.uint64:
        try:
            x = x.view(np.uint64)  # reinterpret int64 bits, no copy
        except (TypeError, ValueError):
            # exotic layouts where a zero-copy reinterpret is refused
            # (e.g. some memmap slices); one copy, same bits
            x = x.astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed = _splitmix(x)
        total = int(mixed.sum(dtype=np.uint64))
        folded = (int(np.bitwise_xor.reduce(mixed)) if mixed.size else 0)
        return total, folded


def _constructor_canonical_keys(graph: "EdgeListGraph") -> "np.ndarray | None":
    """Packed ``u * n + v`` keys when ``graph`` is in the form the
    :class:`EdgeListGraph` constructors produce -- first half the sorted
    duplicate-free ``u < v`` pairs, second half their exact mirror -- or
    ``None`` to fall back to full canonicalisation.

    Constructor-built graphs carry a ``_canonical`` stamp and are
    trusted outright (the stamp travels only through the constructors).
    Unstamped graphs are verified with a handful of O(m) vector
    comparisons, still an order of magnitude cheaper than re-deriving
    the canonical set with ``np.unique``.
    """
    m = graph.src.size
    if m & 1 or graph.n > _PACK_LIMIT:
        return None
    half = m >> 1
    u, v = graph.src[:half], graph.dst[:half]
    if not graph.__dict__.get("_canonical", False):
        if not bool(np.all(u < v)):
            return None
        if not (np.array_equal(graph.src[half:], v)
                and np.array_equal(graph.dst[half:], u)):
            return None
        key = u * np.int64(graph.n) + v
        if half > 1 and not bool(np.all(key[1:] > key[:-1])):
            return None  # not duplicate-free; let np.unique sort it out
        return key
    return u * np.int64(graph.n) + v


def canonical_edge_pairs(graph: GraphInput) -> Tuple[int, np.ndarray, np.ndarray]:
    """``(n, lo, hi)`` -- the canonical undirected edge set of ``graph``.

    The pairs are duplicate-free, self-loop-free, ``lo < hi`` and sorted
    lexicographically, regardless of the input representation: a dense
    0/1 adjacency (symmetrised on read), an
    :class:`~repro.graphs.adjacency.AdjacencyMatrix`, or an
    :class:`~repro.hirschberg.edgelist.EdgeListGraph` in any edge order
    and orientation.  Two inputs describe the same labelled graph iff
    their canonical triples are equal -- the ground truth the
    fingerprint digests.
    """
    if isinstance(graph, EdgeListGraph):
        lo = np.minimum(graph.src, graph.dst)
        hi = np.maximum(graph.src, graph.dst)
        keep = lo != hi
        lo, hi = _canonical_pairs(graph.n, lo[keep], hi[keep])
        return graph.n, lo, hi
    mat = graph.matrix if isinstance(graph, AdjacencyMatrix) else np.asarray(graph)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {mat.shape}")
    nz = mat != 0
    present = nz | nz.T
    rows, cols = np.nonzero(present)
    keep = rows < cols
    # nonzero() walks row-major, so (rows, cols) under rows < cols is
    # already the sorted, duplicate-free canonical order
    return mat.shape[0], rows[keep].astype(np.int64), cols[keep].astype(np.int64)


def graph_fingerprint(graph: GraphInput) -> str:
    """Content address of ``graph``: a hex digest of its canonical form.

    Properties (asserted by the property tests in
    ``tests/serve/test_cache.py``):

    * **representation-independent** -- dense and sparse forms of the
      same labelled graph, and edge lists differing only in edge order,
      orientation or duplication, collide by construction;
    * **structure-sensitive** -- any differing canonical edge set (e.g.
      a vertex permutation that is not an automorphism) yields a
      different digest, so cached labels can never be served for a
      structurally different graph;
    * equal fingerprints therefore imply equal canonical component
      labels, the soundness condition of the serve result cache.

    The digest is blake2b over ``(n, edge count, two order-invariant
    multiset sums of the per-edge splitmix64 hashes)`` -- summation
    commutes, so the canonical edge *set* can be digested without
    sorting it.  Edge lists in the form the constructors emit are
    verified duplicate-free with O(m) comparisons and skip
    canonicalisation entirely; only inputs with duplicated or unordered
    edges pay the ``np.unique`` fallback.

    Fingerprints of :class:`EdgeListGraph` inputs are memoised on the
    instance: the dataclass is frozen, and the serve layer treats
    submitted graphs as immutable.  Mutating a graph's arrays in place
    after submitting it voids that contract (as it voids every other
    cached property of the serve path).
    """
    if isinstance(graph, EdgeListGraph):
        cached = graph.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        key = _constructor_canonical_keys(graph)
        if key is None:
            n, lo, hi = canonical_edge_pairs(graph)
            key = _pack_pairs(n, lo, hi)
        else:
            n = graph.n
    else:
        n, lo, hi = canonical_edge_pairs(graph)
        key = _pack_pairs(n, lo, hi)
    sum_a, sum_b = _edge_set_sums(key)
    digest = hashlib.blake2b(digest_size=_FINGERPRINT_BYTES)
    digest.update(int(n).to_bytes(8, "little"))
    digest.update(int(key.size).to_bytes(8, "little"))
    digest.update(sum_a.to_bytes(8, "little"))
    digest.update(sum_b.to_bytes(8, "little"))
    fingerprint = digest.hexdigest()
    if isinstance(graph, EdgeListGraph):
        object.__setattr__(graph, "_fingerprint", fingerprint)
    return fingerprint


def _pack_pairs(n: int, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """One int64 key per canonical pair (``lo * n + hi`` when it fits,
    a mixed combination beyond the packing limit)."""
    if n <= _PACK_LIMIT:
        return lo * np.int64(n) + hi
    with np.errstate(over="ignore"):
        return _splitmix(lo.astype(np.uint64)) ^ hi.astype(np.uint64)

_MERSENNE = (1 << 61) - 1  # a Mersenne prime, the classic modulus choice


def direct_mapping(modules: int) -> Mapping:
    """Naive round-robin layout: location ``x`` lives on module ``x mod p``.

    Simple but oblivious to the field geometry: when ``p`` divides ``n``
    the hot first column (cells ``i * n``) collapses onto module 0.
    """
    check_positive("modules", modules)
    return lambda x: x % modules


def aware_mapping(n: int, modules: int) -> Mapping:
    """The algorithm-aware layout ("choosing an appropriate mapping in
    case where the neighbour relations are known beforehand"): module
    ``(row + col) mod p``.  The diagonal skew spreads both hot groups of
    this algorithm -- the first column (read by the broadcasts) and the
    bottom row (read by the masking generations) -- across all modules
    for every ``p``.
    """
    check_positive("n", n)
    check_positive("modules", modules)
    return lambda x: ((x // n) + (x % n)) % modules


def adversarial_mapping(size: int, modules: int) -> Mapping:
    """Blocked layout: the first ``ceil(size/p)`` locations share module 0,
    and so on.  For the GCA algorithm this is "unfortunate": the whole
    first column (the C vector, the hottest data) lands on one module."""
    check_positive("size", size)
    check_positive("modules", modules)
    block = -(-size // modules)
    return lambda x: min(x // block, modules - 1)


@dataclass(frozen=True)
class UniversalHash:
    """One member of the universal family ``((a x + b) mod P) mod p``."""

    a: int
    b: int
    modules: int

    def __call__(self, x: int) -> int:
        return ((self.a * x + self.b) % _MERSENNE) % self.modules

    @staticmethod
    def sample(modules: int, seed: SeedLike = None) -> "UniversalHash":
        """Draw a random member of the family."""
        check_positive("modules", modules)
        rng = as_generator(seed)
        return UniversalHash(
            a=int(rng.integers(1, _MERSENNE)),
            b=int(rng.integers(0, _MERSENNE)),
            modules=modules,
        )


@dataclass
class CongestionProfile:
    """Module congestion of one mapping over a recorded run."""

    mapping_name: str
    modules: int
    per_generation_max: List[int]

    @property
    def peak(self) -> int:
        """Worst per-generation module congestion of the run."""
        return max(self.per_generation_max, default=0)

    @property
    def total_serialised_cycles(self) -> int:
        """Run duration if every generation costs its module congestion
        (each module serves one read per cycle)."""
        return sum(max(1, m) for m in self.per_generation_max)


def mapping_congestion(
    log: AccessLog, mapping: Mapping, modules: int, name: str
) -> CongestionProfile:
    """Evaluate ``mapping`` against the read streams of ``log``."""
    check_positive("modules", modules)
    per_generation = []
    for stats in log.generations:
        loads: Dict[int, int] = {}
        for cell, reads in stats.reads_per_cell.items():
            module = mapping(cell)
            if not 0 <= module < modules:
                raise ValueError(
                    f"mapping {name!r} sent cell {cell} to module {module}, "
                    f"outside [0, {modules})"
                )
            loads[module] = loads.get(module, 0) + reads
        per_generation.append(max(loads.values(), default=0))
    return CongestionProfile(
        mapping_name=name, modules=modules, per_generation_max=per_generation
    )


def compare_mappings(
    log: AccessLog,
    n: int,
    modules: int,
    hash_samples: int = 5,
    seed: SeedLike = 0,
) -> List[CongestionProfile]:
    """Profile the four mapping strategies on one recorded run.

    The hashed profile reports the *median-peak* sample of
    ``hash_samples`` independent draws (universal hashing is a
    distribution, not a single function).
    """
    size = n * (n + 1)
    profiles = [
        mapping_congestion(log, aware_mapping(n, modules), modules, "aware"),
        mapping_congestion(log, direct_mapping(modules), modules, "direct"),
        mapping_congestion(
            log, adversarial_mapping(size, modules), modules, "adversarial"
        ),
    ]
    rng = as_generator(seed)
    hashed = [
        mapping_congestion(
            log, UniversalHash.sample(modules, rng), modules, f"hash{k}"
        )
        for k in range(max(1, hash_samples))
    ]
    hashed.sort(key=lambda prof: prof.peak)
    median = hashed[len(hashed) // 2]
    profiles.append(
        CongestionProfile(
            mapping_name="universal-hash (median of samples)",
            modules=modules,
            per_generation_max=median.per_generation_max,
        )
    )
    return profiles
