"""Table 1: active cells, read accesses and congestion per generation.

The paper's Table 1 characterises each generation by the number of active
cells and a histogram of concurrent read accesses ("δ = # of concurrent
read accesses (congestion)" for "# cells with read access").  The values in
the paper are closed-form expressions in ``n``; this module encodes them
(:func:`paper_table1`), extracts the measured equivalents from a run's
:class:`~repro.gca.instrumentation.AccessLog` (:func:`measured_table1`),
and joins the two (:func:`compare_table1`).

The paper's table is partially approximate -- e.g. generation 3's read
count ``(n-1)^2`` is the power-of-two aggregate ``n(n-1)`` rounded, and
generation 9's counts ignore the simultaneous ``D_N`` archive the prose
describes.  Known deviations are annotated on the rows (``note``) and the
comparison reports them honestly rather than forcing a match; see
EXPERIMENTS.md for the per-``n`` outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.gca.instrumentation import AccessLog, GenerationStats, merge_stats
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive

Histogram = List[Tuple[int, int]]  # (#cells, delta) pairs, delta desc


@dataclass(frozen=True)
class Table1Row:
    """One (generation) row of Table 1."""

    step: int
    generation: int
    active_cells: int
    read_histogram: Histogram      # only cells with delta >= 1
    note: str = ""

    @property
    def max_congestion(self) -> int:
        return max((delta for _c, delta in self.read_histogram), default=0)

    @property
    def cells_read(self) -> int:
        return sum(c for c, _delta in self.read_histogram)


def paper_table1(n: int) -> List[Table1Row]:
    """Table 1's closed-form rows evaluated at ``n``.

    The zero-congestion entries ("# cells with 0 read accesses") the paper
    lists are omitted from the histograms -- they are the complement of the
    cells read and carry no information; the rows keep only δ >= 1.
    Generations 3 and 7 are the aggregates over their ``log n``
    sub-generations, as in the paper.
    """
    check_positive("n", n)
    rows = [
        Table1Row(1, 0, n * (n + 1), [],
                  note="initialisation, no reads"),
        Table1Row(2, 1, n * (n + 1), [(n, n + 1)]),
        Table1Row(2, 2, n * n, [(n, n)]),
        Table1Row(2, 3, (n * n) // 2, [((n - 1) ** 2, 1)],
                  note="aggregate over log n sub-generations; the paper's "
                       "(n-1)^2 approximates the exact n(n-1) reads"),
        Table1Row(2, 4, n, [(n, 1)]),
        Table1Row(3, 5, n * (n + 1), [(n, n + 1)], note="see gen. 1"),
        Table1Row(3, 6, n * n, [(n, n)], note="see gen. 2"),
        Table1Row(3, 7, (n * n) // 2, [((n - 1) ** 2, 1)], note="see gen. 3"),
        Table1Row(3, 8, n, [(n, 1)], note="see gen. 4"),
        Table1Row(4, 9, (n - 1) ** 2, [(n, n - 1)],
                  note="the paper's count excludes the simultaneous D_N "
                       "archive; measured active is n(n+1) and delta n+1"),
        Table1Row(5, 10, n, [(n, n)],
                  note="delta is the worst case (all pointers colliding); "
                       "measured delta is data dependent, <= n"),
        Table1Row(6, 11, n, [(n, n)], note="worst case, as gen. 10"),
    ]
    return rows


# ----------------------------------------------------------------------
# measured side
# ----------------------------------------------------------------------

def _first_iteration_stats(log: AccessLog) -> Dict[int, List[GenerationStats]]:
    """Group the log's generation stats of iteration 0 (plus generation 0)
    by paper generation number."""
    grouped: Dict[int, List[GenerationStats]] = {}
    for stats in log.generations:
        label = stats.label
        if label == "gen0":
            grouped.setdefault(0, []).append(stats)
            continue
        if not label.startswith("it0."):
            continue
        part = label.split(".")[1]          # "gen3"
        number = int(part[3:])
        grouped.setdefault(number, []).append(stats)
    return grouped


@dataclass
class MeasuredRow:
    """Measured Table 1 row (iteration 0 of a run).

    ``read_histogram`` aggregates the whole sub-generation ladder (so a
    cell read in every jump sub-generation shows the summed count), while
    ``peak_sub_congestion`` is the maximum *within one generation* -- the
    quantity the paper's delta bounds.
    """

    generation: int
    active_cells: int
    read_histogram: Histogram
    sub_generations: int = 1
    peak_sub_congestion: int = 0

    @property
    def max_congestion(self) -> int:
        return max((delta for _c, delta in self.read_histogram), default=0)

    @property
    def cells_read(self) -> int:
        return sum(c for c, _delta in self.read_histogram)


def measured_table1(log: AccessLog) -> List[MeasuredRow]:
    """Extract measured Table 1 rows from a run's access log.

    Sub-generations of generations 3/7/10 are merged like the paper's
    aggregate rows (active cells of the *first* sub-generation -- the
    paper's ``n^2/2`` refers to it -- read histogram summed over all).
    """
    grouped = _first_iteration_stats(log)
    rows: List[MeasuredRow] = []
    for number in sorted(grouped):
        parts = grouped[number]
        merged = merge_stats(f"gen{number}", parts)
        # Sub-generation groups (3/7/10) report the first sub-generation's
        # activity -- the paper's n^2/2 and n figures are per-sub counts --
        # while the read histogram aggregates the whole ladder.
        if number in (3, 7, 10):
            active = parts[0].active_cells
        else:
            active = merged.active_cells
        histogram = merged.congestion_histogram()
        rows.append(
            MeasuredRow(
                generation=number,
                active_cells=active,
                read_histogram=histogram,
                sub_generations=len(parts),
                peak_sub_congestion=max(p.max_congestion for p in parts),
            )
        )
    return rows


@dataclass
class Table1Comparison:
    """Paper-vs-measured join for one generation."""

    generation: int
    step: int
    paper_active: int
    measured_active: int
    paper_histogram: Histogram
    measured_histogram: Histogram
    measured_peak: int = 0
    note: str = ""

    @property
    def active_matches(self) -> bool:
        return self.paper_active == self.measured_active

    @property
    def paper_max_congestion(self) -> int:
        return max((d for _c, d in self.paper_histogram), default=0)

    @property
    def measured_max_congestion(self) -> int:
        """Peak congestion within one (sub-)generation -- comparable to the
        paper's delta even where the histogram aggregates a ladder."""
        if self.measured_peak:
            return self.measured_peak
        return max((d for _c, d in self.measured_histogram), default=0)

    @property
    def congestion_within_paper_bound(self) -> bool:
        """Whether the measured peak congestion stays within the paper's
        figure.  Generation 9 is exempt: the paper's ``n - 1`` omits the
        simultaneous ``D_N`` archive and self-reads, so the faithful
        implementation measures ``n + 1`` there (documented deviation)."""
        if self.generation == 9:
            return self.measured_max_congestion <= self.paper_max_congestion + 2
        return self.measured_max_congestion <= self.paper_max_congestion


def compare_table1(n: int, log: AccessLog) -> List[Table1Comparison]:
    """Join the paper's Table 1 with the measured rows of ``log``."""
    paper_rows = {row.generation: row for row in paper_table1(n)}
    measured_rows = {row.generation: row for row in measured_table1(log)}
    out = []
    for number in sorted(paper_rows):
        p = paper_rows[number]
        m = measured_rows.get(number)
        out.append(
            Table1Comparison(
                generation=number,
                step=p.step,
                paper_active=p.active_cells,
                measured_active=m.active_cells if m else 0,
                paper_histogram=p.read_histogram,
                measured_histogram=m.read_histogram if m else [],
                measured_peak=m.peak_sub_congestion if m else 0,
                note=p.note,
            )
        )
    return out


def exact_expected_table1(n: int) -> Dict[int, Dict[str, int]]:
    """The *exact* closed forms this implementation satisfies (derived in
    DESIGN.md and enforced by the tests), for reference alongside the
    paper's approximate table.  Keys: generation number; values: active
    cells, total reads, max delta (worst case over inputs).
    """
    check_positive("n", n)
    log = ceil_log2(max(2, n))
    # total reads of a full reduction ladder: sum over s of per-row active
    reduction_reads = 0
    for s in range(log):
        stride = 1 << s
        cols = len([c for c in range(0, n, 2 * stride) if c + stride < n])
        reduction_reads += n * cols
    return {
        0: {"active": n * (n + 1), "reads": 0, "max_delta": 0},
        1: {"active": n * (n + 1), "reads": n * (n + 1), "max_delta": n + 1},
        2: {"active": n * n, "reads": n * n, "max_delta": n},
        3: {"active_first_sub": n * (n // 2),
            "reads": reduction_reads, "max_delta": 1},
        4: {"active": n, "reads": n, "max_delta": 1},
        5: {"active": n * (n + 1), "reads": n * (n + 1), "max_delta": n + 1},
        6: {"active": n * n, "reads": n * n, "max_delta": n},
        7: {"active_first_sub": n * (n // 2),
            "reads": reduction_reads, "max_delta": 1},
        8: {"active": n, "reads": n, "max_delta": 1},
        9: {"active": n * (n + 1), "reads": n * (n + 1), "max_delta": n + 1},
        10: {"active": n, "reads_per_sub": n, "max_delta": n},
        11: {"active": n, "reads": n, "max_delta": n},
    }
