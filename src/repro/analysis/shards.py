"""Shard planning, storage and verification for the out-of-core engine.

The contracting engine (:mod:`repro.hirschberg.contracting`) is the
fastest path for large sparse graphs but holds the whole edge list --
and several same-sized temporaries -- in RAM.  The sharded engine
(:mod:`repro.hirschberg.sharded`) removes that ceiling by bounding the
*resident* working set to a configured byte budget and letting capacity
grow with disk instead.  This module owns the three pieces that make
that bound real:

* :func:`plan_shards` -- turns ``(n, edges, memory budget, workers)``
  into a :class:`ShardPlan`: how many shards, how many edges each may
  hold, and how large the streaming chunks are.  The planner sizes
  shards so that ``workers`` concurrent shard solves (input slabs,
  ``np.unique`` scratch, contraction levels, and the shared-memory
  double count) fit inside the budget together;
* :class:`ShardStore` / :class:`PairFile` -- append-only files of
  ``(u, v)`` int64 pairs on disk, read back through *windowed*
  ``np.memmap`` views (:func:`open_memmap_window`) that are unmapped
  eagerly, so reading a 100M-edge shard file never pins more than one
  window of pages.  Mapped-and-touched pages count toward RSS exactly
  like heap pages; the explicit unmap is what keeps the peak honest;
* :func:`spot_check_labels` -- the oracle *spot-check* protocol for
  results too large for a full union-find oracle run: sampled edge
  consistency, representative sanity, and an exact union-find solve of
  a subsampled subgraph whose components must refine the full labels.

The spot check is sampling-based and therefore probabilistic: a random
corruption of ``t`` labels escapes detection with probability that
decays geometrically in ``t`` and the sample sizes (the property tests
in ``tests/analysis/test_shards.py`` measure this).  It is a
verification *protocol*, not a proof -- an adversary who relabels one
entire component consistently onto another component's representative
is detectable only by check A whenever any sampled edge crosses the two.
"""

from __future__ import annotations

import mmap
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.util.validation import check_positive

PathLike = Union[str, Path]

#: Estimated resident bytes one in-flight shard solve costs per edge:
#: the (u, v) input slabs, the worker's ``np.unique`` scratch, the
#: contraction level arrays, the frontier output slab -- and the fact
#: that shared-memory pages touched by both parent and worker are
#: counted in both processes' RSS.  Deliberately conservative; the
#: bench (``benchmarks/bench_sharded.py``) asserts the realized peak.
SHARD_BYTES_PER_EDGE = 256

#: Fraction of the memory budget the planner hands to concurrent shard
#: solves; the rest covers the parent's streaming chunks, the merge
#: label array and the interpreter baseline.
_SOLVE_BUDGET_FRACTION = 0.75

#: Never plan shards smaller than this (per-shard fixed costs dominate).
MIN_SHARD_EDGES = 65_536

#: Hard cap on the shard count (file handles, per-shard overheads).
MAX_SHARDS = 4096

#: Default edges per streamed partition chunk (32 MiB of pairs).
DEFAULT_CHUNK_EDGES = 1 << 21

#: Open file handles the :class:`ShardStore` keeps warm (LRU).
_HANDLE_CACHE = 32


@dataclass(frozen=True)
class ShardPlan:
    """How one out-of-core solve is laid out.

    Attributes
    ----------
    n:
        Global vertex count.
    edges:
        The edge count the plan was sized for (an estimate is fine; the
        store records the realized counts).
    shards:
        Number of shard files the edge list is partitioned into.
    shard_edges:
        Planned edges per shard (the in-RAM unit of work).
    memory_budget:
        Resident byte budget the plan was sized against.
    chunk_edges:
        Edges per streaming chunk during partitioning and merging.
    workers:
        Concurrent shard solves the budget admits.
    """

    n: int
    edges: int
    shards: int
    shard_edges: int
    memory_budget: int
    chunk_edges: int
    workers: int

    def to_json(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "edges": self.edges,
            "shards": self.shards,
            "shard_edges": self.shard_edges,
            "memory_budget": self.memory_budget,
            "chunk_edges": self.chunk_edges,
            "workers": self.workers,
        }


def plan_shards(
    n: int,
    edges: int,
    memory_budget: Optional[int] = None,
    shards: Optional[int] = None,
    workers: int = 1,
) -> ShardPlan:
    """Size a shard layout for ``edges`` edges under ``memory_budget``.

    ``memory_budget=None`` probes the host
    (:func:`repro.core.dispatch.probe_available_memory`) and budgets
    half of what is available.  ``shards`` overrides the computed shard
    count (the bench's scaling section pins it); the planner still
    reports the per-shard edge load so callers can check feasibility.
    """
    check_positive("n", n)
    if edges < 0:
        raise ValueError(f"edges must be >= 0, got {edges}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if memory_budget is None:
        from repro.core.dispatch import probe_available_memory

        memory_budget = probe_available_memory(default=2 << 30) // 2
    memory_budget = int(memory_budget)
    if memory_budget < 1:
        raise ValueError(
            f"memory_budget must be >= 1 byte, got {memory_budget}"
        )
    solve_budget = memory_budget * _SOLVE_BUDGET_FRACTION
    cap = max(
        MIN_SHARD_EDGES, int(solve_budget // (workers * SHARD_BYTES_PER_EDGE))
    )
    if shards is None:
        shards = max(1, -(-max(edges, 1) // cap))
        shards = min(shards, MAX_SHARDS)
    else:
        check_positive("shards", shards)
        if shards > MAX_SHARDS:
            raise ValueError(
                f"shards must be <= {MAX_SHARDS}, got {shards}"
            )
    shard_edges = -(-max(edges, 1) // shards)
    chunk_edges = int(min(DEFAULT_CHUNK_EDGES, max(shard_edges, 4096)))
    return ShardPlan(
        n=n,
        edges=edges,
        shards=int(shards),
        shard_edges=int(shard_edges),
        memory_budget=memory_budget,
        chunk_edges=chunk_edges,
        workers=workers,
    )


# ----------------------------------------------------------------------
# windowed memory-mapped pair files
# ----------------------------------------------------------------------

@contextmanager
def open_memmap_window(
    path: PathLike, start: int, stop: int, dtype=np.int64
) -> Iterator[np.ndarray]:
    """Read-only view of items ``[start, stop)`` of a flat binary file.

    The mapping starts at the largest ``mmap.ALLOCATIONGRANULARITY``
    multiple below the byte offset (``np.memmap`` requires aligned
    offsets) and is **unmapped eagerly on exit** -- pages a window
    touched are released back to the OS instead of accumulating in this
    process's resident set, which is the whole point of windowed reads.

    Callers must copy anything they keep: the yielded view dies with
    the mapping, and touching it after the ``with`` block is undefined.
    """
    itemsize = np.dtype(dtype).itemsize
    if stop < start:
        raise ValueError(f"window [{start}, {stop}) is negative")
    if start == stop:
        yield np.empty(0, dtype=dtype)
        return
    byte_start = start * itemsize
    offset = (byte_start // mmap.ALLOCATIONGRANULARITY) * mmap.ALLOCATIONGRANULARITY
    lead = byte_start - offset
    length = lead + (stop - start) * itemsize
    mapped = np.memmap(path, dtype=np.uint8, mode="r", offset=offset,
                       shape=(length,))
    try:
        yield mapped[lead:].view(dtype)
    finally:
        mapped._mmap.close()


class PairFile:
    """An append-only binary file of interleaved ``(u, v)`` int64 pairs.

    Appends go through a buffered file handle; reads come back as
    bounded windows through :func:`open_memmap_window`, each copied out
    and unmapped before the next is opened, so iterating a file of any
    size keeps only ``chunk_edges`` pairs resident.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._handle = None
        self._pairs = (
            self.path.stat().st_size // 16 if self.path.exists() else 0
        )

    @property
    def pairs(self) -> int:
        """Number of ``(u, v)`` pairs written so far."""
        return self._pairs

    def append(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append parallel endpoint arrays as interleaved pairs."""
        if u.size != v.size:
            raise ValueError(
                f"endpoint arrays differ in length: {u.size} vs {v.size}"
            )
        if u.size == 0:
            return
        block = np.empty((u.size, 2), dtype=np.int64)
        block[:, 0] = u
        block[:, 1] = v
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(block.tobytes())
        self._pairs += int(u.size)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def iter_chunks(
        self, chunk_pairs: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(u, v)`` copies, at most ``chunk_pairs`` pairs each."""
        check_positive("chunk_pairs", chunk_pairs)
        self.flush()
        total = self._pairs
        for start in range(0, total, chunk_pairs):
            stop = min(start + chunk_pairs, total)
            with open_memmap_window(
                self.path, start * 2, stop * 2
            ) as window:
                block = np.array(window).reshape(-1, 2)
            yield block[:, 0], block[:, 1]

    def read_all(self) -> Tuple[np.ndarray, np.ndarray]:
        """The whole file as ``(u, v)`` arrays (one bounded window)."""
        self.flush()
        with open_memmap_window(self.path, 0, self._pairs * 2) as window:
            block = np.array(window).reshape(-1, 2)
        return block[:, 0], block[:, 1]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def remove(self) -> None:
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "PairFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardStore:
    """``k`` :class:`PairFile` shards under one working directory.

    The store is the on-disk half of the out-of-core engine: the
    partitioner appends round-robin slices of each streamed chunk, the
    solve stage reads whole shards back (each bounded by the plan), and
    :meth:`remove` deletes every file -- CI asserts the working
    directory is empty afterwards, mirroring the ``/dev/shm`` leak diff
    for the slab pool.
    """

    def __init__(self, workdir: PathLike, shards: int):
        check_positive("shards", shards)
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self._files: List[PairFile] = [
            PairFile(self.workdir / f"shard_{i:04d}.pairs")
            for i in range(shards)
        ]

    def append(self, shard: int, u: np.ndarray, v: np.ndarray) -> None:
        self._files[shard].append(u, v)
        self._trim_handles()

    def _trim_handles(self) -> None:
        open_files = [f for f in self._files if f._handle is not None]
        while len(open_files) > _HANDLE_CACHE:
            open_files.pop(0).close()

    def partition(
        self, chunks: Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> int:
        """Stream ``(u, v)`` chunks into the shards; returns the total.

        Each chunk is split by stride across all shards, so shard sizes
        stay balanced whatever the stream's length or ordering -- a
        sorted input file cannot overload one shard.
        """
        total = 0
        k = self.shards
        for u, v in chunks:
            u = np.ascontiguousarray(u, dtype=np.int64).ravel()
            v = np.ascontiguousarray(v, dtype=np.int64).ravel()
            if u.size != v.size:
                raise ValueError(
                    f"chunk endpoint arrays differ: {u.size} vs {v.size}"
                )
            total += int(u.size)
            if k == 1:
                self.append(0, u, v)
                continue
            for i in range(k):
                if u[i::k].size:
                    self.append(i, u[i::k], v[i::k])
        self.flush()
        return total

    def flush(self) -> None:
        for f in self._files:
            f.flush()

    def edge_count(self, shard: int) -> int:
        return self._files[shard].pairs

    def total_edges(self) -> int:
        return sum(f.pairs for f in self._files)

    def read_shard(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._files[shard].read_all()

    def iter_all_chunks(
        self, chunk_pairs: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Every stored edge, shard by shard, in bounded chunks."""
        for f in self._files:
            yield from f.iter_chunks(chunk_pairs)

    def close(self) -> None:
        for f in self._files:
            f.close()

    def remove(self) -> None:
        for f in self._files:
            f.remove()

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the oracle spot-check protocol
# ----------------------------------------------------------------------

#: Edges the protocol checks for label consistency (sampled past this).
DEFAULT_EDGE_SAMPLES = 2_000_000

#: Vertices checked for representative sanity.
DEFAULT_VERTEX_SAMPLES = 100_000

#: Edges in the union-find refinement subsample.
DEFAULT_SUBSAMPLE_EDGES = 200_000

#: Violations listed verbatim in the report (the counts are complete).
_MAX_EXAMPLES = 20


@dataclass
class SpotCheckReport:
    """Outcome of :func:`spot_check_labels`.

    ``checks`` maps each check name to pass/fail; ``violations`` holds
    up to :data:`_MAX_EXAMPLES` human-readable examples.  ``ok`` is the
    conjunction -- what the bench and CI assert.
    """

    n: int
    edges_checked: int
    vertices_checked: int
    subsample_edges: int
    checks: Dict[str, bool] = field(default_factory=dict)
    violation_count: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def _note(self, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < _MAX_EXAMPLES:
            self.violations.append(message)

    def to_json(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "edges_checked": self.edges_checked,
            "vertices_checked": self.vertices_checked,
            "subsample_edges": self.subsample_edges,
            "checks": dict(self.checks),
            "violation_count": self.violation_count,
            "violations": list(self.violations),
            "ok": self.ok,
        }


def spot_check_labels(
    labels: np.ndarray,
    n: int,
    edge_chunks: Iterable[Tuple[np.ndarray, np.ndarray]],
    edges_hint: Optional[int] = None,
    max_edge_samples: int = DEFAULT_EDGE_SAMPLES,
    vertex_samples: int = DEFAULT_VERTEX_SAMPLES,
    subsample_edges: int = DEFAULT_SUBSAMPLE_EDGES,
    seed: int = 0,
) -> SpotCheckReport:
    """Sampled verification of a component labelling at any scale.

    Three independent checks, each a different failure lens:

    * **edge consistency** (check A): for sampled edges ``(u, v)``,
      ``labels[u] == labels[v]`` -- catches under-merges and random
      label corruption with probability rising geometrically in the
      number of corrupted entries (every corrupted non-isolated vertex
      that lands in the sample is caught unless its whole neighbourhood
      was corrupted consistently);
    * **representative sanity** (check B): for sampled vertices ``x``,
      ``labels[x]`` is in range, ``labels[x] <= x`` (the canonical
      minimum-index convention) and ``labels[labels[x]] == labels[x]``
      (representatives are fixed points);
    * **union-find refinement** (check C): an exact union-find solve of
      a subsampled subgraph; every subgraph component must lie inside
      one full-label class (subsample connectivity is a lower bound on
      true connectivity, so any split it sees is a genuine error).

    ``edge_chunks`` is re-streamed, never materialised; ``edges_hint``
    (when known) spreads the edge sample uniformly over the stream
    instead of over its prefix.  The protocol is probabilistic by
    construction -- see the module docstring for the honest limits.
    """
    check_positive("n", n)
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise ValueError(
            f"labels must have shape ({n},), got {labels.shape}"
        )
    rng = np.random.default_rng(seed)
    report = SpotCheckReport(
        n=n, edges_checked=0, vertices_checked=0, subsample_edges=0
    )

    # -- check B: representative sanity on sampled vertices ------------
    count = min(vertex_samples, n)
    verts = (
        np.arange(n, dtype=np.int64)
        if count == n
        else rng.integers(0, n, size=count, dtype=np.int64)
    )
    report.vertices_checked = int(verts.size)
    lx = labels[verts]
    in_range = (lx >= 0) & (lx < n)
    minimal = lx <= verts
    for x in verts[~in_range][:_MAX_EXAMPLES]:
        report._note(f"labels[{int(x)}] = {int(labels[x])} out of range")
    for x in verts[in_range & ~minimal][:_MAX_EXAMPLES]:
        report._note(
            f"labels[{int(x)}] = {int(labels[x])} exceeds the vertex index"
        )
    idem = np.ones(verts.size, dtype=bool)
    safe = in_range
    idem[safe] = labels[lx[safe]] == lx[safe]
    for x in verts[safe & ~idem][:_MAX_EXAMPLES]:
        report._note(
            f"labels[{int(x)}] = {int(labels[x])} is not a fixed point"
        )
    report.checks["representative_in_range"] = bool(in_range.all())
    report.checks["representative_min"] = bool(minimal.all())
    report.checks["representative_idempotent"] = bool(idem.all())

    # -- checks A and C over the edge stream ---------------------------
    stride = 1
    if edges_hint and edges_hint > max_edge_samples > 0:
        stride = -(-edges_hint // max_edge_samples)
    sub_stride = 1
    if edges_hint and edges_hint > subsample_edges > 0:
        sub_stride = -(-edges_hint // subsample_edges)
    edge_ok = True
    sub_u: List[np.ndarray] = []
    sub_v: List[np.ndarray] = []
    sub_total = 0
    offset = 0
    for u, v in edge_chunks:
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.size == 0:
            continue
        first = (-offset) % stride
        su, sv = u[first::stride], v[first::stride]
        if report.edges_checked >= max_edge_samples > 0:
            su = sv = np.empty(0, dtype=np.int64)
        if su.size:
            report.edges_checked += int(su.size)
            mismatched = labels[su] != labels[sv]
            if mismatched.any():
                edge_ok = False
                for a, b in zip(
                    su[mismatched][:_MAX_EXAMPLES].tolist(),
                    sv[mismatched][:_MAX_EXAMPLES].tolist(),
                ):
                    report._note(
                        f"edge ({a}, {b}) crosses labels "
                        f"{int(labels[a])} != {int(labels[b])}"
                    )
        if sub_total < subsample_edges:
            first = (-offset) % sub_stride
            cu, cv = u[first::sub_stride], v[first::sub_stride]
            take = min(cu.size, subsample_edges - sub_total)
            if take:
                sub_u.append(cu[:take].copy())
                sub_v.append(cv[:take].copy())
                sub_total += take
        offset += int(u.size)
    report.checks["edge_consistency"] = edge_ok

    # -- check C: exact union-find on the subsampled subgraph ----------
    report.subsample_edges = sub_total
    refinement_ok = True
    if sub_total:
        from repro.graphs.union_find import UnionFind

        eu = np.concatenate(sub_u)
        ev = np.concatenate(sub_v)
        verts_all, inverse = np.unique(
            np.concatenate([eu, ev]), return_inverse=True
        )
        lu, lv = inverse[:eu.size], inverse[eu.size:]
        uf = UnionFind(int(verts_all.size))
        for a, b in zip(lu.tolist(), lv.tolist()):
            uf.union(a, b)
        roots = np.asarray(uf.canonical_labels())
        full = labels[verts_all]
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        sorted_full = full[order]
        same_group = np.empty(sorted_roots.size, dtype=bool)
        same_group[0] = False
        same_group[1:] = sorted_roots[1:] == sorted_roots[:-1]
        split = same_group & (sorted_full != np.concatenate(
            ([np.int64(-1)], sorted_full[:-1])
        ))
        if split.any():
            refinement_ok = False
            for i in np.flatnonzero(split)[:_MAX_EXAMPLES]:
                a = int(verts_all[order[i - 1]])
                b = int(verts_all[order[i]])
                report._note(
                    f"subsample-connected vertices {a} and {b} carry "
                    f"labels {int(labels[a])} != {int(labels[b])}"
                )
    report.checks["oracle_refinement"] = refinement_ok
    return report


def remove_workdir(workdir: PathLike) -> None:
    """Delete a shard working directory if it is empty of shard files.

    Only files this module created (``*.pairs``, ``labels.bin``) are
    removed; anything else is left in place and the directory survives,
    so a user-supplied ``workdir`` can never lose unrelated data.
    """
    workdir = Path(workdir)
    if not workdir.exists():
        return
    for name in os.listdir(workdir):
        if name.endswith(".pairs") or name == "labels.bin":
            try:
                (workdir / name).unlink()
            except FileNotFoundError:
                pass
    try:
        workdir.rmdir()
    except OSError:
        pass  # non-empty: user files stay untouched
