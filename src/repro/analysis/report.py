"""Rendering of the analysis results as paper-style text tables.

Each ``render_*`` function takes the structured comparison objects of this
package and produces the aligned ASCII table the benchmark harnesses print
(and EXPERIMENTS.md archives).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.complexity import Table2Row, TotalGenerations
from repro.analysis.comparison import ModelRow, TimingRow
from repro.analysis.congestion import Table1Comparison
from repro.util.formatting import render_table


def _histogram_text(histogram: Sequence) -> str:
    if not histogram:
        return "-"
    return ", ".join(f"{cells}@{delta}" for cells, delta in histogram)


def render_table1(n: int, comparisons: List[Table1Comparison]) -> str:
    """Paper-vs-measured Table 1 ("#cells@delta" = #cells with that
    congestion; only delta >= 1 entries are shown)."""
    rows = []
    for c in comparisons:
        rows.append(
            [
                c.step,
                c.generation,
                c.paper_active,
                c.measured_active,
                _histogram_text(c.paper_histogram),
                _histogram_text(c.measured_histogram),
                "yes" if c.active_matches else "no",
            ]
        )
    return render_table(
        ["step", "gen", "active(paper)", "active(meas)",
         "reads(paper)", "reads(meas)", "active=="],
        rows,
        title=f"Table 1 reproduction, n = {n}",
    )


def render_table2(n: int, rows: List[Table2Row]) -> str:
    """Paper-vs-measured Table 2."""
    body = [
        [r.step, r.paper_formula, r.predicted,
         "-" if r.measured is None else r.measured,
         "yes" if r.matches else "no"]
        for r in rows
    ]
    return render_table(
        ["step", "paper formula", "predicted", "measured", "match"],
        body,
        title=f"Table 2 reproduction, n = {n}",
    )


def render_totals(rows: List[TotalGenerations]) -> str:
    """The total-generation bound across a sweep of ``n``."""
    body = [
        [r.n, r.log_n, r.iterations, r.per_iteration, r.predicted_total,
         "-" if r.measured_total is None else r.measured_total,
         "yes" if r.matches else "no"]
        for r in rows
    ]
    return render_table(
        ["n", "log n", "iters", "gens/iter", "1+log n(3log n+8)",
         "measured", "match"],
        body,
        title="Total generations: 1 + log(n) * (3 log(n) + 8)",
    )


def render_model_comparison(rows: List[ModelRow]) -> str:
    """GCA vs PRAM vs sequential cost table."""
    body = [
        [r.model, r.n, r.time_units, r.processing_elements, r.work,
         r.memory_cells, r.peak_congestion,
         "yes" if r.labels_correct else "NO"]
        for r in rows
    ]
    return render_table(
        ["model", "n", "time", "PEs", "work", "memory", "peak delta", "correct"],
        body,
        title="Model comparison (time in model-native units)",
    )


def render_timings(rows: List[TimingRow]) -> str:
    """Wall-clock engine timings."""
    body = [[r.engine, r.n, f"{r.seconds * 1e3:.3f}"] for r in rows]
    return render_table(
        ["engine", "n", "ms (best)"], body, title="Engine wall-clock timings"
    )
