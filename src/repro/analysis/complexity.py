"""Table 2 and the total-generation bound (Section 3, "Time complexity").

The paper's complexity statement: steps 1, 4 and 6 take one generation;
steps 2 and 3 take ``1 + log n + 1 + 1`` each (the row-minimum reduction
needs ``log n`` sub-generations); step 5 takes ``log n``; so one outer
iteration costs ``3 log n + 8`` generations and the whole algorithm

    total = 1 + log(n) * (3 log(n) + 8)        (O(log^2 n))

using ``n(n+1)`` processors (cells).  This module evaluates the closed
forms, extracts the measured counterpart from a run, and provides the
work/cost figures for the GCA-vs-PRAM discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.schedule import (
    STEP_OF_GENERATION,
    full_schedule,
    generations_per_iteration,
    generations_per_step,
    total_generations,
)
from repro.gca.instrumentation import AccessLog
from repro.util.intmath import ceil_log2, outer_iterations
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: a Hirschberg step and its generation count."""

    step: int
    paper_formula: str
    predicted: int
    measured: Optional[int] = None

    @property
    def matches(self) -> bool:
        return self.measured is None or self.measured == self.predicted


_PAPER_FORMULAS = {
    1: "1",
    2: "1 + log(n) + 1 + 1",
    3: "1 + log(n) + 1 + 1",
    4: "1",
    5: "log(n)",
    6: "1",
}


def predicted_table2(n: int) -> List[Table2Row]:
    """Table 2 evaluated at ``n`` (per-iteration counts; step 1 once)."""
    per_step = generations_per_step(n)
    return [
        Table2Row(step=s, paper_formula=_PAPER_FORMULAS[s], predicted=per_step[s])
        for s in sorted(per_step)
    ]


def measured_generations_per_step(log: AccessLog, iteration: int = 0) -> Dict[int, int]:
    """Generations executed per Hirschberg step in one iteration of a
    recorded run (step 1 counts the one-off generation 0)."""
    counts: Dict[int, int] = {s: 0 for s in range(1, 7)}
    prefix = f"it{iteration}."
    for stats in log.generations:
        label = stats.label
        if label == "gen0":
            counts[1] += 1
            continue
        if not label.startswith(prefix):
            continue
        number = int(label.split(".")[1][3:])
        counts[STEP_OF_GENERATION[number]] += 1
    return counts


def compare_table2(n: int, log: AccessLog) -> List[Table2Row]:
    """Predicted vs measured Table 2 for iteration 0 of a recorded run."""
    measured = measured_generations_per_step(log)
    return [
        Table2Row(
            step=row.step,
            paper_formula=row.paper_formula,
            predicted=row.predicted,
            measured=measured.get(row.step, 0),
        )
        for row in predicted_table2(n)
    ]


# ----------------------------------------------------------------------
# the total bound
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TotalGenerations:
    """Predicted vs measured generation totals for one ``n``."""

    n: int
    log_n: int
    iterations: int
    per_iteration: int
    predicted_total: int
    measured_total: Optional[int] = None

    @property
    def matches(self) -> bool:
        return self.measured_total is None or self.measured_total == self.predicted_total


def predicted_total(n: int) -> TotalGenerations:
    """The paper's bound ``1 + log n (3 log n + 8)`` with ``ceil(log2)``."""
    check_positive("n", n)
    return TotalGenerations(
        n=n,
        log_n=ceil_log2(max(1, n)),
        iterations=outer_iterations(n),
        per_iteration=generations_per_iteration(n),
        predicted_total=total_generations(n),
    )


def schedule_total(n: int) -> int:
    """Length of the concrete schedule -- the structural measurement that
    must equal the closed form for every ``n``."""
    return len(full_schedule(n))


def measured_total(n: int, log: AccessLog) -> TotalGenerations:
    """Join the closed form with a run's actual generation count."""
    base = predicted_total(n)
    return TotalGenerations(
        n=base.n,
        log_n=base.log_n,
        iterations=base.iterations,
        per_iteration=base.per_iteration,
        predicted_total=base.predicted_total,
        measured_total=log.total_generations,
    )


# ----------------------------------------------------------------------
# cost-model quantities for the GCA-vs-PRAM discussion (Sections 1 and 3)
# ----------------------------------------------------------------------

def gca_time(n: int) -> int:
    """GCA parallel time in generations."""
    return total_generations(n)

def gca_cells(n: int) -> int:
    """GCA processing elements (cells)."""
    return n * (n + 1)

def gca_work(n: int) -> int:
    """GCA cost in the PRAM sense: cells x generations -- deliberately
    *not* work-optimal (Theta(n^2 log^2 n) vs sequential Theta(n^2)); the
    paper argues cells are cheap in FPGAs so this metric misleads."""
    return gca_cells(n) * gca_time(n)

def sequential_time(n: int) -> int:
    """Sequential complexity on dense adjacency-matrix input: Theta(n^2)."""
    check_positive("n", n)
    return n * n

def pram_work_optimal_processors(n: int) -> int:
    """The processor count a work-optimal PRAM version would use:
    ``P = t_s / t_p = n^2 / log^2 n`` (Section 3)."""
    log = max(1, ceil_log2(max(2, n)))
    return max(1, (n * n) // (log * log))
