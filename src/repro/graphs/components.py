"""Sequential connected-components baselines.

Three independent sequential algorithms (union-find, BFS, DFS) compute the
same canonical labelling -- node ``i`` is labelled with the smallest node
index in its component, the paper's super-node convention.  Having three
oracles lets the test-suite cross-check the oracles themselves, so a bug in
one of them cannot silently validate a broken parallel implementation.

The sequential time is ``Theta(n^2)`` on adjacency-matrix input, which is
the paper's reference point for work-optimality of the PRAM algorithm on
dense graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.union_find import UnionFind

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _as_graph(graph: GraphLike) -> AdjacencyMatrix:
    if isinstance(graph, AdjacencyMatrix):
        return graph
    return AdjacencyMatrix(np.asarray(graph))


def components_union_find(graph: GraphLike) -> np.ndarray:
    """Canonical component labels via union-find. ``O(n^2 alpha(n))``."""
    g = _as_graph(graph)
    uf = UnionFind(g.n)
    rows, cols = np.nonzero(np.triu(g.matrix, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        uf.union(i, j)
    return uf.canonical_labels()


def components_bfs(graph: GraphLike) -> np.ndarray:
    """Canonical component labels via breadth-first search.

    Visiting nodes in increasing index order guarantees each component is
    first discovered from its minimum node, which then becomes its label.
    """
    g = _as_graph(graph)
    labels = np.full(g.n, -1, dtype=np.int64)
    for start in range(g.n):
        if labels[start] != -1:
            continue
        labels[start] = start
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nb in np.flatnonzero(g.matrix[node]):
                if labels[nb] == -1:
                    labels[nb] = start
                    queue.append(int(nb))
    return labels


def components_dfs(graph: GraphLike) -> np.ndarray:
    """Canonical component labels via iterative depth-first search."""
    g = _as_graph(graph)
    labels = np.full(g.n, -1, dtype=np.int64)
    for start in range(g.n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = start
        while stack:
            node = stack.pop()
            for nb in np.flatnonzero(g.matrix[node]):
                if labels[nb] == -1:
                    labels[nb] = start
                    stack.append(int(nb))
    return labels


def canonical_labels(graph: GraphLike) -> np.ndarray:
    """The reference canonical labelling (union-find backed)."""
    return components_union_find(graph)


def count_components(graph: GraphLike) -> int:
    """Number of connected components."""
    return int(np.unique(canonical_labels(graph)).size)


def is_canonical_labelling(graph: GraphLike, labels: np.ndarray) -> bool:
    """Check that ``labels`` equals the canonical labelling of ``graph``.

    Used by integration tests and by the examples to assert parallel
    results without re-deriving the oracle inline.
    """
    labels = np.asarray(labels)
    g = _as_graph(graph)
    if labels.shape != (g.n,):
        return False
    return bool(np.array_equal(labels, canonical_labels(g)))


def components_scipy(graph: GraphLike) -> np.ndarray:
    """Canonical component labels via ``scipy.sparse.csgraph`` -- an
    external oracle sharing no traversal code with this library (used by
    the cross-validation tests alongside networkx)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components as _scipy_cc

    g = _as_graph(graph)
    _count, raw = _scipy_cc(
        csr_matrix(g.matrix), directed=False, return_labels=True
    )
    # scipy labels components arbitrarily; renumber to minimum-index reps
    labels = np.empty(g.n, dtype=np.int64)
    for comp in np.unique(raw):
        members = np.flatnonzero(raw == comp)
        labels[members] = members.min()
    return labels
