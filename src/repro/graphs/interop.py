"""NetworkX interoperability.

Conversions between :class:`~repro.graphs.adjacency.AdjacencyMatrix` and
``networkx.Graph``.  Besides user convenience, this gives the test-suite
an *external* connectivity oracle (``networkx.connected_components``) that
shares no code with the library's own union-find/BFS/DFS oracles.

NetworkX is an optional dependency: importing this module without it
raises ``ImportError`` with a clear message, and the rest of the library
never imports it.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix

try:  # pragma: no cover - exercised implicitly on import
    import networkx as nx
except ImportError as _exc:  # pragma: no cover
    raise ImportError(
        "repro.graphs.interop requires networkx; install it or avoid this module"
    ) from _exc

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def to_networkx(graph: GraphLike) -> "nx.Graph":
    """Convert to a ``networkx.Graph`` with nodes ``0..n-1``."""
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    out = nx.Graph()
    out.add_nodes_from(range(g.n))
    out.add_edges_from(g.edges())
    return out


def from_networkx(graph: "nx.Graph") -> AdjacencyMatrix:
    """Convert a ``networkx`` graph (nodes relabelled to ``0..n-1`` in
    sorted order; edge data is discarded, self-loops dropped)."""
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    if n == 0:
        raise ValueError("cannot convert an empty networkx graph")
    m = np.zeros((n, n), dtype=np.int8)
    for u, v in graph.edges():
        if u == v:
            continue
        m[index[u], index[v]] = m[index[v], index[u]] = 1
    return AdjacencyMatrix(m)


def networkx_canonical_labels(graph: GraphLike) -> np.ndarray:
    """Component labels via ``networkx.connected_components`` -- the
    external oracle (node -> minimum node index of its component)."""
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    labels = np.empty(g.n, dtype=np.int64)
    for component in nx.connected_components(to_networkx(g)):
        rep = min(component)
        for node in component:
            labels[node] = rep
    return labels
