"""Graph generators for tests, examples and benchmark workloads.

The benchmark harness needs graph families with controllable structure:

* *dense random* graphs -- the regime where Hirschberg's algorithm is
  work-optimal (``m = Theta(n^2)``);
* *planted components* -- known component structure for convergence and
  correctness studies;
* *paths/cycles/stars/cliques/grids* -- the deterministic shapes used in
  unit tests and in the image-labelling example.

All generators return :class:`repro.graphs.adjacency.AdjacencyMatrix`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive


def empty_graph(n: int) -> AdjacencyMatrix:
    """``n`` isolated nodes."""
    n = check_positive("n", n)
    return AdjacencyMatrix(np.zeros((n, n), dtype=np.int8))


def complete_graph(n: int) -> AdjacencyMatrix:
    """The clique ``K_n``."""
    n = check_positive("n", n)
    return AdjacencyMatrix(np.ones((n, n), dtype=np.int8))


def path_graph(n: int) -> AdjacencyMatrix:
    """The path ``0 - 1 - ... - (n-1)``.

    Paths are the worst case for naive label propagation (diameter ``n-1``)
    and therefore a good stress test for the ``O(log^2 n)`` bound.
    """
    n = check_positive("n", n)
    m = np.zeros((n, n), dtype=np.int8)
    idx = np.arange(n - 1)
    m[idx, idx + 1] = 1
    m[idx + 1, idx] = 1
    return AdjacencyMatrix(m)


def cycle_graph(n: int) -> AdjacencyMatrix:
    """The cycle ``C_n`` (requires ``n >= 3`` to avoid parallel edges)."""
    n = check_positive("n", n, minimum=3)
    m = path_graph(n).matrix.copy()
    m[0, n - 1] = m[n - 1, 0] = 1
    return AdjacencyMatrix(m)


def star_graph(n: int, center: int = 0) -> AdjacencyMatrix:
    """A star: ``center`` linked to every other node."""
    n = check_positive("n", n)
    if not 0 <= center < n:
        raise IndexError(f"center must be in [0, {n}), got {center}")
    m = np.zeros((n, n), dtype=np.int8)
    m[center, :] = 1
    m[:, center] = 1
    m[center, center] = 0
    return AdjacencyMatrix(m)


def grid_graph(rows: int, cols: int) -> AdjacencyMatrix:
    """A 4-connected ``rows x cols`` grid, nodes numbered row-major.

    This is the substrate of the image-labelling example: pixels are grid
    nodes and foreground regions are connected components.
    """
    rows = check_positive("rows", rows)
    cols = check_positive("cols", cols)
    n = rows * cols
    m = np.zeros((n, n), dtype=np.int8)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                m[node, node + 1] = m[node + 1, node] = 1
            if r + 1 < rows:
                m[node, node + cols] = m[node + cols, node] = 1
    return AdjacencyMatrix(m)


def from_edges(n: int, edges: Iterable[Tuple[int, int]]) -> AdjacencyMatrix:
    """Graph on ``n`` nodes with the given undirected ``edges``.

    Self-loops are rejected; duplicate edges are merged.
    """
    n = check_positive("n", n)
    m = np.zeros((n, n), dtype=np.int8)
    for i, j in edges:
        if i == j:
            raise ValueError(f"self-loop ({i}, {j}) is not allowed")
        if not (0 <= i < n and 0 <= j < n):
            raise IndexError(f"edge ({i}, {j}) out of range for n={n}")
        m[i, j] = m[j, i] = 1
    return AdjacencyMatrix(m)


def union_of_cliques(sizes: Sequence[int]) -> AdjacencyMatrix:
    """Disjoint cliques of the given ``sizes``, numbered consecutively.

    ``union_of_cliques([3, 2])`` has components ``{0,1,2}`` and ``{3,4}``.
    """
    if not sizes:
        raise ValueError("at least one clique size is required")
    for s in sizes:
        check_positive("clique size", s)
    n = int(sum(sizes))
    m = np.zeros((n, n), dtype=np.int8)
    offset = 0
    for s in sizes:
        m[offset : offset + s, offset : offset + s] = 1
        offset += s
    return AdjacencyMatrix(m)


def random_graph(n: int, p: float, seed: SeedLike = None) -> AdjacencyMatrix:
    """Erdos-Renyi ``G(n, p)``.

    ``p`` close to 1 gives the dense regime (``m = Theta(n^2)``) where the
    paper's work-optimality discussion applies.
    """
    n = check_positive("n", n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = as_generator(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1)
    m = (upper | upper.T).astype(np.int8)
    return AdjacencyMatrix(m)


def planted_components(
    sizes: Sequence[int],
    intra_p: float = 0.6,
    seed: SeedLike = None,
    shuffle: bool = True,
) -> AdjacencyMatrix:
    """Random graph with a *planted* component structure.

    Each block of ``sizes[k]`` nodes receives a random spanning tree (so the
    block is guaranteed connected) plus additional intra-block edges with
    probability ``intra_p``.  No inter-block edges are added, so the
    components are exactly the blocks.  With ``shuffle=True`` node ids are
    randomly permuted so components are not index-contiguous.
    """
    if not sizes:
        raise ValueError("at least one component size is required")
    if not 0.0 <= intra_p <= 1.0:
        raise ValueError(f"intra_p must be in [0, 1], got {intra_p}")
    rng = as_generator(seed)
    n = int(sum(check_positive("component size", s) for s in sizes))
    m = np.zeros((n, n), dtype=np.int8)
    offset = 0
    for s in sizes:
        block = slice(offset, offset + s)
        # Random spanning tree: connect node k to a random earlier node.
        for k in range(1, s):
            j = int(rng.integers(0, k))
            m[offset + k, offset + j] = m[offset + j, offset + k] = 1
        if s > 1 and intra_p > 0:
            extra = np.triu(rng.random((s, s)) < intra_p, k=1)
            sub = m[block, block] | (extra | extra.T).astype(np.int8)
            m[block, block] = sub
        offset += s
    graph = AdjacencyMatrix(m)
    if shuffle:
        graph = graph.relabeled(rng.permutation(n))
    return graph


def worst_case_pairing(n: int) -> AdjacencyMatrix:
    """A perfect matching ``(0,1), (2,3), ...``: every component is a mutual
    super-node pair, maximising the 2-cycle resolution work of step 6.
    """
    n = check_positive("n", n, minimum=2)
    edges = [(2 * k, 2 * k + 1) for k in range(n // 2)]
    return from_edges(n, edges)


def binary_tree_graph(n: int) -> AdjacencyMatrix:
    """A complete binary tree on ``n`` nodes (heap numbering)."""
    n = check_positive("n", n)
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return from_edges(n, [(min(a, b), max(a, b)) for a, b in edges])


def random_spanning_tree(n: int, seed: SeedLike = None) -> AdjacencyMatrix:
    """A uniformly random recursive tree on ``n`` nodes (single component,
    minimum edge count) -- the sparse extreme of the benchmark workloads."""
    n = check_positive("n", n)
    rng = as_generator(seed)
    edges = [(int(rng.integers(0, k)), k) for k in range(1, n)]
    return from_edges(n, edges)


def image_to_graph(image: np.ndarray) -> Tuple[AdjacencyMatrix, np.ndarray]:
    """Build the 4-connectivity pixel graph of a binary image.

    Returns ``(graph, node_of_pixel)`` where ``graph`` has one node per
    pixel (background pixels are isolated nodes) and ``node_of_pixel`` maps
    ``(row, col)`` to the node id.  Foreground pixels (non-zero) are linked
    to their 4-neighbours when both are foreground, so the connected
    components of the graph restricted to foreground nodes are exactly the
    image's connected regions.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    rows, cols = image.shape
    node_of_pixel = np.arange(rows * cols).reshape(rows, cols)
    edges = []
    fg = image != 0
    for r in range(rows):
        for c in range(cols):
            if not fg[r, c]:
                continue
            if c + 1 < cols and fg[r, c + 1]:
                edges.append((node_of_pixel[r, c], node_of_pixel[r, c + 1]))
            if r + 1 < rows and fg[r + 1, c]:
                edges.append((node_of_pixel[r, c], node_of_pixel[r + 1, c]))
    return from_edges(rows * cols, edges), node_of_pixel


def bipartite_graph(
    left: int, right: int, p: float = 1.0, seed: SeedLike = None
) -> AdjacencyMatrix:
    """A (random) bipartite graph: nodes ``0..left-1`` vs ``left..left+right-1``,
    each cross pair linked with probability ``p`` (1.0 = complete bipartite)."""
    left = check_positive("left", left)
    right = check_positive("right", right)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = as_generator(seed)
    n = left + right
    m = np.zeros((n, n), dtype=np.int8)
    block = (rng.random((left, right)) < p).astype(np.int8)
    m[:left, left:] = block
    m[left:, :left] = block.T
    return AdjacencyMatrix(m)


def lollipop_graph(clique: int, tail: int) -> AdjacencyMatrix:
    """A clique of ``clique`` nodes with a path of ``tail`` nodes attached --
    high density on one side, maximum diameter on the other, the classic
    stress shape for congestion-vs-depth trade-offs."""
    clique = check_positive("clique", clique)
    tail = check_positive("tail", tail, minimum=0) if tail else 0
    n = clique + tail
    m = np.zeros((n, n), dtype=np.int8)
    m[:clique, :clique] = 1
    for k in range(tail):
        a = clique - 1 + k
        b = clique + k
        m[a, b] = m[b, a] = 1
    return AdjacencyMatrix(m)


def barbell_graph(clique: int, bridge: int) -> AdjacencyMatrix:
    """Two ``clique``-cliques joined by a path of ``bridge`` nodes."""
    clique = check_positive("clique", clique)
    if bridge < 0:
        raise ValueError(f"bridge must be >= 0, got {bridge}")
    n = 2 * clique + bridge
    m = np.zeros((n, n), dtype=np.int8)
    m[:clique, :clique] = 1
    m[clique + bridge:, clique + bridge:] = 1
    chain = [clique - 1] + list(range(clique, clique + bridge)) + [clique + bridge]
    for a, b in zip(chain, chain[1:]):
        m[a, b] = m[b, a] = 1
    return AdjacencyMatrix(m)


def caterpillar_graph(spine: int, legs_per_node: int) -> AdjacencyMatrix:
    """A path ("spine") of ``spine`` nodes, each carrying ``legs_per_node``
    pendant leaves -- a tree with many degree-1 nodes."""
    spine = check_positive("spine", spine)
    if legs_per_node < 0:
        raise ValueError(f"legs_per_node must be >= 0, got {legs_per_node}")
    n = spine * (1 + legs_per_node)
    edges = [(k, k + 1) for k in range(spine - 1)]
    leaf = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, leaf))
            leaf += 1
    return from_edges(n, edges)
