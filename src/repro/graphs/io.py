"""Edge-list I/O for adjacency matrices and sparse edge lists.

Simple text formats so examples can load external graphs and benchmark
results can be archived:

* edge-list: first line ``n``, then one ``i j`` pair per line;
* dense matrix: whitespace-separated 0/1 rows (NumPy ``savetxt`` style).

The ``*_sparse`` functions read and write the *same* edge-list format
but produce/consume :class:`~repro.hirschberg.edgelist.EdgeListGraph`
instances and never materialise a dense matrix, so they scale to
multi-million-edge files.  The sparse loader takes a buffered fast path
-- one :func:`numpy.fromstring` call over the whole document instead of
a Python loop over lines -- whenever the text contains only digits and
whitespace; comments or unusual formatting fall back to the strict
line-by-line parser.  See ``benchmarks/bench_sparse_scaling.py`` for the
measured difference.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.generators import from_edges
from repro.hirschberg.edgelist import EdgeListGraph

PathLike = Union[str, Path]

#: Characters the buffered sparse fast path accepts (deleting them must
#: leave nothing).  ``-`` is included so negative endpoints reach the
#: range check in ``from_arrays`` rather than silently degrading to the
#: slow parser.
_SPARSE_FAST_TABLE = {ord(c): None for c in "0123456789- \t\n\r"}


def dumps_edge_list(graph: AdjacencyMatrix) -> str:
    """Serialise ``graph`` to the edge-list text format."""
    lines = [str(graph.n)]
    lines.extend(f"{i} {j}" for i, j in graph.edges())
    return "\n".join(lines) + "\n"


def loads_edge_list(text: str) -> AdjacencyMatrix:
    """Parse the edge-list text format produced by :func:`dumps_edge_list`.

    Blank lines and ``#`` comments are ignored.
    """
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("#")
    ]
    if not lines:
        raise ValueError("empty edge-list document")
    try:
        n = int(lines[0])
    except ValueError as exc:
        raise ValueError(f"first line must be the node count, got {lines[0]!r}") from exc
    edges: List[Tuple[int, int]] = []
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line {ln!r}")
        edges.append((int(parts[0]), int(parts[1])))
    return from_edges(n, edges)


def save_edge_list(graph: AdjacencyMatrix, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    Path(path).write_text(dumps_edge_list(graph))


def load_edge_list(path: PathLike) -> AdjacencyMatrix:
    """Read a graph from an edge-list file."""
    return loads_edge_list(Path(path).read_text())


def dumps_edge_list_sparse(graph: EdgeListGraph) -> str:
    """Serialise a sparse graph to the edge-list text format.

    The output is interchangeable with :func:`dumps_edge_list`'s: header
    ``n``, then one canonical ``u v`` pair per line.
    """
    half = graph.src.size // 2
    buf = _io.StringIO()
    buf.write(f"{graph.n}\n")
    if half:
        pairs = np.stack([graph.src[:half], graph.dst[:half]], axis=1)
        np.savetxt(buf, pairs, fmt="%d")
    return buf.getvalue()


def loads_edge_list_sparse(text: str) -> EdgeListGraph:
    """Parse edge-list text into an :class:`EdgeListGraph` (no dense matrix).

    Fast path: when the document is purely numeric, the whole text is
    parsed with one ``np.fromstring`` call (orders of magnitude faster
    than a line loop at multi-million-edge scale).  Documents with
    comments or blank lines take the strict line-by-line path; both
    normalise through ``EdgeListGraph.from_arrays`` (self-loops dropped,
    parallel edges deduplicated, endpoints range-checked).
    """
    if text.strip() and not text.translate(_SPARSE_FAST_TABLE):
        values = np.fromstring(text, dtype=np.int64, sep=" ")
        if (values.size - 1) % 2:
            raise ValueError(
                f"expected 'n' then (u, v) pairs; got {values.size} tokens"
            )
        return EdgeListGraph.from_arrays(
            int(values[0]), values[1::2], values[2::2]
        )
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("#")
    ]
    if not lines:
        raise ValueError("empty edge-list document")
    try:
        n = int(lines[0])
    except ValueError as exc:
        raise ValueError(
            f"first line must be the node count, got {lines[0]!r}"
        ) from exc
    pairs: List[Tuple[int, int]] = []
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line {ln!r}")
        pairs.append((int(parts[0]), int(parts[1])))
    return EdgeListGraph.from_edges(n, pairs)


#: Bytes read per block by the streaming loader (split at the last
#: newline, so lines never straddle blocks).
_STREAM_BLOCK_BYTES = 16 << 20


def open_edge_list_stream(
    path: PathLike, chunk_edges: int = 1 << 20
):
    """Stream an edge-list file as ``(n, iterator of (u, v) chunks)``.

    The out-of-core ingestion path for
    :func:`repro.hirschberg.sharded.connected_components_sharded`: the
    header is read eagerly (so ``n`` is available for planning), then
    the body is consumed lazily in byte blocks, each split at its last
    newline and parsed with one vectorised ``np.fromstring`` call --
    the full edge list is **never materialised**; peak memory is one
    block plus one emitted chunk.  Blocks containing comments or
    stray tokens fall back to a line-by-line parse of just that block.

    Yields int64 ``(u, v)`` array pairs of at most ``chunk_edges``
    edges.  Endpoints are *not* range-checked here (the consumer
    compacts and checks per shard); pairs are emitted exactly as
    written, so self-loops and duplicates survive to the consumer's
    normalisation, same as :func:`loads_edge_list_sparse`.
    """
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    path = Path(path)
    handle = open(path, "rb")
    header = b""
    try:
        while True:
            line = handle.readline()
            if not line:
                raise ValueError("empty edge-list document")
            stripped = line.strip()
            if stripped and not stripped.startswith(b"#"):
                header = stripped
                break
        n = int(header)
    except ValueError:
        handle.close()
        if header and not header.isdigit():
            raise ValueError(
                f"first line must be the node count, got {header.decode()!r}"
            ) from None
        raise

    def _parse_block(block: bytes) -> np.ndarray:
        text = block.decode("ascii", errors="strict")
        if not text.translate(_SPARSE_FAST_TABLE):
            values = np.fromstring(text, dtype=np.int64, sep=" ")
        else:
            tokens: List[int] = []
            for ln in text.splitlines():
                ln = ln.strip()
                if not ln or ln.startswith("#"):
                    continue
                parts = ln.split()
                if len(parts) != 2:
                    raise ValueError(f"malformed edge line {ln!r}")
                tokens.extend((int(parts[0]), int(parts[1])))
            values = np.asarray(tokens, dtype=np.int64)
        if values.size % 2:
            raise ValueError(
                f"expected (u, v) pairs; got {values.size} tokens in block"
            )
        return values

    def chunks():
        try:
            carry = b""
            pending = np.empty(0, dtype=np.int64)
            while True:
                block = handle.read(_STREAM_BLOCK_BYTES)
                if not block:
                    break
                block = carry + block
                cut = block.rfind(b"\n")
                if cut < 0:
                    carry = block
                    continue
                carry, block = block[cut + 1:], block[:cut + 1]
                values = _parse_block(block)
                if pending.size:
                    values = np.concatenate([pending, values])
                limit = 2 * chunk_edges
                start = 0
                while values.size - start >= limit:
                    part = values[start:start + limit]
                    yield part[0::2].copy(), part[1::2].copy()
                    start += limit
                pending = values[start:].copy()
            if carry.strip():
                tail = _parse_block(carry + b"\n")
                if tail.size:
                    pending = np.concatenate([pending, tail])
            for start in range(0, pending.size, 2 * chunk_edges):
                part = pending[start:start + 2 * chunk_edges]
                yield part[0::2].copy(), part[1::2].copy()
        finally:
            handle.close()

    return n, chunks()


def save_edge_list_sparse(graph: EdgeListGraph, path: PathLike) -> None:
    """Write a sparse graph to ``path`` in edge-list format."""
    Path(path).write_text(dumps_edge_list_sparse(graph))


def load_edge_list_sparse(path: PathLike) -> EdgeListGraph:
    """Read an edge-list file as an :class:`EdgeListGraph` (buffered)."""
    return loads_edge_list_sparse(Path(path).read_text())


def save_matrix(graph: AdjacencyMatrix, path: PathLike) -> None:
    """Write ``graph`` as a dense 0/1 matrix text file."""
    np.savetxt(path, graph.matrix, fmt="%d")


def load_matrix(path: PathLike) -> AdjacencyMatrix:
    """Read a dense 0/1 matrix text file as a graph."""
    data = np.loadtxt(path, dtype=np.int64)
    if data.ndim == 0:  # 1x1 matrix collapses to a scalar
        data = data.reshape(1, 1)
    elif data.ndim == 1:  # a single row collapses to 1-D
        data = data.reshape(1, -1)
    return AdjacencyMatrix(data)


def dumps_matrix(graph: AdjacencyMatrix) -> str:
    """Serialise ``graph`` as dense matrix text."""
    buf = _io.StringIO()
    np.savetxt(buf, graph.matrix, fmt="%d")
    return buf.getvalue()
