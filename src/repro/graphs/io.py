"""Edge-list I/O for adjacency matrices.

Simple text formats so examples can load external graphs and benchmark
results can be archived:

* edge-list: first line ``n``, then one ``i j`` pair per line;
* dense matrix: whitespace-separated 0/1 rows (NumPy ``savetxt`` style).
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.generators import from_edges

PathLike = Union[str, Path]


def dumps_edge_list(graph: AdjacencyMatrix) -> str:
    """Serialise ``graph`` to the edge-list text format."""
    lines = [str(graph.n)]
    lines.extend(f"{i} {j}" for i, j in graph.edges())
    return "\n".join(lines) + "\n"


def loads_edge_list(text: str) -> AdjacencyMatrix:
    """Parse the edge-list text format produced by :func:`dumps_edge_list`.

    Blank lines and ``#`` comments are ignored.
    """
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("#")
    ]
    if not lines:
        raise ValueError("empty edge-list document")
    try:
        n = int(lines[0])
    except ValueError as exc:
        raise ValueError(f"first line must be the node count, got {lines[0]!r}") from exc
    edges: List[Tuple[int, int]] = []
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line {ln!r}")
        edges.append((int(parts[0]), int(parts[1])))
    return from_edges(n, edges)


def save_edge_list(graph: AdjacencyMatrix, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    Path(path).write_text(dumps_edge_list(graph))


def load_edge_list(path: PathLike) -> AdjacencyMatrix:
    """Read a graph from an edge-list file."""
    return loads_edge_list(Path(path).read_text())


def save_matrix(graph: AdjacencyMatrix, path: PathLike) -> None:
    """Write ``graph`` as a dense 0/1 matrix text file."""
    np.savetxt(path, graph.matrix, fmt="%d")


def load_matrix(path: PathLike) -> AdjacencyMatrix:
    """Read a dense 0/1 matrix text file as a graph."""
    data = np.loadtxt(path, dtype=np.int64)
    if data.ndim == 0:  # 1x1 matrix collapses to a scalar
        data = data.reshape(1, 1)
    elif data.ndim == 1:  # a single row collapses to 1-D
        data = data.reshape(1, -1)
    return AdjacencyMatrix(data)


def dumps_matrix(graph: AdjacencyMatrix) -> str:
    """Serialise ``graph`` as dense matrix text."""
    buf = _io.StringIO()
    np.savetxt(buf, graph.matrix, fmt="%d")
    return buf.getvalue()
