"""Graph metrics used by the examples and benchmark workload reports.

Small, oracle-grade implementations (BFS based) of the structural metrics
the convergence discussions need: diameter/eccentricity (the quantity the
naive label-propagation baseline is bounded by), component size
distributions and degree statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _as_graph(graph: GraphLike) -> AdjacencyMatrix:
    if isinstance(graph, AdjacencyMatrix):
        return graph
    return AdjacencyMatrix(np.asarray(graph))


def bfs_distances(graph: GraphLike, source: int) -> np.ndarray:
    """Hop distances from ``source``; ``-1`` for unreachable nodes."""
    g = _as_graph(graph)
    if not 0 <= source < g.n:
        raise IndexError(f"source must be in [0, {g.n}), got {source}")
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nb in np.flatnonzero(g.matrix[node]):
            if dist[nb] == -1:
                dist[nb] = dist[node] + 1
                queue.append(int(nb))
    return dist


def eccentricity(graph: GraphLike, node: int) -> int:
    """Greatest distance from ``node`` within its component."""
    dist = bfs_distances(graph, node)
    return int(dist.max(initial=0))


def diameter(graph: GraphLike) -> int:
    """Largest eccentricity over all nodes (per-component; the maximum
    over components of each component's diameter)."""
    g = _as_graph(graph)
    best = 0
    for node in range(g.n):
        best = max(best, eccentricity(g, node))
    return best


def component_sizes(graph: GraphLike) -> List[int]:
    """Sizes of the connected components, descending."""
    labels = canonical_labels(_as_graph(graph))
    _, counts = np.unique(labels, return_counts=True)
    return sorted(counts.tolist(), reverse=True)


def degree_statistics(graph: GraphLike) -> Dict[str, float]:
    """Min / max / mean degree and the edge count."""
    g = _as_graph(graph)
    degrees = g.degrees()
    return {
        "min_degree": int(degrees.min()),
        "max_degree": int(degrees.max()),
        "mean_degree": float(degrees.mean()) if g.n else 0.0,
        "edges": g.edge_count,
    }


def is_connected(graph: GraphLike) -> bool:
    """Whether the graph has exactly one component."""
    g = _as_graph(graph)
    if g.n == 0:
        return True
    return bool((bfs_distances(g, 0) >= 0).all())


def summary(graph: GraphLike) -> str:
    """One-paragraph textual summary (used by examples)."""
    g = _as_graph(graph)
    sizes = component_sizes(g)
    stats = degree_statistics(g)
    return (
        f"n={g.n} edges={stats['edges']} density={g.density:.3f} "
        f"components={len(sizes)} largest={sizes[0] if sizes else 0} "
        f"diameter={diameter(g)} "
        f"degree[min/mean/max]={stats['min_degree']}/"
        f"{stats['mean_degree']:.2f}/{stats['max_degree']}"
    )
