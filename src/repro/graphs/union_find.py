"""Disjoint-set forest (union-find) with union by size and path compression.

This is the sequential ground-truth oracle for every connectivity algorithm
in the library: near-linear total running time, and a
:meth:`UnionFind.canonical_labels` accessor that reproduces the paper's
super-node convention (each component is represented by its minimum node
index).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.util.validation import check_index, check_positive


class UnionFind:
    """Disjoint sets over the elements ``0 .. n-1``."""

    __slots__ = ("_parent", "_size", "_minimum", "_count")

    def __init__(self, n: int):
        n = check_positive("n", n)
        self._parent = list(range(n))
        self._size = [1] * n
        # Track the minimum element per set so canonical labelling is O(1)
        # per element after the unions are done.
        self._minimum = list(range(n))
        self._count = n

    @property
    def n(self) -> int:
        """Number of elements."""
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path compression)."""
        check_index("x", x, self.n)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return ``True`` if they were
        previously distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._minimum[ra] = min(self._minimum[ra], self._minimum[rb])
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """``True`` iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_minimum(self, x: int) -> int:
        """The minimum element of ``x``'s set (the paper's super-node id)."""
        return self._minimum[self.find(x)]

    def canonical_labels(self) -> np.ndarray:
        """Vector ``L`` with ``L[i]`` = minimum element of ``i``'s set.

        This matches the fixpoint of Hirschberg's algorithm: every node
        labelled with its component's smallest node index.
        """
        return np.fromiter(
            (self.set_minimum(i) for i in range(self.n)),
            count=self.n,
            dtype=np.int64,
        )

    def sets(self) -> List[List[int]]:
        """The sets as sorted lists, ordered by their minimum element."""
        groups: Dict[int, List[int]] = {}
        for i in range(self.n):
            groups.setdefault(self.set_minimum(i), []).append(i)
        return [sorted(groups[k]) for k in sorted(groups)]
