"""Graph substrate: adjacency matrices, generators and sequential baselines.

Hirschberg's algorithm consumes an undirected graph as an ``n x n``
adjacency matrix (the paper's constant ``A``).  This package provides:

* :class:`repro.graphs.adjacency.AdjacencyMatrix` -- the validated matrix
  type every algorithm in the library accepts;
* :mod:`repro.graphs.generators` -- deterministic and random graph families
  used by the tests, examples and benchmark workloads;
* :mod:`repro.graphs.union_find` / :mod:`repro.graphs.components` -- the
  sequential baselines (union-find, BFS/DFS) that define ground truth: the
  canonical labelling assigns every node the minimum node index of its
  component, exactly as the paper's super-node convention does;
* :mod:`repro.graphs.io` -- edge-list round-tripping for external inputs.
"""

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import (
    canonical_labels,
    components_scipy,
    components_bfs,
    components_dfs,
    components_union_find,
    count_components,
)
from repro.graphs.generators import (
    barbell_graph,
    bipartite_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    grid_graph,
    lollipop_graph,
    path_graph,
    planted_components,
    random_graph,
    star_graph,
    union_of_cliques,
)
from repro.graphs.metrics import (
    bfs_distances,
    component_sizes,
    degree_statistics,
    diameter,
    eccentricity,
    is_connected,
)
from repro.graphs.union_find import UnionFind

__all__ = [
    "AdjacencyMatrix",
    "UnionFind",
    "bfs_distances",
    "component_sizes",
    "degree_statistics",
    "diameter",
    "eccentricity",
    "is_connected",
    "canonical_labels",
    "components_scipy",
    "components_bfs",
    "components_dfs",
    "components_union_find",
    "count_components",
    "barbell_graph",
    "bipartite_graph",
    "caterpillar_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "from_edges",
    "grid_graph",
    "lollipop_graph",
    "path_graph",
    "planted_components",
    "random_graph",
    "star_graph",
    "union_of_cliques",
]
