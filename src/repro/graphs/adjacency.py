"""The adjacency-matrix graph type.

The paper's input is the constant ``A = {A(i, j) | i, j = 1..n}`` with
``A(i, j) = A(j, i) = 1`` iff nodes ``i`` and ``j`` are linked.  This module
wraps that matrix in a small value type that validates symmetry, normalises
the diagonal to zero (self-loops carry no information for connectivity and
generation 2 masks the diagonal anyway), and offers the handful of
conversions the rest of the library needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.util.validation import check_index, check_symmetric_binary


class AdjacencyMatrix:
    """An immutable, validated undirected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    matrix:
        Square, symmetric array of 0/1 entries.  The diagonal is forced to
        zero.  The data is copied; mutating the argument afterwards does not
        affect the instance.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray):
        matrix = check_symmetric_binary("adjacency matrix", matrix).copy()
        np.fill_diagonal(matrix, 0)
        matrix.setflags(write=False)
        self._matrix = matrix

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``n x n`` ``int8`` adjacency matrix."""
        return self._matrix

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return int(self._matrix.sum()) // 2

    @property
    def density(self) -> float:
        """Fraction of possible edges present (1.0 for a complete graph)."""
        possible = self.n * (self.n - 1) // 2
        return self.edge_count / possible if possible else 0.0

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        check_index("node", node, self.n)
        return int(self._matrix[node].sum())

    def degrees(self) -> np.ndarray:
        """Vector of all node degrees."""
        return self._matrix.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, i: int, j: int) -> bool:
        """``True`` iff the undirected edge ``{i, j}`` exists."""
        check_index("i", i, self.n)
        check_index("j", j, self.n)
        return bool(self._matrix[i, j])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of the neighbours of ``node``."""
        check_index("node", node, self.n)
        return np.flatnonzero(self._matrix[node])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate the undirected edges as ``(i, j)`` with ``i < j``."""
        rows, cols = np.nonzero(np.triu(self._matrix, k=1))
        return zip(rows.tolist(), cols.tolist())

    def edge_list(self) -> List[Tuple[int, int]]:
        """The undirected edges as a list of ``(i, j)`` pairs, ``i < j``."""
        return list(self.edges())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> "AdjacencyMatrix":
        """Induced subgraph on ``nodes`` (relabelled 0..k-1 in given order)."""
        idx = np.asarray(list(nodes), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise IndexError(f"subgraph nodes out of range [0, {self.n})")
        if len(set(idx.tolist())) != idx.size:
            raise ValueError("subgraph nodes must be distinct")
        return AdjacencyMatrix(self._matrix[np.ix_(idx, idx)])

    def complement(self) -> "AdjacencyMatrix":
        """The complement graph (edges flipped, no self-loops)."""
        comp = 1 - self._matrix
        np.fill_diagonal(comp, 0)
        return AdjacencyMatrix(comp)

    def relabeled(self, permutation: Iterable[int]) -> "AdjacencyMatrix":
        """Return the graph with node ``i`` renamed to ``permutation[i]``.

        ``permutation`` must be a permutation of ``0..n-1``.
        """
        perm = np.asarray(list(permutation), dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self.n)):
            raise ValueError("permutation must be a permutation of 0..n-1")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(self.n)
        return AdjacencyMatrix(self._matrix[np.ix_(inverse, inverse)])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdjacencyMatrix):
            return NotImplemented
        return self.n == other.n and np.array_equal(self._matrix, other._matrix)

    def __hash__(self) -> int:
        return hash((self.n, self._matrix.tobytes()))

    def __repr__(self) -> str:
        return (
            f"AdjacencyMatrix(n={self.n}, edges={self.edge_count}, "
            f"density={self.density:.3f})"
        )
