"""repro -- reproduction of "Implementing Hirschberg's PRAM-Algorithm for
Connected Components on a Global Cellular Automaton" (Jendrsczok, Hoffmann,
Keller; IPPS/IPDPS 2007).

Quickstart::

    import repro
    graph = repro.random_graph(64, 0.1, seed=7)
    result = repro.connected_components(graph)      # engine="auto"
    print(result.method, result.component_count, result.labels)

At sparse scale, skip the dense matrix entirely::

    graph = repro.random_edge_list(1_000_000, 5_000_000, seed=7)
    result = repro.connected_components(graph)      # -> contracting engine

Packages
--------
``repro.gca``
    The Global Cellular Automaton engine (cells, rules, synchronous
    generations, congestion instrumentation) plus classical CAs.
``repro.pram``
    A synchronous PRAM simulator with EREW/CREW/CROW/CRCW checking and
    Brent scheduling.
``repro.graphs``
    Adjacency matrices, graph generators and sequential baselines.
``repro.hirschberg``
    The reference algorithm (Listing 1), its PRAM rendition and variants.
``repro.core``
    The paper's GCA mapping: field layout, the 12 generations, the state
    machine, the interpreter and the vectorised engine.
``repro.hardware``
    The FPGA cost model reproducing Section 4's synthesis figures.
``repro.analysis``
    Congestion/complexity analytics reproducing Tables 1 and 2.
``repro.serve``
    The dynamic micro-batching request server: bounded admission,
    deadline-aware batching scheduler, worker pools and serve metrics.
"""

from repro.core.api import (
    ComponentsResult,
    connected_components,
    gca_connected_components,
)
from repro.core.dispatch import CostModel, choose_engine, explain_choice
from repro.core.batched import BatchedGCA, connected_components_batch
from repro.core.trace import TraceRecorder, figure3_patterns
from repro.core.vectorized import connected_components_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels, count_components
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    grid_graph,
    path_graph,
    planted_components,
    random_graph,
    star_graph,
    union_of_cliques,
)
from repro.core.row_machine import connected_components_row_gca
from repro.extensions.spanning_forest import spanning_forest
from repro.extensions.transitive_closure import transitive_closure_gca
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    connected_components_edgelist,
    random_edge_list,
)
from repro.hirschberg.parallel import (
    ParallelResult,
    connected_components_parallel,
)
from repro.hirschberg.reference import hirschberg_reference
from repro.hirschberg.sharded import (
    ShardedResult,
    connected_components_sharded,
)
from repro.serve import CCRequest, CCResponse, Server, ServerConfig, serve_many

__version__ = "1.0.0"

__all__ = [
    "ComponentsResult",
    "connected_components",
    "gca_connected_components",
    "CostModel",
    "choose_engine",
    "explain_choice",
    "EdgeListGraph",
    "connected_components_edgelist",
    "connected_components_contracting",
    "connected_components_parallel",
    "ParallelResult",
    "connected_components_sharded",
    "ShardedResult",
    "random_edge_list",
    "BatchedGCA",
    "connected_components_batch",
    "TraceRecorder",
    "figure3_patterns",
    "connected_components_vectorized",
    "AdjacencyMatrix",
    "canonical_labels",
    "count_components",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "from_edges",
    "grid_graph",
    "path_graph",
    "planted_components",
    "random_graph",
    "star_graph",
    "union_of_cliques",
    "hirschberg_reference",
    "CCRequest",
    "CCResponse",
    "Server",
    "ServerConfig",
    "serve_many",
    "connected_components_row_gca",
    "spanning_forest",
    "transitive_closure_gca",
    "__version__",
]
