"""Time-multiplexed GCA architectures (the paper's reference [4]).

The fully parallel design of Section 4 instantiates one hardware cell per
GCA cell.  The group's companion work (Heenes, Hoffmann, Jendrsczok: "A
multiprocessor architecture for the massively parallel model GCA",
IPDPS/SMTPS 2006 -- reference [4] of the paper) instead drives the cell
*field* from ``p`` processing units that evaluate the cells round-robin,
keeping the cell states in block RAM.  This module models that design
point and the resulting cost/performance frontier:

* **cycles**: one generation with ``a`` active cells takes
  ``ceil(a / p)`` evaluation rounds (each unit evaluates one cell per
  cycle; reads hit BRAM, which is dual-ported, so a serialisation factor
  enters only through the congestion of the fully parallel design when
  ``p`` exceeds the available ports -- modelled by ``port_limit``);
* **logic**: ``p`` units cost roughly ``p`` times one fully-parallel
  cell's logic plus a controller; cell *state* moves from registers into
  BRAM bits (cheap), which is exactly the paper's cells-vs-memory
  cost-model argument in reverse.

The Brent-style arithmetic reuses :mod:`repro.pram.brent`; the per-unit
logic cost reuses the calibrated fully-parallel model so both designs sit
on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.schedule import full_schedule
from repro.core.vectorized import active_mask
from repro.core.field import FieldLayout
from repro.hardware.cost_model import data_width, estimate, fmax_mhz
from repro.pram.brent import simulated_step_time
from repro.util.validation import check_positive


def generation_active_counts(n: int) -> List[int]:
    """Active-cell count of every generation of a full run (structural --
    the schedule is oblivious, so no graph is needed)."""
    layout = FieldLayout(n)
    return [int(active_mask(s, layout).sum()) for s in full_schedule(n)]


@dataclass(frozen=True)
class MultiplexedEstimate:
    """Cost/performance of a ``p``-unit time-multiplexed design."""

    n: int
    units: int
    total_cycles: int
    logic_elements: int
    bram_bits: int
    register_bits: int
    fmax_mhz: float

    @property
    def runtime_us(self) -> float:
        """Estimated wall time of one full run in microseconds."""
        return self.total_cycles / self.fmax_mhz

    @property
    def cost_performance(self) -> float:
        """Logic-elements x runtime -- the frontier metric (lower = better)."""
        return self.logic_elements * self.runtime_us


def estimate_multiplexed(n: int, units: int) -> MultiplexedEstimate:
    """Cost estimate for ``units`` processing units over an ``n``-node field.

    ``units`` may range from 1 (fully sequential) to ``n(n+1)``
    (fully parallel; the estimate then matches the Section 4 model up to
    the register/BRAM split).
    """
    check_positive("n", n)
    check_positive("units", units)
    cells = n * (n + 1)
    units = min(units, cells)
    full = estimate(n)

    total_cycles = sum(
        simulated_step_time(active, units)
        for active in generation_active_counts(n)
    )

    # one unit's logic ~ one fully parallel cell's share, plus a
    # round-robin controller that grows with log of the cell count
    le_per_unit = max(1, round(full.logic_elements / cells))
    controller = 64 + 8 * max(1, (cells - 1).bit_length())
    logic = units * le_per_unit + controller

    width = data_width(n)
    state_bits = cells * 2 * width + n * n  # d and p planes + adjacency
    if units >= cells:
        bram_bits, register_bits = 0, full.register_bits
    else:
        bram_bits, register_bits = state_bits, units * 2 * width

    return MultiplexedEstimate(
        n=n,
        units=units,
        total_cycles=total_cycles,
        logic_elements=logic,
        bram_bits=bram_bits,
        register_bits=register_bits,
        fmax_mhz=round(fmax_mhz(n), 1),
    )


def frontier(n: int, unit_counts: Optional[Sequence[int]] = None) -> List[MultiplexedEstimate]:
    """The cost/performance frontier across unit counts.

    Default sweep: powers of four from 1 up to the full field.
    """
    check_positive("n", n)
    cells = n * (n + 1)
    if unit_counts is None:
        unit_counts = []
        p = 1
        while p < cells:
            unit_counts.append(p)
            p *= 4
        unit_counts.append(cells)
    return [estimate_multiplexed(n, p) for p in unit_counts]


def best_cost_performance(n: int) -> MultiplexedEstimate:
    """The frontier point minimising logic x runtime."""
    return min(frontier(n), key=lambda e: e.cost_performance)
