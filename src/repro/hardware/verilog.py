"""Verilog generation for the fully parallel cell design (Section 4).

"The design was described in Verilog and synthesized for an ALTERA
CYCLONE II FPGA."  We cannot synthesise, but we *can* emit the design: this
module generates synthesisable-style Verilog for

* the **standard cell** -- a data register plus a generation-addressed
  neighbour multiplexer whose inputs are the cell's actual static sources
  (computed per position from the rule set by
  :mod:`repro.hardware.cells`), and the data operation selected by the
  controller state;
* the **extended cell** -- additionally a data-addressed multiplexer over
  the ``n`` first-column cells (generations 10/11);
* the **controller** -- the Figure 2 state machine with iteration and
  sub-generation counters;
* the **top-level field** -- instantiating ``n^2`` standard and ``n``
  extended cells and wiring the static sources.

The output is deterministic text; the tests validate its structural
properties (module/port/state counts, mux arity, register widths) against
the cost model, so the generator and the cost model cannot drift apart.
This is the closest faithful substitute for the unpublished Verilog of
the paper.

Scope note: the emitted design is *structural* -- the resource inventory
(registers, muxes, case arms, wiring) matches the cost model exactly, and
the data operations encode the Figure 2 semantics -- but the per-state
``source_sel`` scheduling that a drop-in synthesisable design would need
is deliberately left to the controller's integrator.  The functional,
cycle-accurate reference for the cell behaviour is
:mod:`repro.core.machine`; this module documents the hardware shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.field import FieldLayout
from repro.hardware.cells import CellKind, CellStructure, analyze_static_sources
from repro.hardware.cost_model import data_width
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive

#: Controller states: the 12 generations (state value = generation number).
GENERATION_STATES = list(range(12))


def _state_bits() -> int:
    return ceil_log2(len(GENERATION_STATES))


@dataclass(frozen=True)
class VerilogDesign:
    """The generated design: one source string per module."""

    n: int
    modules: Dict[str, str]

    @property
    def source(self) -> str:
        """All modules concatenated, top last."""
        order = ["gca_cell_standard", "gca_cell_extended", "gca_controller",
                 "gca_field"]
        return "\n\n".join(self.modules[name] for name in order)

    def module(self, name: str) -> str:
        if name not in self.modules:
            raise KeyError(f"unknown module {name!r}; have {sorted(self.modules)}")
        return self.modules[name]


def _standard_cell(n: int, width: int, max_sources: int) -> str:
    """The standard cell: register + generation mux + data operation."""
    sel_bits = max(1, ceil_log2(max(2, max_sources)))
    lines = [
        "// standard GCA cell: data register, generation-addressed neighbour",
        "// multiplexer, data operation (generations 0-9)",
        "module gca_cell_standard #(",
        f"    parameter WIDTH = {width},",
        f"    parameter SOURCES = {max_sources},",
        f"    parameter [WIDTH-1:0] ROW = 0,",
        f"    parameter [WIDTH-1:0] INF = {{WIDTH{{1'b1}}}}",
        ") (",
        "    input  wire                          clk,",
        "    input  wire                          rst,",
        "    input  wire [3:0]                    state,",
        "    input  wire                          active,",
        f"    input  wire [{sel_bits - 1}:0]                    source_sel,",
        "    input  wire [SOURCES*WIDTH-1:0]      source_bus,",
        "    input  wire                          a_bit,",
        "    input  wire [WIDTH-1:0]              d_n,      // D_N partner",
        "    output reg  [WIDTH-1:0]              d",
        ");",
        "",
        "    // generation-addressed neighbour multiplexer",
        "    wire [WIDTH-1:0] d_star =",
        "        source_bus[source_sel*WIDTH +: WIDTH];",
        "",
        "    // data operation, selected by the controller state",
        "    reg [WIDTH-1:0] d_next;",
        "    always @* begin",
        "        d_next = d;",
        "        case (state)",
        "            4'd0:  d_next = ROW;                          // init",
        "            4'd1:  d_next = d_star;                       // copy C",
        "            4'd2:  d_next = (a_bit && d != d_n)",
        "                            ? d : INF;                    // mask A",
        "            4'd3:  d_next = (d_star < d) ? d_star : d;    // min",
        "            4'd4:  d_next = (d == INF) ? d_n : d;         // fallback",
        "            4'd5:  d_next = d_star;                       // copy T",
        "            4'd6:  d_next = (d_n == ROW && d != ROW)",
        "                            ? d : INF;                    // mask C",
        "            4'd7:  d_next = (d_star < d) ? d_star : d;    // min",
        "            4'd8:  d_next = (d == INF) ? d_n : d;         // fallback",
        "            4'd9:  d_next = d_star;                       // distribute",
        "            default: d_next = d;   // 10/11: extended cells only",
        "        endcase",
        "    end",
        "",
        "    always @(posedge clk) begin",
        "        if (rst)         d <= ROW;",
        "        else if (active) d <= d_next;",
        "    end",
        "",
        "endmodule",
    ]
    return "\n".join(lines)


def _extended_cell(n: int, width: int, max_sources: int) -> str:
    """The extended cell: adds the data-addressed mux (gens 10/11)."""
    sel_bits = max(1, ceil_log2(max(2, max_sources)))
    lines = [
        "// extended GCA cell (first column): everything the standard cell",
        "// does, plus a data-addressed multiplexer over the n first-column",
        "// cells for the pointer-jumping generations 10/11",
        "module gca_cell_extended #(",
        f"    parameter WIDTH = {width},",
        f"    parameter SOURCES = {max_sources},",
        f"    parameter N = {n},",
        f"    parameter [WIDTH-1:0] ROW = 0,",
        f"    parameter [WIDTH-1:0] INF = {{WIDTH{{1'b1}}}}",
        ") (",
        "    input  wire                          clk,",
        "    input  wire                          rst,",
        "    input  wire [3:0]                    state,",
        "    input  wire                          active,",
        f"    input  wire [{sel_bits - 1}:0]                    source_sel,",
        "    input  wire [SOURCES*WIDTH-1:0]      source_bus,",
        "    input  wire                          a_bit,",
        "    input  wire [WIDTH-1:0]              d_n,",
        "    input  wire [N*WIDTH-1:0]            column_c,  // D<j>[0] bus",
        "    input  wire [N*WIDTH-1:0]            column_t,  // D<j>[1] bus",
        "    output reg  [WIDTH-1:0]              d",
        ");",
        "",
        "    wire [WIDTH-1:0] d_star =",
        "        source_bus[source_sel*WIDTH +: WIDTH];",
        "",
        "    // the data-addressed multiplexers: the cell's own d selects",
        "    // the row whose C (gen 10) or T (gen 11) value is read",
        "    wire [WIDTH-1:0] jump_c = column_c[d*WIDTH +: WIDTH];",
        "    wire [WIDTH-1:0] jump_t = column_t[d*WIDTH +: WIDTH];",
        "",
        "    reg [WIDTH-1:0] d_next;",
        "    always @* begin",
        "        d_next = d;",
        "        case (state)",
        "            4'd0:  d_next = ROW;",
        "            4'd1:  d_next = d_star;",
        "            4'd2:  d_next = (a_bit && d != d_n) ? d : INF;",
        "            4'd3:  d_next = (d_star < d) ? d_star : d;",
        "            4'd4:  d_next = (d == INF) ? d_n : d;",
        "            4'd5:  d_next = d_star;",
        "            4'd6:  d_next = (d_n == ROW && d != ROW) ? d : INF;",
        "            4'd7:  d_next = (d_star < d) ? d_star : d;",
        "            4'd8:  d_next = (d == INF) ? d_n : d;",
        "            4'd9:  d_next = d_star;",
        "            4'd10: d_next = jump_c;                      // C(C(j))",
        "            4'd11: d_next = (jump_t < d) ? jump_t : d;   // min(C,T(C))",
        "            default: d_next = d;",
        "        endcase",
        "    end",
        "",
        "    always @(posedge clk) begin",
        "        if (rst)         d <= ROW;",
        "        else if (active) d <= d_next;",
        "    end",
        "",
        "endmodule",
    ]
    return "\n".join(lines)


def _controller(n: int) -> str:
    """The Figure 2 state machine with its counters."""
    log = ceil_log2(max(2, n))
    cnt_bits = max(1, ceil_log2(max(2, log + 1)))
    it_bits = max(1, ceil_log2(max(2, log + 1)))
    lines = [
        "// controller: the Figure 2 state graph.  Counts sub-generations",
        "// through the reduction (gens 3/7) and jumping (gen 10) loops and",
        "// iterations through the outer loop; raises done afterwards.",
        "module gca_controller #(",
        f"    parameter LOG_N = {log}",
        ") (",
        "    input  wire       clk,",
        "    input  wire       rst,",
        "    output reg  [3:0] state,",
        f"    output reg  [{cnt_bits - 1}:0] sub_generation,",
        f"    output reg  [{it_bits - 1}:0] iteration,",
        "    output reg        done",
        ");",
        "",
        "    always @(posedge clk) begin",
        "        if (rst) begin",
        "            state <= 4'd0;",
        "            sub_generation <= 0;",
        "            iteration <= 0;",
        "            done <= 1'b0;",
        "        end else if (!done) begin",
        "            case (state)",
        "                4'd0: state <= 4'd1;",
        "                4'd1: state <= 4'd2;",
        "                4'd2: begin state <= 4'd3; sub_generation <= 0; end",
        "                4'd3: if (sub_generation == LOG_N - 1) state <= 4'd4;",
        "                      else sub_generation <= sub_generation + 1;",
        "                4'd4: state <= 4'd5;",
        "                4'd5: state <= 4'd6;",
        "                4'd6: begin state <= 4'd7; sub_generation <= 0; end",
        "                4'd7: if (sub_generation == LOG_N - 1) state <= 4'd8;",
        "                      else sub_generation <= sub_generation + 1;",
        "                4'd8: state <= 4'd9;",
        "                4'd9: begin state <= 4'd10; sub_generation <= 0; end",
        "                4'd10: if (sub_generation == LOG_N - 1) state <= 4'd11;",
        "                       else sub_generation <= sub_generation + 1;",
        "                4'd11: begin",
        "                    if (iteration == LOG_N - 1) done <= 1'b1;",
        "                    else begin",
        "                        iteration <= iteration + 1;",
        "                        state <= 4'd1;",
        "                    end",
        "                end",
        "                default: state <= 4'd0;",
        "            endcase",
        "        end",
        "    end",
        "",
        "endmodule",
    ]
    return "\n".join(lines)


def _field(n: int, width: int, structures: List[CellStructure]) -> str:
    """Top level: instantiate the cells and wire their static sources."""
    layout = FieldLayout(n)
    lines = [
        "// top level: the (n+1) x n cell field with its static wiring",
        f"module gca_field #(parameter WIDTH = {width}) (",
        "    input  wire clk,",
        "    input  wire rst,",
        f"    input  wire [{layout.square_size - 1}:0] adjacency,  // A, row-major",
        f"    output wire [{n}*WIDTH-1:0] labels,       // first column = C",
        "    output wire done",
        ");",
        "",
        f"    wire [WIDTH-1:0] d [{layout.size - 1}:0];",
        "    wire [3:0] state;",
        "    wire [15:0] sub_generation_iteration; // packed counters",
        "",
        "    gca_controller controller (.clk(clk), .rst(rst), .state(state),",
        "        .sub_generation(sub_generation_iteration[7:0]),",
        "        .iteration(sub_generation_iteration[15:8]), .done(done));",
        "",
    ]
    for s in structures:
        row, col = layout.coordinates(s.index)
        sources = sorted(s.static_sources)
        bus = ", ".join(f"d[{src}]" for src in reversed(sources)) or f"d[{s.index}]"
        kind = (
            "gca_cell_extended" if s.kind is CellKind.EXTENDED else
            "gca_cell_standard"
        )
        a_bit = (
            f"adjacency[{s.index}]" if layout.is_square(s.index) else "1'b0"
        )
        lines.append(
            f"    {kind} #(.WIDTH(WIDTH), .SOURCES({max(1, len(sources))}), "
            f".ROW({row})) cell_{row}_{col} ("
        )
        lines.append(
            "        .clk(clk), .rst(rst), .state(state), .active(1'b1),"
        )
        lines.append(f"        .source_sel(state[{_state_bits() - 1}:0]),")
        lines.append(f"        .source_bus({{{bus}}}),")
        lines.append(f"        .a_bit({a_bit}),")
        lines.append(f"        .d_n(d[{layout.last_row_start + (row if row < n else 0)}]),")
        if s.kind is CellKind.EXTENDED:
            col_c = ", ".join(f"d[{(n - 1 - k) * n}]" for k in range(n))
            col_t = ", ".join(f"d[{(n - 1 - k) * n + 1}]" for k in range(n))
            lines.append(f"        .column_c({{{col_c}}}),")
            lines.append(f"        .column_t({{{col_t}}}),")
        lines.append(f"        .d(d[{s.index}]));")
        lines.append("")
    lines.append("    // the result: the first column holds C")
    assigns = ", ".join(f"d[{(n - 1 - k) * n}]" for k in range(n))
    lines.append(f"    assign labels = {{{assigns}}};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def generate_verilog(n: int) -> VerilogDesign:
    """Generate the complete Verilog design for an ``n``-node field."""
    check_positive("n", n)
    width = data_width(n)
    structures = analyze_static_sources(n)
    max_sources = max(s.generation_mux_inputs for s in structures)
    modules = {
        "gca_cell_standard": _standard_cell(n, width, max_sources),
        "gca_cell_extended": _extended_cell(n, width, max_sources),
        "gca_controller": _controller(n),
        "gca_field": _field(n, width, structures),
    }
    return VerilogDesign(n=n, modules=modules)


def design_statistics(design: VerilogDesign) -> Dict[str, int]:
    """Structural statistics of a generated design (used by tests and the
    synthesis report to tie the generator to the cost model)."""
    source = design.source
    return {
        "modules": source.count("endmodule"),
        "standard_instances": source.count("gca_cell_standard #(.WIDTH"),
        "extended_instances": source.count("gca_cell_extended #(.WIDTH"),
        "case_arms_standard": design.module("gca_cell_standard").count("4'd"),
        "case_arms_extended": design.module("gca_cell_extended").count("4'd"),
        "lines": source.count("\n") + 1,
    }
