"""Parametric FPGA cost model (the Section 4 substitute).

We have no Cyclone II device or Quartus II; instead we estimate the three
figures the paper reports -- logic elements, register bits, fmax -- from
the *structure* of the design, calibrated against the single published
data point (``n = 16``: 272 cells, 23,051 LEs, 2,192 register bits,
71 MHz).  The model:

* **cells** -- exact: ``n^2`` standard + ``n`` extended = ``n(n+1)``.
* **register bits** -- each cell keeps a data register of
  ``2 * ceil(log2 n)`` bits (wide enough for node ids 0..n-1, row numbers
  up to n and an infinity encoding, and matching the published
  2,192 = 272 x 8 + 16 at n = 16); each extended cell keeps one extra
  state bit.  This term is structural, the widths are the calibrated fit.
* **logic elements** -- counted in 4-LUT-equivalent *units* derived from
  the real per-cell multiplexer structure (static source sets computed
  from the rule set by :mod:`repro.hardware.cells`), comparator/minimum
  logic and condition decoding, then scaled by a single constant chosen so
  the model reproduces 23,051 LEs at ``n = 16``.
* **fmax** -- a logic-depth model: the critical path traverses the
  neighbour multiplexer tree (depth ``ceil(log2 inputs)``) and the
  comparator (depth ``ceil(log2 width)``); per-level delay calibrated so
  fmax(16) = 71 MHz.

Because only the n=16 point is published, the *sweep* produced by the
bench is a model prediction whose value lies in its shape (linear cell
growth, ~n^2 log n register bits, mux-depth-limited clock), not in its
absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.cells import CellKind, analyze_static_sources, count_cells
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive

#: The single published synthesis data point (Section 4).
PAPER_N = 16
PAPER_CELLS = 272
PAPER_LOGIC_ELEMENTS = 23_051
PAPER_REGISTER_BITS = 2_192
PAPER_FMAX_MHZ = 71.0
PAPER_DEVICE = "ALTERA CYCLONE II EP2C70"


def data_width(n: int) -> int:
    """Data-register width per cell: ``2 * ceil(log2 n)`` bits (min 2).

    Wide enough for node ids, row numbers and an infinity encoding; equals
    8 bits at n = 16, matching the published register budget.
    """
    check_positive("n", n)
    return max(2, 2 * ceil_log2(max(2, n)))


def register_bits(n: int) -> int:
    """Total register bits: one data register per cell plus one extra bit
    per extended cell (272 * 8 + 16 = 2,192 at n = 16)."""
    counts = count_cells(n)
    cells = counts[CellKind.STANDARD] + counts[CellKind.EXTENDED]
    return cells * data_width(n) + counts[CellKind.EXTENDED]


def _mux_units(inputs: int, width: int) -> int:
    """4-LUT units of a ``width``-bit ``inputs``-to-1 multiplexer
    (``inputs - 1`` two-to-one muxes per bit)."""
    if inputs <= 1:
        return 0
    return (inputs - 1) * width


def logic_units(n: int) -> Dict[str, int]:
    """Structural LE units by component, before calibration scaling."""
    check_positive("n", n)
    w = data_width(n)
    structures = analyze_static_sources(n)
    gen_mux = sum(_mux_units(s.generation_mux_inputs, w) for s in structures)
    data_mux = sum(_mux_units(s.data_mux_inputs, w) for s in structures)
    cells = len(structures)
    # Per-cell datapath: min/compare (w units), infinity detect and
    # condition decode (w units), state-machine decode (4 units).
    datapath = cells * (2 * w + 4)
    # Global control: iteration / sub-generation counters and state decode.
    control = 8 * (2 * ceil_log2(max(2, n)) + 12)
    return {
        "generation_mux": gen_mux,
        "data_mux": data_mux,
        "datapath": datapath,
        "control": control,
    }


def total_logic_units(n: int) -> int:
    """Sum of all structural units."""
    return sum(logic_units(n).values())


#: Calibration: one scale factor reproducing the published LE count.
LE_SCALE = PAPER_LOGIC_ELEMENTS / 15_328  # total_logic_units(16) == 15_328


def logic_elements(n: int) -> int:
    """Estimated logic elements (calibrated; exact at n = 16)."""
    return round(LE_SCALE * total_logic_units(n))


def critical_path_levels(n: int) -> int:
    """Logic levels on the critical path: generation-mux tree, the
    extended cells' data-mux tree, and the comparator."""
    w = data_width(n)
    structures = analyze_static_sources(n)
    max_static = max(s.generation_mux_inputs for s in structures)
    max_data = max(s.data_mux_inputs for s in structures)
    mux_depth = ceil_log2(max(2, max_static)) + ceil_log2(max(2, max_data))
    cmp_depth = ceil_log2(max(2, w)) + 1
    return mux_depth + cmp_depth


# fmax(n) = 1000 / (T0 + T_LEVEL * levels(n))  [MHz, delays in ns]
_T_LEVEL_NS = 0.9
_T0_NS = 1000.0 / PAPER_FMAX_MHZ - _T_LEVEL_NS * 11  # levels(16) == 11


def fmax_mhz(n: int) -> float:
    """Estimated maximum clock frequency in MHz (71.0 at n = 16)."""
    period_ns = _T0_NS + _T_LEVEL_NS * critical_path_levels(n)
    return 1000.0 / period_ns


@dataclass(frozen=True)
class CostEstimate:
    """The complete resource estimate for one field size."""

    n: int
    cells: int
    standard_cells: int
    extended_cells: int
    data_width: int
    register_bits: int
    logic_elements: int
    fmax_mhz: float

    @property
    def le_per_cell(self) -> float:
        """Average logic elements per cell."""
        return self.logic_elements / self.cells


def estimate(n: int) -> CostEstimate:
    """Full cost estimate for a field over ``n`` nodes."""
    counts = count_cells(n)
    return CostEstimate(
        n=n,
        cells=counts[CellKind.STANDARD] + counts[CellKind.EXTENDED],
        standard_cells=counts[CellKind.STANDARD],
        extended_cells=counts[CellKind.EXTENDED],
        data_width=data_width(n),
        register_bits=register_bits(n),
        logic_elements=logic_elements(n),
        fmax_mhz=round(fmax_mhz(n), 1),
    )
