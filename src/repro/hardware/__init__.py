"""FPGA hardware cost model (the Section 4 substitute).

We cannot run Quartus II against a Cyclone II device, so the synthesis
experiment is reproduced by a structural cost model calibrated against the
paper's single published data point; see DESIGN.md ("Substitutions").

* :mod:`~repro.hardware.cells` -- standard/extended cell classification and
  static source-set analysis derived from the actual rule set;
* :mod:`~repro.hardware.cost_model` -- register/LE/fmax estimates;
* :mod:`~repro.hardware.synthesis` -- Section-4-style report records;
* :mod:`~repro.hardware.replication` -- the C/T replication+rotation
  congestion optimisation, quantified.
"""

from repro.hardware.cells import (
    CellKind,
    CellStructure,
    analyze_static_sources,
    cell_kind,
    count_cells,
    mux_input_summary,
)
from repro.hardware.cost_model import (
    PAPER_CELLS,
    PAPER_FMAX_MHZ,
    PAPER_LOGIC_ELEMENTS,
    PAPER_N,
    PAPER_REGISTER_BITS,
    CostEstimate,
    critical_path_levels,
    data_width,
    estimate,
    fmax_mhz,
    logic_elements,
    logic_units,
    register_bits,
)
from repro.hardware.replication import (
    AblationRow,
    ReadStrategy,
    ReplicationCost,
    ablation,
    build_replicas,
    generation_cycles,
    replica_congestion,
    replication_cost,
    rotated_position,
    run_cycles,
)
from repro.hardware.multiplexed import (
    MultiplexedEstimate,
    best_cost_performance,
    estimate_multiplexed,
    frontier,
    generation_active_counts,
)
from repro.hardware.verilog import (
    VerilogDesign,
    design_statistics,
    generate_verilog,
)
from repro.hardware.synthesis import (
    EP2C70_LOGIC_ELEMENTS,
    SynthesisReport,
    largest_feasible_n,
    paper_report,
    sweep,
    synthesize,
)

__all__ = [
    "CellKind",
    "CellStructure",
    "analyze_static_sources",
    "cell_kind",
    "count_cells",
    "mux_input_summary",
    "CostEstimate",
    "critical_path_levels",
    "data_width",
    "estimate",
    "fmax_mhz",
    "logic_elements",
    "logic_units",
    "register_bits",
    "PAPER_N",
    "PAPER_CELLS",
    "PAPER_LOGIC_ELEMENTS",
    "PAPER_REGISTER_BITS",
    "PAPER_FMAX_MHZ",
    "AblationRow",
    "ReadStrategy",
    "ReplicationCost",
    "ablation",
    "build_replicas",
    "generation_cycles",
    "replica_congestion",
    "replication_cost",
    "rotated_position",
    "run_cycles",
    "MultiplexedEstimate",
    "best_cost_performance",
    "estimate_multiplexed",
    "frontier",
    "generation_active_counts",
    "VerilogDesign",
    "design_statistics",
    "generate_verilog",
    "SynthesisReport",
    "EP2C70_LOGIC_ELEMENTS",
    "largest_feasible_n",
    "paper_report",
    "sweep",
    "synthesize",
]
