"""Cell kinds and static access-structure analysis (Figure 4).

The hardware design "separates the field into ``n^2`` standard cells and
``n`` extended cells with the ability to choose the neighbor cell on the
basis of the cell data".  Standard cells connect to a small set of
*statically known* neighbours selected by a generation-addressed
multiplexer; extended cells (the first column, which executes the
data-dependent generations 10 and 11) additionally need a second
multiplexer addressed by the cell data.

This module classifies cells and -- directly from the generation rules --
computes each cell's static source set, i.e. the inputs of its neighbour
multiplexer.  The cost model consumes these counts, so the hardware
estimate is derived from the *actual* algorithm structure rather than
hand-waved constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule
from repro.util.validation import check_positive


class CellKind(enum.Enum):
    """Hardware cell classes of the paper's Figure 4."""

    STANDARD = "standard"
    EXTENDED = "extended"


def cell_kind(layout: FieldLayout, index: int) -> CellKind:
    """Classify cell ``index``.

    Extended cells are exactly the first column of the square field: they
    execute the data-dependent generations 10 and 11.  The remaining
    ``n(n-1)`` square cells and the ``n`` bottom-row cells are standard --
    ``n^2`` standard plus ``n`` extended in total, matching Section 4.
    """
    if layout.is_first_column(index) and not layout.is_last_row(index):
        return CellKind.EXTENDED
    return CellKind.STANDARD


def count_cells(n: int) -> Dict[CellKind, int]:
    """Cell counts by kind: ``n^2`` standard, ``n`` extended."""
    check_positive("n", n)
    return {CellKind.STANDARD: n * n, CellKind.EXTENDED: n}


@dataclass(frozen=True)
class CellStructure:
    """The per-cell hardware structure derived from the rule set.

    Attributes
    ----------
    index:
        Linear cell index.
    kind:
        Standard or extended.
    static_sources:
        The distinct cells this cell reads through *position-determined*
        pointers (generations 1-9) -- the inputs of the generation mux.
    data_mux_inputs:
        Inputs of the data-addressed mux (0 for standard cells, ``n`` for
        extended cells: generation 10/11 can dereference any row).
    """

    index: int
    kind: CellKind
    static_sources: FrozenSet[int]
    data_mux_inputs: int

    @property
    def generation_mux_inputs(self) -> int:
        """Inputs of the generation-addressed neighbour multiplexer."""
        return len(self.static_sources)


def analyze_static_sources(n: int) -> List[CellStructure]:
    """Derive every cell's static source set from one iteration's rules.

    Data-dependent generations (10, 11) are excluded from the static set
    and accounted as the extended cells' ``n``-input data mux instead.
    """
    check_positive("n", n)
    layout = FieldLayout(n)
    sources: List[Set[int]] = [set() for _ in range(layout.size)]
    for sched in full_schedule(n, iterations=1):
        if sched.number in (0, 10, 11):
            continue
        rule = sched.rule
        for index in range(layout.size):
            if rule.active(layout, index):
                # d=0 is a safe placeholder: these pointers ignore d.
                sources[index].add(rule.pointer(layout, index, 0))
    result = []
    for index in range(layout.size):
        kind = cell_kind(layout, index)
        result.append(
            CellStructure(
                index=index,
                kind=kind,
                static_sources=frozenset(sources[index]),
                data_mux_inputs=n if kind is CellKind.EXTENDED else 0,
            )
        )
    return result


def mux_input_summary(n: int) -> Dict[CellKind, int]:
    """Maximum generation-mux inputs per cell kind -- the figure the
    multiplexer sizing of the cost model uses."""
    structures = analyze_static_sources(n)
    summary: Dict[CellKind, int] = {CellKind.STANDARD: 0, CellKind.EXTENDED: 0}
    for s in structures:
        summary[s.kind] = max(summary[s.kind], s.generation_mux_inputs)
    return summary
