"""Synthesis-report facade (the Section 4 result line).

The paper reports one synthesis result::

    N x (N+1) = 272 cells; logic elements = 23,051; register bits = 2,192;
    clock frequency = 71 MHz        (ALTERA CYCLONE II EP2C70, Quartus II)

:func:`synthesize` produces the same record from the cost model;
:func:`paper_report` is the published constant; the Figure-4 bench prints
both side by side and sweeps ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.cost_model import (
    PAPER_CELLS,
    PAPER_DEVICE,
    PAPER_FMAX_MHZ,
    PAPER_LOGIC_ELEMENTS,
    PAPER_N,
    PAPER_REGISTER_BITS,
    CostEstimate,
    estimate,
)

#: Capacity of the paper's device: the EP2C70 has 68,416 logic elements.
EP2C70_LOGIC_ELEMENTS = 68_416


@dataclass(frozen=True)
class SynthesisReport:
    """One synthesis result row."""

    device: str
    n: int
    cells: int
    logic_elements: int
    register_bits: int
    fmax_mhz: float
    source: str  # "paper" or "model"

    def summary(self) -> str:
        """Section-4-style one-liner."""
        return (
            f"N x (N+1) = {self.cells} cells; logic elements = "
            f"{self.logic_elements:,}; register bits = {self.register_bits:,}; "
            f"clock frequency = {self.fmax_mhz:g} MHz"
        )

    @property
    def device_utilisation(self) -> float:
        """Fraction of the EP2C70's logic elements consumed."""
        return self.logic_elements / EP2C70_LOGIC_ELEMENTS


def paper_report() -> SynthesisReport:
    """The published Section 4 data point."""
    return SynthesisReport(
        device=PAPER_DEVICE,
        n=PAPER_N,
        cells=PAPER_CELLS,
        logic_elements=PAPER_LOGIC_ELEMENTS,
        register_bits=PAPER_REGISTER_BITS,
        fmax_mhz=PAPER_FMAX_MHZ,
        source="paper",
    )


def synthesize(n: int) -> SynthesisReport:
    """Model-based synthesis estimate for a field over ``n`` nodes."""
    est: CostEstimate = estimate(n)
    return SynthesisReport(
        device=PAPER_DEVICE + " (model)",
        n=n,
        cells=est.cells,
        logic_elements=est.logic_elements,
        register_bits=est.register_bits,
        fmax_mhz=est.fmax_mhz,
        source="model",
    )


def sweep(sizes: List[int]) -> List[SynthesisReport]:
    """Synthesis estimates across field sizes."""
    return [synthesize(n) for n in sizes]


def largest_feasible_n(max_logic_elements: int = EP2C70_LOGIC_ELEMENTS) -> int:
    """The largest ``n`` whose estimated design fits the device -- the
    practical scalability statement of the conclusion, quantified."""
    n = 1
    while estimate(n + 1).logic_elements <= max_logic_elements:
        n += 1
    return n
