"""The replication/rotation congestion optimisation (Section 4 discussion).

"While the congestion suggests that some of the steps are very slow, the
static nature of the communication can be used to either implement the
concurrent reads in a tree-like manner, or to use replication for arrays C
and T to get congestion down to 1.  For example, in the second step, each
cell (i, j) accesses C(i) and C(j).  If the array C is replicated in each
row, rotated by i positions in row i, then all cells in row i could access
all the C(i) values in this row, and each cell of this row could access
the C(i) value in its column.  This however would require extended cells
in all places."

This module quantifies that trade for all three read-distribution
strategies:

* ``SERIAL`` -- concurrent reads of one cell are serialised: a generation
  takes ``max(1, delta_max)`` cycles;
* ``TREE``   -- reads are served by a distribution tree:
  ``1 + ceil(log2 delta_max)`` cycles;
* ``REPLICATED`` -- C/T live rotated in every row, all broadcast reads are
  local: 1 cycle per generation, but every cell becomes extended and the
  replicas cost registers.

The rotation itself is modelled (and unit-tested) as an address transform:
with replica ``R<i>[(i + k) mod n] = C(k)``, the value ``C(k)`` needed by
cell ``(i, k)`` is available *inside row i*, hence congestion 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.gca.instrumentation import AccessLog
from repro.hardware.cost_model import data_width, estimate
from repro.util.intmath import ceil_log2
from repro.util.validation import check_positive


class ReadStrategy(enum.Enum):
    """How concurrent reads of one cell are realised in hardware."""

    SERIAL = "serial"
    TREE = "tree"
    REPLICATED = "replicated"


def rotated_position(row: int, source: int, n: int) -> int:
    """Column of ``C(source)`` within row ``row`` after rotation by ``row``.

    The replica layout stores ``C(k)`` of row ``i`` at column
    ``(i + k) mod n`` ("rotated by i positions in row i").
    """
    check_positive("n", n)
    if not 0 <= row < n or not 0 <= source < n:
        raise IndexError(f"row/source must be in [0, {n}), got {row}/{source}")
    return (row + source) % n


def build_replicas(values: np.ndarray) -> np.ndarray:
    """The ``n x n`` replica matrix: row ``i`` holds ``values`` rotated by
    ``i`` positions (``R[i, (i + k) % n] = values[k]``)."""
    values = np.asarray(values)
    n = values.shape[0]
    replicas = np.empty((n, n), dtype=values.dtype)
    cols = (np.arange(n)[:, None] + np.arange(n)[None, :]) % n
    replicas[np.arange(n)[:, None], cols] = values[None, :]
    return replicas


def replica_congestion(n: int) -> int:
    """Read congestion of the broadcast generations under replication: each
    cell finds every needed C/T value inside its own row, so 1."""
    check_positive("n", n)
    return 1


def generation_cycles(delta_max: int, strategy: ReadStrategy) -> int:
    """Hardware cycles one generation takes under ``strategy`` when its
    peak congestion is ``delta_max``."""
    if delta_max < 0:
        raise ValueError(f"delta_max must be >= 0, got {delta_max}")
    if strategy is ReadStrategy.REPLICATED:
        return 1
    if delta_max <= 1:
        return 1
    if strategy is ReadStrategy.SERIAL:
        return delta_max
    return 1 + ceil_log2(delta_max)


def run_cycles(log: AccessLog, strategy: ReadStrategy) -> int:
    """Total cycles of a recorded run under ``strategy``."""
    return sum(
        generation_cycles(g.max_congestion, strategy) for g in log.generations
    )


@dataclass(frozen=True)
class ReplicationCost:
    """Hardware cost delta of the replication scheme."""

    n: int
    extra_register_bits: int
    baseline_extended_cells: int
    replicated_extended_cells: int

    @property
    def extended_cell_increase(self) -> int:
        return self.replicated_extended_cells - self.baseline_extended_cells


def replication_cost(n: int) -> ReplicationCost:
    """Registers and cell upgrades the replication scheme requires.

    Two replicated arrays (C and T), one rotated copy per row:
    ``2 * n^2 * width`` extra register bits; and "extended cells in all
    places": all ``n(n+1)`` cells need data-addressed source selection.
    """
    check_positive("n", n)
    base = estimate(n)
    return ReplicationCost(
        n=n,
        extra_register_bits=2 * n * n * data_width(n),
        baseline_extended_cells=base.extended_cells,
        replicated_extended_cells=base.cells,
    )


@dataclass(frozen=True)
class AblationRow:
    """One row of the replication ablation (strategy x metric)."""

    strategy: ReadStrategy
    total_cycles: int
    extra_register_bits: int
    extended_cells: int


def ablation(
    log: AccessLog, n: int
) -> List[AblationRow]:
    """The Section-4 trade-off, quantified on a measured run."""
    cost = replication_cost(n)
    base = estimate(n)
    rows = []
    for strategy in ReadStrategy:
        rows.append(
            AblationRow(
                strategy=strategy,
                total_cycles=run_cycles(log, strategy),
                extra_register_bits=(
                    cost.extra_register_bits
                    if strategy is ReadStrategy.REPLICATED
                    else 0
                ),
                extended_cells=(
                    cost.replicated_extended_cells
                    if strategy is ReadStrategy.REPLICATED
                    else base.extended_cells
                ),
            )
        )
    return rows
