"""The cell-field layout of the GCA algorithm (Section 3 of the paper).

``n^2`` cells ``(i, j)`` are arranged in a square matrix; ``n`` extra cells
form an additional bottom row for intermediate results.  Assembled, the
cell fields overlay three matrices::

    D : (n+1) x n   data
    P : (n+1) x n   pointers
    A :  n    x n   adjacency input (square part only)

Notation (paper, Section 3)::

    index = linear index of D and P : 0 .. n^2 + n - 1
    j     = row(index)    : 0 .. n
    i     = col(index)    : 0 .. n-1
    D<j>[i]  = element at row j, column i
    D_square = first n rows of D          (written D-box in the paper)
    D_N      = last row of D

The first column of ``D_square`` corresponds to the vectors ``C``/``T`` of
the reference algorithm; the last row saves intermediate copies of them.

:class:`FieldLayout` is pure address arithmetic (shared by the interpreter,
the vectorised implementation and the hardware model); :class:`CellField`
adds the actual state arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.sentinels import infinity_for
from repro.util.validation import check_index, check_positive

GraphLike = Union[AdjacencyMatrix, np.ndarray]


@dataclass(frozen=True)
class FieldLayout:
    """Address arithmetic for the ``(n+1) x n`` cell field."""

    n: int

    def __post_init__(self) -> None:
        check_positive("n", self.n)

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows, ``n + 1`` (square part plus the bottom row)."""
        return self.n + 1

    @property
    def cols(self) -> int:
        """Number of columns, ``n``."""
        return self.n

    @property
    def size(self) -> int:
        """Total number of cells, ``n(n+1)``."""
        return self.n * (self.n + 1)

    @property
    def square_size(self) -> int:
        """Number of cells in the square part, ``n^2``."""
        return self.n * self.n

    @property
    def last_row_start(self) -> int:
        """Linear index of ``D_N[0]`` -- the paper's ``n^2`` offset."""
        return self.n * self.n

    @property
    def infinity(self) -> int:
        """The infinity sentinel used by generations 2/6."""
        return infinity_for(self.n)

    # ------------------------------------------------------------------
    def row(self, index: int) -> int:
        """``row(index)`` of the paper: 0..n."""
        check_index("index", index, self.size)
        return index // self.n

    def col(self, index: int) -> int:
        """``col(index)`` of the paper: 0..n-1."""
        check_index("index", index, self.size)
        return index % self.n

    def index(self, row: int, col: int) -> int:
        """Linear index of ``D<row>[col]``."""
        check_index("row", row, self.rows)
        check_index("col", col, self.cols)
        return row * self.n + col

    def is_last_row(self, index: int) -> bool:
        """Whether ``index`` addresses a ``D_N`` cell."""
        return self.row(index) == self.n

    def is_first_column(self, index: int) -> bool:
        """Whether ``index`` addresses a ``D[0]`` (first-column) cell."""
        return self.col(index) == 0

    def is_square(self, index: int) -> bool:
        """Whether ``index`` addresses a ``D_square`` cell."""
        return index < self.square_size

    def coordinates(self, index: int) -> Tuple[int, int]:
        """``(row, col)`` of ``index``."""
        return self.row(index), self.col(index)

    # ------------------------------------------------------------------
    def first_column_indices(self) -> np.ndarray:
        """Linear indices of ``D_square``'s first column (the C/T vector)."""
        return np.arange(self.n, dtype=np.int64) * self.n

    def last_row_indices(self) -> np.ndarray:
        """Linear indices of ``D_N``."""
        return self.last_row_start + np.arange(self.n, dtype=np.int64)

    def row_indices(self, row: int) -> np.ndarray:
        """Linear indices of row ``row``."""
        check_index("row", row, self.rows)
        return row * self.n + np.arange(self.n, dtype=np.int64)

    def column_indices(self, col: int) -> np.ndarray:
        """Linear indices of column ``col`` (full field, n+1 entries)."""
        check_index("col", col, self.cols)
        return col + self.n * np.arange(self.rows, dtype=np.int64)


class CellField:
    """The concrete field state: ``D``, ``P`` and the constant ``A`` plane.

    Parameters
    ----------
    graph:
        The input graph; its adjacency matrix populates the per-cell
        constant ``a`` of the square cells (bottom-row cells carry ``a=0``).
    """

    def __init__(self, graph: GraphLike):
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        self.graph = g
        self.layout = FieldLayout(g.n)
        self._D = np.zeros((self.layout.rows, self.layout.cols), dtype=np.int64)
        self._P = np.zeros((self.layout.rows, self.layout.cols), dtype=np.int64)
        self._A = np.zeros(self.layout.size, dtype=np.int64)
        self._A[: self.layout.square_size] = g.matrix.ravel()
        self._A.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self.layout.n

    @property
    def D(self) -> np.ndarray:
        """The data matrix, shape ``(n+1, n)`` (live view)."""
        return self._D

    @property
    def P(self) -> np.ndarray:
        """The pointer matrix, shape ``(n+1, n)`` (live view)."""
        return self._P

    @property
    def A_plane(self) -> np.ndarray:
        """The flattened adjacency constants, length ``n(n+1)`` (read-only)."""
        return self._A

    @property
    def D_square(self) -> np.ndarray:
        """View of the square part ``D_square`` (first ``n`` rows)."""
        return self._D[: self.n, :]

    @property
    def D_N(self) -> np.ndarray:
        """View of the last row ``D_N``."""
        return self._D[self.n, :]

    @property
    def C_column(self) -> np.ndarray:
        """Copy of the first column of ``D_square`` -- the C/T vector."""
        return self._D[: self.n, 0].copy()

    def flat_data(self) -> np.ndarray:
        """Copy of ``D`` linearised to length ``n(n+1)``."""
        return self._D.ravel().copy()

    def flat_pointers(self) -> np.ndarray:
        """Copy of ``P`` linearised to length ``n(n+1)``."""
        return self._P.ravel().copy()

    def load_flat(self, data: np.ndarray = None, pointers: np.ndarray = None) -> None:
        """Overwrite ``D``/``P`` from flat arrays of length ``n(n+1)``."""
        if data is not None:
            data = np.asarray(data, dtype=np.int64)
            if data.shape != (self.layout.size,):
                raise ValueError(
                    f"data must have shape ({self.layout.size},), got {data.shape}"
                )
            self._D[...] = data.reshape(self.layout.rows, self.layout.cols)
        if pointers is not None:
            pointers = np.asarray(pointers, dtype=np.int64)
            if pointers.shape != (self.layout.size,):
                raise ValueError(
                    f"pointers must have shape ({self.layout.size},), got {pointers.shape}"
                )
            self._P[...] = pointers.reshape(self.layout.rows, self.layout.cols)

    def __repr__(self) -> str:
        return f"CellField(n={self.n}, cells={self.layout.size})"
