"""The n-cell design alternative (Section 3's design decision).

"The first design decision is about the number and the structure of the
cells.  [...] For this algorithm we decide between n and n^2 cells.  We
have decided for the n^2 case because we want to design and evaluate the
GCA algorithm with the highest degree of parallelism."

This module implements the road not taken: a GCA with only **n cells**,
one per graph node.  Cell ``i`` stores its own registers ``C(i)``/``T(i)``
(plus a scratch register) and its row ``A(i, .)`` of the adjacency matrix
as local constants.  The minimum computations of steps 2 and 3 cannot be
tree-reduced across cells any more; instead each cell *scans* the other
cells in ``n - 1`` sub-generations using a **rotation access pattern**
(cell ``i`` reads cell ``(i + k) mod n`` in sub-generation ``k``), so
every sub-generation has congestion exactly 1.

Step 3's scan needs both the partner's ``C`` and ``T`` registers, so the
row machine is a **two-handed** GCA (the paper's terminology); everything
else is one-handed.

Costs compared to the paper's n^2-cell design (the ablation
`benchmarks/bench_ncells_ablation.py` tabulates this):

================  =======================  =========================
quantity          n^2-cell design          n-cell design (this file)
================  =======================  =========================
cells             n(n + 1)                 n
generations       1 + log n (3 log n + 8)  1 + log n (2n + log n + 7)
peak congestion   n + 1 (broadcasts)       <= n (only pointer jumping)
state memory      ~3 n^2 words             n^2 bits + 3n words
================  =======================  =========================

Both designs store Theta(n^2) bits -- the adjacency matrix dominates --
which is exactly the paper's argument for why reducing the cell count
below n^2 buys no asymptotic hardware advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.gca.instrumentation import AccessLog, GenerationStats
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import jump_iterations, outer_iterations
from repro.util.sentinels import infinity_for
from repro.util.validation import check_positive

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def row_generations_per_iteration(n: int) -> int:
    """Closed form for one outer iteration of the n-cell design.

    init2 + (n-1) scan2 + fix2 + init3 + n scan3 + fix3 + adopt +
    log n jumps + resolve  =  2n + 5 + log n.
    """
    check_positive("n", n)
    return 2 * n + 5 + jump_iterations(n)


def row_total_generations(n: int, iterations: Optional[int] = None) -> int:
    """Total generations: ``1 + iterations * (2n + 5 + log n)``.

    The leading 1 is the initialisation generation (``C(i) <- i``).
    """
    check_positive("n", n)
    iters = outer_iterations(n) if iterations is None else iterations
    return 1 + iters * row_generations_per_iteration(n)


@dataclass
class RowGCAResult:
    """Outcome of an n-cell run."""

    labels: np.ndarray
    n: int
    iterations: int
    access_log: AccessLog = field(default_factory=AccessLog)

    @property
    def total_generations(self) -> int:
        return self.access_log.total_generations

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


class RowGCA:
    """The n-cell GCA machine.

    The implementation is vectorised (all n cells advance as NumPy rows)
    but follows strict synchronous semantics: every sub-generation reads
    the register state from the start of the sub-generation and commits
    at its end.  Access statistics are recorded per sub-generation with
    the same :class:`~repro.gca.instrumentation.GenerationStats` shape the
    n^2-cell machines use, so the ablation can compare them directly.
    """

    def __init__(self, graph: GraphLike, iterations: Optional[int] = None,
                 record_access: bool = True):
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        self.graph = g
        self.n = g.n
        self.inf = infinity_for(g.n)
        self.iterations = (
            outer_iterations(g.n) if iterations is None else iterations
        )
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        self.record_access = record_access
        self.access_log = AccessLog()
        self.C = np.zeros(g.n, dtype=np.int64)
        self.T = np.zeros(g.n, dtype=np.int64)
        self.S = np.zeros(g.n, dtype=np.int64)  # scratch register

    # ------------------------------------------------------------------
    def _record(self, label: str, active: int, targets: Optional[np.ndarray],
                reads_per_target: int = 1) -> None:
        if not self.record_access:
            return
        reads = {}
        if targets is not None and targets.size:
            counts = np.bincount(targets, minlength=self.n) * reads_per_target
            reads = {int(i): int(c) for i, c in enumerate(counts) if c}
        self.access_log.record(
            GenerationStats(label=label, active_cells=active, reads_per_cell=reads)
        )

    # ------------------------------------------------------------------
    def run(self) -> RowGCAResult:
        """Execute the full algorithm and return the result."""
        n, inf = self.n, self.inf
        ids = np.arange(n, dtype=np.int64)
        A = self.graph.matrix

        # generation 0: C(i) <- i (local, no reads)
        self.C = ids.copy()
        self._record("gen0", n, None)

        for it in range(self.iterations):
            tag = f"it{it}"

            # ---- step 2: scan for the smallest foreign neighbour -------
            self.S[:] = inf
            self._record(f"{tag}.s2init", n, None)
            for k in range(1, n):
                partner = (ids + k) % n
                c_p = self.C[partner]                     # one global read
                adjacent = A[ids, partner] == 1
                foreign = c_p != self.C
                better = adjacent & foreign & (c_p < self.S)
                self.S = np.where(better, c_p, self.S)
                self._record(f"{tag}.s2scan{k}", n, partner)
            self.T = np.where(self.S == inf, self.C, self.S)
            self._record(f"{tag}.s2fix", n, None)

            # ---- step 3: scan the members' candidates ------------------
            self.S[:] = inf
            self._record(f"{tag}.s3init", n, None)
            for k in range(n):
                partner = (ids + k) % n
                c_p = self.C[partner]                     # two global reads
                t_p = self.T[partner]                     # (two-handed cell)
                member = c_p == ids
                nontrivial = t_p != ids
                better = member & nontrivial & (t_p < self.S)
                self.S = np.where(better, t_p, self.S)
                self._record(f"{tag}.s3scan{k}", n, partner, reads_per_target=2)
            new_T = np.where(self.S == inf, self.C, self.S)
            self.T = new_T
            self._record(f"{tag}.s3fix", n, None)

            # ---- step 4: adopt (local) ---------------------------------
            self.C = self.T.copy()
            self._record(f"{tag}.s4adopt", n, None)

            # ---- step 5: pointer jumping -------------------------------
            for j in range(jump_iterations(n)):
                targets = self.C.copy()
                self.C = self.C[targets]
                self._record(f"{tag}.s5jump{j}", n, targets)

            # ---- step 6: resolve mutual pairs --------------------------
            targets = self.C.copy()
            self.C = np.minimum(self.C, self.T[targets])
            self._record(f"{tag}.s6resolve", n, targets)

        return RowGCAResult(
            labels=self.C.copy(),
            n=n,
            iterations=self.iterations,
            access_log=self.access_log,
        )


def connected_components_row_gca(
    graph: GraphLike, iterations: Optional[int] = None
) -> np.ndarray:
    """Convenience wrapper: canonical labels via the n-cell design."""
    return RowGCA(graph, iterations=iterations).run().labels


def memory_words(n: int) -> dict:
    """State storage of the two designs, in comparable units.

    Words are ``2 ceil(log2 n)``-bit registers; the adjacency input is
    counted in bits separately because both designs need it verbatim.
    """
    check_positive("n", n)
    return {
        "n2_design_words": 2 * n * (n + 1),   # D and P planes
        "n2_design_adjacency_bits": n * n,
        "row_design_words": 3 * n,            # C, T, S registers
        "row_design_adjacency_bits": n * n,
    }
