"""The control state machine of Figure 2.

In the hardware design, a central state machine sequences the generations:
each state selects the pointer operation and the data operation every cell
applies, and log-counters drive the sub-generation loops of generations
3/7 (reduction) and 10 (jumping) and the outer iteration loop.

:class:`HirschbergStateMachine` is that controller in executable form.  It
is deliberately separate from the *schedule* (the flat, precomputed list in
:mod:`repro.core.schedule`): the state machine transitions dynamically like
the hardware does, and the test-suite verifies the two views agree exactly
-- the dynamic walk must emit the static schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.schedule import (
    STEP_OF_GENERATION,
    ScheduledGeneration,
    iteration_generations,
)
from repro.util.intmath import (
    jump_iterations,
    outer_iterations,
    reduction_subgenerations,
)
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineState:
    """The externally visible controller state."""

    iteration: int
    generation_number: int
    sub_generation: int
    step: int
    done: bool

    @property
    def label(self) -> str:
        if self.done:
            return "done"
        if self.generation_number == 0:
            return "gen0"
        base = f"it{self.iteration}.gen{self.generation_number}"
        if self.generation_number in (3, 7, 10):
            return f"{base}.sub{self.sub_generation}"
        return base


class HirschbergStateMachine:
    """Sequences the generations of the GCA algorithm for ``n`` nodes.

    Usage::

        sm = HirschbergStateMachine(n)
        while not sm.done:
            scheduled = sm.advance()      # the generation to execute now
            ...apply scheduled.rule...

    The machine mirrors the hardware controller: generation 0 once, then
    ``ceil(log2 n)`` iterations of generations 1..11 with the reduction and
    jumping loops counted by sub-generation registers.
    """

    def __init__(self, n: int, iterations: Optional[int] = None):
        self.n = check_positive("n", n)
        self.iterations = (
            outer_iterations(n) if iterations is None else iterations
        )
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        self.subgens = reduction_subgenerations(n)
        self.jumps = jump_iterations(n)
        self._iteration = -1        # -1 while in generation 0
        self._position = -1         # index into the current iteration's list
        self._current_list = None
        self._emitted_gen0 = False
        self._generation_count = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the program has finished."""
        if not self._emitted_gen0:
            return False
        if self.iterations == 0:
            return True
        if self._iteration < self.iterations - 1:
            return False
        return self._current_list is not None and self._position >= len(self._current_list) - 1

    @property
    def generations_executed(self) -> int:
        """How many generations have been emitted so far."""
        return self._generation_count

    def state(self) -> MachineState:
        """The current controller state (the *last emitted* generation, or
        the pre-start state before the first :meth:`advance`)."""
        if not self._emitted_gen0:
            return MachineState(
                iteration=-1, generation_number=0, sub_generation=0,
                step=1, done=False,
            )
        if self._current_list is None or self._position < 0:
            return MachineState(
                iteration=-1, generation_number=0, sub_generation=0,
                step=1, done=self.done,
            )
        sched = self._current_list[self._position]
        return MachineState(
            iteration=sched.iteration,
            generation_number=sched.number,
            sub_generation=sched.sub_generation,
            step=STEP_OF_GENERATION[sched.number],
            done=self.done,
        )

    # ------------------------------------------------------------------
    def advance(self) -> ScheduledGeneration:
        """Transition to the next generation and return it."""
        if not self._emitted_gen0:
            self._emitted_gen0 = True
            self._generation_count += 1
            from repro.core.generations import Gen0Initialise

            return ScheduledGeneration(
                iteration=-1, number=0, sub_generation=0, rule=Gen0Initialise()
            )
        if self._current_list is None or self._position >= len(self._current_list) - 1:
            # Move to the next outer iteration.
            if self._iteration >= self.iterations - 1:
                raise StopIteration("the state machine has finished")
            self._iteration += 1
            self._current_list = iteration_generations(self.n, self._iteration)
            self._position = 0
        else:
            self._position += 1
        self._generation_count += 1
        return self._current_list[self._position]

    def __iter__(self) -> Iterator[ScheduledGeneration]:
        while not self.done:
            yield self.advance()
