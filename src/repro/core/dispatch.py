"""Adaptive engine dispatch from a small measured cost model.

The library now ships six interchangeable execution engines for the
same labelling -- the cell-accurate interpreter, the fused vectorised
field, the stacked batched field, the scatter edge-list variant, the
contracting sparse variant and the sharded out-of-core variant -- and
the right one depends on the workload: ``n``, the edge count, the batch
size and how much memory the engine's working set may claim.  This
module centralises that decision so every caller (``engine="auto"`` in
:mod:`repro.core.api`, the CLI, the sweep harness) picks the same way.

The model is deliberately small: a handful of per-unit constants
(seconds per cell-generation, per scattered edge, per engine-internal
NumPy dispatch, ...) measured on the reference development box (see
``benchmarks/bench_sparse_scaling.py``), combined with the paper's
closed-form schedule length ``1 + log n (3 log n + 8)``.  It only has to
be right about *tiers*, not percent-level differences;
:func:`calibrate` re-measures the constants for callers on very
different hardware.

The measured verdict is itself a result worth recording: for a *single*
graph the sparse engines win the wall clock everywhere -- even at 50%
density the contracting engine beats the dense field by an order of
magnitude, because the field pays ``Theta(n^2)`` cells for every one of
the ``1 + log n (3 log n + 8)`` generations while the sparse engines pay
``O(n + m)`` per outer iteration.  The dense engines' regions are
therefore *capability* regions, not speed regions: the interpreter is
dispatched when congestion instrumentation is required
(``require_instrumentation=True``), and the vectorised/batched field
engines remain the reproduction of the paper's architecture (and the
batched engine the fastest *field* path for many-graph workloads).  The
cost model still prices all five honestly, so if the balance shifts on
other hardware (or after :func:`calibrate`), the decision follows the
measurements, not this paragraph.

>>> choose_engine(4, 3, require_instrumentation=True)
'interpreter'
>>> choose_engine(512, 60_000)           # mid-size, dense-ish
'edgelist'
>>> choose_engine(8, 12, batch_size=64)  # many tiny dense graphs
'batched'
>>> choose_engine(2_000_000, 6_000_000)  # large sparse
'contracting'

The **memory dimension**: every engine's predicted resident working set
(:func:`predict_memory`) is compared against the model's byte budget,
and engines that would not fit are priced infeasible.  The sharded
out-of-core engine bounds its resident set to the budget by
construction, so it is always feasible -- it is the engine of last
resort when the edge list outgrows RAM:

>>> tight = CostModel(memory_budget=float(1 << 30))
>>> choose_engine(50_000_000, 1_000_000_000, model=tight)
'sharded'

``engine="auto"`` in :mod:`repro.core.api` sizes that budget from a
live probe of the host's available memory
(:func:`probe_available_memory`) instead of the shipped default.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Dict, Optional, Union

from repro.util.intmath import ceil_log2

#: Engines the dispatcher selects between (in stable tie-break order;
#: serial contracting precedes the chunk-parallel engine so a tie never
#: pays barriers, and the out-of-core engine comes last so an in-RAM
#: engine wins any tie).
DISPATCHABLE = (
    "contracting", "parallel", "edgelist", "batched", "vectorized",
    "interpreter", "sharded",
)


def _schedule_generations(n: int) -> int:
    """The paper's total generation count ``1 + log n (3 log n + 8)``."""
    log_n = ceil_log2(max(n, 2))
    return 1 + log_n * (3 * log_n + 8)


@dataclass(frozen=True)
class CostModel:
    """Measured per-unit costs (seconds) and memory parameters.

    The defaults were measured on the reference development machine
    (NumPy 2.x, single core); :func:`calibrate` refreshes them in a few
    hundred milliseconds on the current host.
    """

    #: interpreter: seconds per cell per generation (Python cell objects).
    interpreter_cell_gen: float = 4.5e-6
    #: vectorised engine: fixed NumPy dispatch cost per generation...
    vectorized_gen_dispatch: float = 4.5e-6
    #: ...plus per cell per generation on the fused kernels.
    vectorized_cell_gen: float = 4.5e-10
    #: batched engine: per cell per generation; the per-generation
    #: dispatch is shared by the whole batch.
    batched_cell_gen: float = 4.0e-10
    #: edge-list engine: per directed edge per outer iteration
    #: (``np.minimum.at`` scatter)...
    scatter_edge: float = 1.3e-8
    #: ...plus the fixed NumPy dispatch cost of one outer iteration
    #: (~15 kernel launches).
    edgelist_iter_dispatch: float = 1.2e-5
    #: contracting engine: per (vertex + directed edge) unit...
    contracting_unit: float = 6.0e-8
    #: ...times this effective level count (the active problem shrinks
    #: geometrically, so the level series sums to a small constant)...
    contracting_levels: float = 2.5
    #: ...plus the fixed dispatch cost of one contraction level.
    contracting_level_dispatch: float = 1.0e-5
    #: fixed per-request overhead of one full ``connected_components``
    #: call (validation, graph conversion, result assembly) -- what a
    #: *solo* request pays on top of the raw engine kernels.  Batched
    #: execution pays it once per batch; the serve scheduler uses the
    #: difference for its batch-vs-solo decision.
    request_overhead: float = 2.5e-5
    #: one round trip through the serve layer's persistent process pool
    #: (slab write, queue hop, worker attach, result hop).  The serve
    #: scheduler ships a flush to the pool only when its predicted batch
    #: seconds dominate this term, so small batches stay inline.  The
    #: default is a conservative placeholder; a running
    #: :class:`~repro.serve.executor.PoolExecutor` replaces it with the
    #: round trip it *measured* during warm-up on this host.
    pool_dispatch_overhead: float = 2.0e-3
    #: chunk-parallel engine: seconds of synchronisation per round --
    #: two task-barrier phases (hook, jump) plus the parent-side partial
    #: combine dispatch.  A conservative placeholder; a running
    #: :class:`~repro.serve.executor.PoolExecutor` replaces it with
    #: twice the dispatch round trip it measured during warm-up.
    parallel_round_sync: float = 4.0e-3
    #: effective synchronous round count of the fastsv variant (the
    #: fixpoint lands in a handful of rounds at dispatchable scales;
    #: priced as a constant like ``contracting_levels``).
    parallel_rounds: float = 5.0
    #: per-vertex per-round cost of the parent-side partial combine,
    #: paid once per live partial slab (so scaled by the worker count).
    parallel_combine_node: float = 1.5e-9
    #: kernel workers available to the chunk-parallel engine.  The
    #: shipped default assumes none (serial hosts must never dispatch
    #: to it); ``engine="auto"`` replaces it with the probed CPU count
    #: and pool owners with their actual worker count.
    parallel_workers: float = 1.0
    #: sharded out-of-core engine: seconds per undirected edge across
    #: partition IO, per-shard contraction and the boundary merge.
    sharded_edge: float = 7.5e-7
    #: fixed overhead of one sharded run (shard files, plan, pool
    #: spin-up) -- keeps small graphs away from the disk path.
    sharded_overhead: float = 0.5
    #: dense field footprint per cell (double-buffered field + adjacency).
    dense_bytes_per_cell: float = 48.0
    #: interpreter footprint per cell (a Python object per cell).
    interpreter_bytes_per_cell: float = 800.0
    #: in-RAM sparse engines: resident bytes per directed edge (edge
    #: arrays plus sort/dedup/CSR temporaries, measured envelope).
    sparse_bytes_per_edge: float = 80.0
    #: ...plus resident bytes per vertex (label/pointer arrays).
    sparse_bytes_per_node: float = 48.0
    #: bytes an engine's working set may claim before it is infeasible.
    memory_budget: float = float(2 << 30)


#: The shipped defaults.
DEFAULT_COST_MODEL = CostModel()


def probe_available_memory(default: Optional[int] = None) -> int:
    """Bytes of memory the host can spare right now.

    Reads ``MemAvailable`` from ``/proc/meminfo`` (the kernel's estimate
    of allocatable memory without swapping).  On platforms without it,
    returns ``default`` when given, else the shipped budget -- the probe
    must never make dispatch fail, only make it better informed.
    """
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    if default is not None:
        return int(default)
    return int(DEFAULT_COST_MODEL.memory_budget)


def predict_memory(
    n: int, m: int, batch_size: int = 1, model: Optional[CostModel] = None
) -> Dict[str, float]:
    """Predicted resident working set in bytes for every engine.

    The dense engines pay per cell, the in-RAM sparse engines per
    vertex and directed edge, and the sharded out-of-core engine clamps
    its resident set to the model's budget by construction (its
    capacity grows with disk, not RAM) -- so its entry is the smaller
    of the in-RAM footprint and the budget.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    model = model or DEFAULT_COST_MODEL
    cells = n * (n + 1)
    sparse = (
        n * model.sparse_bytes_per_node
        + 2 * m * model.sparse_bytes_per_edge
    )
    workers = max(1, int(model.parallel_workers))
    return {
        "interpreter": cells * model.interpreter_bytes_per_cell,
        "vectorized": cells * model.dense_bytes_per_cell,
        "batched": cells * model.dense_bytes_per_cell * batch_size,
        "edgelist": sparse,
        "contracting": sparse,
        # shared edge arrays + front/back label slabs + one private
        # partial slab per worker, 8 bytes per int64 entry
        "parallel": sparse + (workers + 2) * n * 8.0,
        "sharded": min(sparse, model.memory_budget),
    }


def parallel_verdict(
    n: int, m: int, model: Optional[CostModel] = None
) -> Dict[str, object]:
    """The parallelism decision for one ``(n, m)`` graph, with inputs.

    The chunk-parallel engine pays :attr:`CostModel.parallel_round_sync`
    every synchronous round regardless of size, so it is only worth
    dispatching when the round's *serial* scatter work would dominate
    the barrier: the gate requires at least 2 kernel workers **and**
    per-round serial seconds >= 2x the measured sync overhead.  Below
    that, barriers eat the speedup and auto must stay serial (the
    acceptance bar: small graphs never regress).
    """
    model = model or DEFAULT_COST_MODEL
    workers = max(1, int(model.parallel_workers))
    m_directed = 2 * m
    serial_round = m_directed * model.scatter_edge + n * model.parallel_combine_node
    per_round = (
        model.parallel_round_sync
        + m_directed * model.scatter_edge / workers
        + n * model.parallel_combine_node * workers
    )
    amortizes = serial_round >= 2.0 * model.parallel_round_sync
    return {
        "workers": workers,
        "per_round_serial_seconds": serial_round,
        "per_round_sync_seconds": model.parallel_round_sync,
        "amortizes_barriers": amortizes,
        "worth_parallel": workers >= 2 and amortizes,
        "predicted_seconds": model.parallel_rounds * per_round,
    }


def predict_costs(
    n: int, m: int, batch_size: int = 1, model: Optional[CostModel] = None
) -> Dict[str, float]:
    """Predicted seconds per graph for every engine (infeasible ones get
    ``inf``).

    Parameters
    ----------
    n, m:
        Vertex count and *undirected* edge count of one graph.
    batch_size:
        How many same-size graphs the caller will solve per call; only
        the batched engine amortises over it.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    model = model or DEFAULT_COST_MODEL

    cells = n * (n + 1)
    gens = _schedule_generations(n)
    iters = ceil_log2(max(n, 2))
    m_directed = 2 * m

    costs: Dict[str, float] = {}
    memory = predict_memory(n, m, batch_size=batch_size, model=model)
    fits = {
        name: bytes_needed <= model.memory_budget
        for name, bytes_needed in memory.items()
    }

    costs["interpreter"] = (
        cells * gens * model.interpreter_cell_gen
        if fits["interpreter"] else float("inf")
    )
    costs["vectorized"] = (
        gens * (model.vectorized_gen_dispatch + cells * model.vectorized_cell_gen)
        if fits["vectorized"] else float("inf")
    )
    costs["batched"] = (
        gens * (model.vectorized_gen_dispatch / batch_size
                + cells * model.batched_cell_gen)
        if batch_size > 1 and fits["batched"] else float("inf")
    )
    costs["edgelist"] = (
        iters * (
            model.edgelist_iter_dispatch + m_directed * model.scatter_edge
        )
        if fits["edgelist"] else float("inf")
    )
    costs["contracting"] = (
        model.contracting_levels * (
            model.contracting_level_dispatch
            + (n + m_directed) * model.contracting_unit
        )
        if fits["contracting"] else float("inf")
    )
    verdict = parallel_verdict(n, m, model=model)
    costs["parallel"] = (
        float(verdict["predicted_seconds"])  # type: ignore[arg-type]
        if fits["parallel"] and bool(verdict["worth_parallel"])
        else float("inf")
    )
    # The out-of-core engine is always feasible: its resident set is
    # clamped to the budget by construction.  Its constants price the
    # disk round trips, so it only wins when nothing in-RAM fits.
    costs["sharded"] = model.sharded_overhead + m * model.sharded_edge
    return costs


def choose_engine(
    n: int,
    m: int,
    batch_size: int = 1,
    model: Optional[CostModel] = None,
    require_instrumentation: bool = False,
) -> str:
    """The cheapest feasible engine for ``batch_size`` graphs of shape
    ``(n, m)`` under ``model`` (defaults to the shipped measurements).

    ``require_instrumentation=True`` restricts the choice to the
    cell-accurate interpreter (the only engine with congestion
    instrumentation); it raises ``ValueError`` when the interpreter's
    per-cell Python objects would not fit the memory budget.
    """
    costs = predict_costs(n, m, batch_size=batch_size, model=model)
    if require_instrumentation:
        if costs["interpreter"] == float("inf"):
            raise ValueError(
                f"interpreter infeasible for n={n} under the memory budget"
            )
        return "interpreter"
    return min(DISPATCHABLE, key=lambda name: (costs[name], DISPATCHABLE.index(name)))


def explain_choice(
    n: int, m: int, batch_size: int = 1, model: Optional[CostModel] = None
) -> Dict[str, object]:
    """The decision plus its inputs -- for ``--method auto`` CLI output
    and for auditing dispatch decisions in tests/benchmarks."""
    model = model or DEFAULT_COST_MODEL
    costs = predict_costs(n, m, batch_size=batch_size, model=model)
    return {
        "n": n,
        "m": m,
        "batch_size": batch_size,
        "predicted_seconds": costs,
        "memory": {
            "budget_bytes": model.memory_budget,
            "predicted_bytes": predict_memory(
                n, m, batch_size=batch_size, model=model
            ),
        },
        "feasible": sorted(k for k, v in costs.items() if v != float("inf")),
        "parallel": parallel_verdict(n, m, model=model),
        "choice": choose_engine(n, m, batch_size=batch_size, model=model),
    }


def calibrate(
    model: Optional[CostModel] = None, seconds_budget: float = 1.0
) -> CostModel:
    """Re-measure the per-unit constants on the current host.

    Runs a few tiny workloads per engine (bounded by ``seconds_budget``
    overall on a typical machine) and returns a :class:`CostModel` with
    the measured constants; memory parameters are kept from ``model``.
    """
    # Imported here: dispatch sits below the engines in the layering.
    from repro.core.vectorized import run_vectorized
    from repro.core.machine import connected_components_interpreter
    from repro.graphs.generators import random_graph
    from repro.hirschberg.contracting import connected_components_contracting
    from repro.hirschberg.edgelist import (
        connected_components_edgelist,
        random_edge_list,
    )

    base = model or DEFAULT_COST_MODEL
    deadline = time.perf_counter() + seconds_budget

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
            if time.perf_counter() > deadline:
                break
        return best

    n_i = 8
    g = random_graph(n_i, 0.3, seed=0)
    interp = timed(lambda: connected_components_interpreter(g)) / (
        n_i * (n_i + 1) * _schedule_generations(n_i)
    )

    g_small, g_big = random_graph(8, 0.3, seed=0), random_graph(96, 0.1, seed=0)
    t_small = timed(lambda: run_vectorized(g_small))
    t_big = timed(lambda: run_vectorized(g_big))
    per_gen_small = t_small / _schedule_generations(8)
    per_gen_big = t_big / _schedule_generations(96)
    cells_small, cells_big = 8 * 9, 96 * 97
    cell_gen = max(
        (per_gen_big - per_gen_small) / (cells_big - cells_small), 1e-12
    )
    dispatch = max(per_gen_small - cells_small * cell_gen, 1e-9)

    g_tiny = random_edge_list(16, 24, seed=0)
    e_dispatch = timed(lambda: connected_components_edgelist(g_tiny)) / ceil_log2(16)
    c_dispatch = timed(lambda: connected_components_contracting(g_tiny)) / (
        base.contracting_levels
    )

    # full-API call on a tiny dense input vs the raw engine on a
    # pre-built edge list: the difference is the per-request overhead
    # (validation, dense -> sparse conversion, result assembly).
    from repro.core.api import connected_components
    from repro.hirschberg.edgelist import EdgeListGraph

    g8 = random_graph(8, 0.3, seed=1)
    e8 = EdgeListGraph.from_adjacency(g8)
    t_full = timed(lambda: connected_components(g8, engine="contracting"))
    t_raw = timed(lambda: connected_components_contracting(e8))
    overhead = max(t_full - t_raw, 1e-9)

    ge = random_edge_list(20_000, 40_000, seed=0)
    iters = ceil_log2(20_000)
    scatter = max(
        timed(lambda: connected_components_edgelist(ge)) / iters - e_dispatch,
        1e-9,
    ) / ge.src.size
    contract = max(
        timed(lambda: connected_components_contracting(ge))
        / base.contracting_levels - c_dispatch,
        1e-9,
    ) / (ge.n + ge.src.size)

    return replace(
        base,
        interpreter_cell_gen=interp,
        vectorized_gen_dispatch=dispatch,
        vectorized_cell_gen=cell_gen,
        batched_cell_gen=cell_gen,
        scatter_edge=scatter,
        edgelist_iter_dispatch=e_dispatch,
        contracting_unit=contract,
        contracting_level_dispatch=c_dispatch,
        request_overhead=overhead,
        # a host property rather than a timing, but calibration output
        # should describe the machine it ran on (the cache is keyed by
        # host_fingerprint() for the same reason)
        parallel_workers=float(os.cpu_count() or 1),
    )


# ----------------------------------------------------------------------
# cost-model persistence
# ----------------------------------------------------------------------
#: Bumped whenever the :class:`CostModel` schema changes incompatibly;
#: cache files with a different version are silently ignored.
_CACHE_VERSION = 2


def host_fingerprint() -> Dict[str, object]:
    """What the calibration constants were measured *on*.

    A calibration file carried to a different machine -- or the same
    image booted with a different core count -- would silently misprice
    the pool and chunk-parallel dispatch terms, so the cache is keyed by
    the facts those terms depend on: logical CPU count, architecture
    and OS.
    """
    import platform

    return {
        "cpu_count": int(os.cpu_count() or 1),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def default_cache_path() -> Path:
    """Where :func:`cached_cost_model` persists calibration results.

    ``$REPRO_CACHE_DIR/costmodel.json`` when the variable is set (tests
    and hermetic builds), else ``$XDG_CACHE_HOME/repro/costmodel.json``,
    else ``~/.cache/repro/costmodel.json``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override) / "costmodel.json"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "costmodel.json"


def save_cost_model(
    model: CostModel, path: Union[str, Path, None] = None
) -> Path:
    """Persist ``model`` as JSON at ``path`` (default cache location)."""
    path = Path(path) if path is not None else default_cache_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": _CACHE_VERSION,
        "saved_at": time.time(),
        "host": host_fingerprint(),
        "constants": asdict(model),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_cost_model(
    path: Union[str, Path, None] = None
) -> Optional[CostModel]:
    """The :class:`CostModel` cached at ``path``, or ``None``.

    Returns ``None`` when the file is missing, unparsable, from a
    different schema version, measured on a different host (see
    :func:`host_fingerprint` -- a cache carried to a different core
    count must recalibrate, not misprice parallel dispatch), or holds
    non-numeric constants -- a stale cache must never break startup,
    only trigger recalibration.
    """
    path = Path(path) if path is not None else default_cache_path()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return None
    if payload.get("host") != host_fingerprint():
        return None
    constants = payload.get("constants")
    if not isinstance(constants, dict):
        return None
    known = {f.name for f in fields(CostModel)}
    kept = {
        k: float(v)
        for k, v in constants.items()
        if k in known and isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    return replace(DEFAULT_COST_MODEL, **kept)


def cached_cost_model(
    path: Union[str, Path, None] = None,
    recalibrate: bool = False,
    seconds_budget: float = 1.0,
) -> CostModel:
    """The host's calibrated :class:`CostModel`, measured at most once.

    Loads the cache written by a previous call (so server startup and
    repeated CLI runs don't re-measure); on a miss -- or with
    ``recalibrate=True``, the escape hatch after a hardware change --
    runs :func:`calibrate` and persists the result.
    """
    if not recalibrate:
        cached = load_cost_model(path)
        if cached is not None:
            return cached
    model = calibrate(seconds_budget=seconds_budget)
    save_cost_model(model, path)
    return model
