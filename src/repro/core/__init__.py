"""The paper's contribution: Hirschberg's algorithm as a GCA program.

* :mod:`~repro.core.field` -- the ``(n+1) x n`` cell field (D/P/A overlay);
* :mod:`~repro.core.generations` -- the 12 generation rules of Figure 2;
* :mod:`~repro.core.schedule` -- the static generation schedule and the
  closed-form counts of Table 2;
* :mod:`~repro.core.state_machine` -- the dynamic controller of Figure 2;
* :mod:`~repro.core.machine` -- the cell-accurate instrumented interpreter;
* :mod:`~repro.core.row_machine` -- the n-cell design alternative;
* :mod:`~repro.core.vectorized` -- whole-array execution (fast path);
* :mod:`~repro.core.batched` -- many graphs per dispatch (throughput path);
* :mod:`~repro.core.trace` -- generation traces and Figure 3 patterns;
* :mod:`~repro.core.api` -- the one-call public interface.
"""

from repro.core.api import ComponentsResult, gca_connected_components
from repro.core.batched import (
    BatchedGCA,
    BatchedResult,
    connected_components_batch,
)
from repro.core.field import CellField, FieldLayout
from repro.core.machine import (
    GCAConnectedComponents,
    InterpreterResult,
    connected_components_interpreter,
)
from repro.core.row_machine import (
    RowGCA,
    RowGCAResult,
    connected_components_row_gca,
    row_generations_per_iteration,
    row_total_generations,
)
from repro.core.schedule import (
    STEP_OF_GENERATION,
    ScheduledGeneration,
    full_schedule,
    generations_per_iteration,
    generations_per_step,
    iteration_generations,
    total_generations,
)
from repro.core.state_machine import HirschbergStateMachine, MachineState
from repro.core.trace import (
    AccessPattern,
    GenerationSnapshot,
    TraceRecorder,
    access_pattern,
    figure3_patterns,
)
from repro.core.verification import (
    LockstepReport,
    LockstepValidator,
    LockstepViolation,
    validated_connected_components,
)
from repro.core.vectorized import (
    VectorizedResult,
    connected_components_vectorized,
    run_vectorized,
)

__all__ = [
    "ComponentsResult",
    "gca_connected_components",
    "BatchedGCA",
    "BatchedResult",
    "connected_components_batch",
    "CellField",
    "FieldLayout",
    "GCAConnectedComponents",
    "InterpreterResult",
    "connected_components_interpreter",
    "RowGCA",
    "RowGCAResult",
    "connected_components_row_gca",
    "row_generations_per_iteration",
    "row_total_generations",
    "STEP_OF_GENERATION",
    "ScheduledGeneration",
    "full_schedule",
    "generations_per_iteration",
    "generations_per_step",
    "iteration_generations",
    "total_generations",
    "HirschbergStateMachine",
    "MachineState",
    "AccessPattern",
    "GenerationSnapshot",
    "TraceRecorder",
    "access_pattern",
    "figure3_patterns",
    "LockstepReport",
    "LockstepValidator",
    "LockstepViolation",
    "validated_connected_components",
    "VectorizedResult",
    "connected_components_vectorized",
    "run_vectorized",
]
