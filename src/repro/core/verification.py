"""Lockstep verification: the GCA field checked against the reference.

A :class:`LockstepValidator` runs the vectorised GCA field and the
Listing-1 reference algorithm *side by side* and checks, at every
synchronisation point (the end of each outer iteration), that the field's
first column equals the reference's ``C`` vector -- plus structural
invariants of the field itself (value ranges, ``D_N`` consistency).

This serves two purposes:

* **regression armour** -- any future change to a generation rule that
  silently diverges from the reference is caught at the first iteration
  boundary, with a precise report;
* **failure injection** -- the test-suite corrupts the field mid-run and
  asserts the validator detects it (the monitors are themselves tested,
  not just trusted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

import numpy as np

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule
from repro.core.vectorized import apply_generation
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.steps import one_iteration, step1_init
from repro.util.intmath import jump_iterations, outer_iterations

GraphLike = Union[AdjacencyMatrix, np.ndarray]


class LockstepViolation(AssertionError):
    """The field diverged from the reference or broke an invariant."""


@dataclass
class CheckRecord:
    """One synchronisation point's verdict."""

    iteration: int
    label: str
    ok: bool
    message: str = ""


@dataclass
class LockstepReport:
    """Outcome of a validated run."""

    labels: np.ndarray
    checks: List[CheckRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[CheckRecord]:
        return [c for c in self.checks if not c.ok]


class LockstepValidator:
    """Runs the GCA field against the reference, iteration by iteration.

    Parameters
    ----------
    graph:
        The input graph.
    strict:
        Raise :class:`LockstepViolation` at the first failed check
        (default).  With ``strict=False`` all checks are recorded and
        returned in the report instead.
    """

    def __init__(self, graph: GraphLike, strict: bool = True):
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        self.graph = g
        self.layout = FieldLayout(g.n)
        self.strict = strict
        self._corruptor = None

    def inject(self, after_label: str, corruptor) -> "LockstepValidator":
        """Register a fault: after the generation labelled ``after_label``,
        ``corruptor(D)`` may mutate the field in place (testing hook)."""
        self._corruptor = (after_label, corruptor)
        return self

    # ------------------------------------------------------------------
    def _check(self, report: LockstepReport, iteration: int, label: str,
               condition: bool, message: str) -> None:
        record = CheckRecord(iteration=iteration, label=label, ok=bool(condition),
                             message="" if condition else message)
        report.checks.append(record)
        if self.strict and not record.ok:
            raise LockstepViolation(f"[{label}] {message}")

    def run(self) -> LockstepReport:
        """Execute the validated run."""
        n = self.graph.n
        layout = self.layout
        A = self.graph.matrix.astype(np.int64)
        iters = outer_iterations(n)
        jumps = jump_iterations(n)

        D = np.zeros((n + 1, n), dtype=np.int64)
        C_ref = step1_init(n)
        report = LockstepReport(labels=np.zeros(n, dtype=np.int64))

        schedule = full_schedule(n)
        ref_iteration = 0
        for sched in schedule:
            D = apply_generation(sched, D, A, layout)
            if self._corruptor is not None and sched.label == self._corruptor[0]:
                self._corruptor[1](D)

            # field invariant: values are node ids, row numbers or INF
            self._check(
                report, ref_iteration, sched.label,
                bool((D >= 0).all() and (D <= layout.infinity).all()),
                f"field values out of range after {sched.label}",
            )

            if sched.number == 0:
                self._check(
                    report, ref_iteration, sched.label,
                    bool(np.array_equal(D[:n, 0], C_ref)),
                    "initialisation does not match C(i) = i",
                )
            elif sched.number == 4:
                # after generation 4, column 0 must equal step 2's T
                from repro.hirschberg.steps import step2_candidate_components

                T2 = step2_candidate_components(self.graph, C_ref)
                self._check(
                    report, ref_iteration, sched.label,
                    bool(np.array_equal(D[:n, 0], T2)),
                    f"column 0 != step-2 T: {D[:n, 0].tolist()} vs {T2.tolist()}",
                )
            elif sched.number == 11:
                # iteration boundary: advance the reference and compare C
                C_ref, _T = one_iteration(self.graph, C_ref, jumps)
                self._check(
                    report, ref_iteration, sched.label,
                    bool(np.array_equal(D[:n, 0], C_ref)),
                    f"iteration {ref_iteration}: field C "
                    f"{D[:n, 0].tolist()} != reference {C_ref.tolist()}",
                )
                ref_iteration += 1

        self._check(
            report, iters, "final",
            bool(np.array_equal(D[:n, 0], C_ref)),
            "final labels diverged from the reference",
        )
        report.labels = D[:n, 0].copy()
        return report


def validated_connected_components(graph: GraphLike) -> np.ndarray:
    """Connected components with full lockstep verification enabled."""
    return LockstepValidator(graph, strict=True).run().labels
