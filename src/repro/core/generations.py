"""The twelve generations of the GCA algorithm (Figure 2 of the paper).

Each generation is a pair (pointer operation, data operation) applied by
every *active* cell; activity depends only on the cell's position (and the
sub-generation counter), pointers may additionally depend on the cell's own
data (generations 10/11 -- the "extended cells").

The table below summarises the implementation; ``j = row(index)``,
``i = col(index)``, ``N2 = n^2`` (start of the last row), ``INF`` the
infinity sentinel, ``a`` the cell's adjacency constant.  ``D_square`` are
the rows ``j < n``; ``D_N`` is the row ``j = n``.

====  =======================  ==========================  =============================================
gen   active cells             pointer p                   data operation
====  =======================  ==========================  =============================================
0     all                      (no read)                   d <- j
1     all                      i * n                       d <- d*
2     D_square                 N2 + j                      d <- d if (a = 1 and d != d*) else INF
3.s   aligned pairs, j < n     index + 2^s                 d <- min(d, d*)
4     i = 0, j < n             N2 + j                      d <- d* if d = INF else d
5     all                      i * n                       d <- d if j = n else d*
6     D_square                 N2 + i                      d <- d if (d* = j and d != j) else INF
7.s   = generation 3.s
8     = generation 4
9     all                      i*n if j = n else j*n       d <- d*
10.s  i = 0, j < n             d * n                       d <- d*
11    i = 0, j < n             d * n + 1                   d <- min(d, d*)
====  =======================  ==========================  =============================================

Two readings deviate from the scanned paper text and are justified in
DESIGN.md ("Faithfulness notes"):

* generation 6 points at ``D_N[col]`` (the prose says ``<n>[j]``): step 3
  needs ``C(col)`` to test membership ``C(col) = j``, and ``C`` lives in
  ``D_N`` indexed by node, i.e. by column;
* generation 6's keep-condition is ``(d* = j) and (d != j)`` (the
  complement of the prose's kill-condition, which is garbled in the scan).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.field import FieldLayout


class Generation(ABC):
    """One generation's cell behaviour, in scalar (per-cell) form.

    The interpreter adapts instances to the generic GCA engine; the
    vectorised implementation mirrors them with whole-array operations and
    is cross-validated cell by cell in the tests.
    """

    #: Diagnostic name, e.g. ``"gen2"`` or ``"gen3.sub1"``.
    label: str = "generation"
    #: Whether active cells perform a global read this generation.
    reads: bool = True

    @abstractmethod
    def active(self, layout: FieldLayout, index: int) -> bool:
        """Whether the cell at ``index`` computes this generation."""

    @abstractmethod
    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        """The pointer operation (may depend on the cell's own data)."""

    @abstractmethod
    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        """The data operation; returns the cell's next ``d``."""


class Gen0Initialise(Generation):
    """Generation 0: ``d <- row(index)`` for the whole field.

    The reference algorithm only needs ``C(i) <- i`` in the first column,
    but initialising the whole field "keeps the GCA algorithm (and the
    logic in a hardware implementation) as simple as possible"; the other
    columns are overwritten in generation 1 anyway.
    """

    label = "gen0"
    reads = False

    def active(self, layout: FieldLayout, index: int) -> bool:
        return True

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return index  # unused; kept in range for safety

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return layout.row(index)


class Gen1CopyVectorToRows(Generation):
    """Generation 1: copy the C vector (first column) into every row.

    ``P<j>[i] = <i>[0]``, ``d <- d*``: afterwards every row -- including
    ``D_N`` -- holds ``[C(0), C(1), ..., C(n-1)]``.
    """

    label = "gen1"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return True

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return layout.col(index) * layout.n

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star


class Gen2MaskNonNeighbors(Generation):
    """Generation 2: keep only foreign-component neighbour candidates.

    Cell ``(j, i)`` holds ``C(i)`` and reads ``d* = D_N[j] = C(j)``; it
    keeps its value iff ``A(j, i) = 1`` and ``C(i) != C(j)``, otherwise it
    becomes INF.  The surviving entries of row ``j`` are exactly the step-2
    candidate set ``{C(i) | A(j,i)=1, C(i) != C(j)}``.
    """

    label = "gen2"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return layout.is_square(index)

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return layout.last_row_start + layout.row(index)

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d if (a == 1 and d != d_star) else layout.infinity


class Gen3ReduceMin(Generation):
    """Generations 3/7 (one sub-generation): tree reduction of row minima.

    Sub-generation ``s`` activates the cells whose column is aligned to
    ``2^(s+1)`` and whose partner at stride ``2^s`` is inside the row;
    each active cell takes ``min(d, d*)`` with its partner.  After
    ``ceil(log2 n)`` sub-generations column 0 holds each row's minimum.
    """

    def __init__(self, sub_generation: int, label: str = "gen3"):
        if sub_generation < 0:
            raise ValueError(f"sub_generation must be >= 0, got {sub_generation}")
        self.sub_generation = sub_generation
        self.stride = 1 << sub_generation
        self.label = f"{label}.sub{sub_generation}"

    def active(self, layout: FieldLayout, index: int) -> bool:
        if layout.is_last_row(index):
            return False
        col = layout.col(index)
        return col % (2 * self.stride) == 0 and col + self.stride < layout.n

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return index + self.stride

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star if d_star < d else d


class Gen4FallbackToOwn(Generation):
    """Generations 4/8: replace an INF minimum by the node's own label.

    Only the first column computes: if the row minimum is INF (no foreign
    neighbour / no member candidate), the cell re-reads ``D_N[j]`` -- which
    still holds ``C(j)`` -- realising the "if none then C(i)" clause.
    """

    def __init__(self, label: str = "gen4"):
        self.label = label

    def active(self, layout: FieldLayout, index: int) -> bool:
        return layout.is_first_column(index) and not layout.is_last_row(index)

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return layout.last_row_start + layout.row(index)

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star if d == layout.infinity else d


class Gen5CopyVectorToRowsKeepLast(Generation):
    """Generation 5: like generation 1, but ``D_N`` keeps its value.

    The first column now holds the step-2 result ``T``; it is copied into
    every row of ``D_square`` while the last row retains the saved ``C``
    vector (needed by generations 6 and 8).
    """

    label = "gen5"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return True

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return layout.col(index) * layout.n

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d if layout.is_last_row(index) else d_star


class Gen6MaskNonMembers(Generation):
    """Generation 6: keep only the members' candidates for each super node.

    Cell ``(j, i)`` holds ``T(i)`` (copied in generation 5) and reads
    ``d* = D_N[i] = C(i)``; it keeps its value iff ``C(i) = j`` (node ``i``
    is a member of component ``j``) and ``T(i) != j`` (the candidate is
    non-trivial), otherwise INF.  Row ``j`` then holds step 3's candidate
    set ``{T(i) | C(i) = j, T(i) != j}``.
    """

    label = "gen6"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return layout.is_square(index)

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return layout.last_row_start + layout.col(index)

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        j = layout.row(index)
        return d if (d_star == j and d != j) else layout.infinity


class Gen9DistributeAndArchive(Generation):
    """Generation 9: broadcast T along rows and archive it in ``D_N``.

    ``D_square`` cell ``(j, i)`` reads ``D<j>[0] = T(j)``, so every column
    of the square becomes a copy of T (column 1 is what generation 11
    dereferences); last-row cell ``(n, i)`` reads ``D<i>[0] = T(i)``, so
    ``D_N`` archives T itself.  Since step 4 is ``C <- T``, the first
    column now *is* the new C.
    """

    label = "gen9"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return True

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        if layout.is_last_row(index):
            return layout.col(index) * layout.n
        return layout.row(index) * layout.n

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star


class Gen10PointerJump(Generation):
    """Generation 10 (one of ``ceil(log2 n)`` sub-generations): jumping.

    Only the first column computes; the pointer is *data dependent*
    (``p = d * n`` -- the cell of row ``C(j)``, column 0), realising
    ``C(j) <- C(C(j))`` in a single generation.  These are the paper's
    "extended cells".
    """

    def __init__(self, sub_generation: int):
        if sub_generation < 0:
            raise ValueError(f"sub_generation must be >= 0, got {sub_generation}")
        self.sub_generation = sub_generation
        self.label = f"gen10.sub{sub_generation}"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return layout.is_first_column(index) and not layout.is_last_row(index)

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return d * layout.n

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star


class Gen11ResolvePairs(Generation):
    """Generation 11: ``C(j) <- min(C(j), T(C(j)))``.

    Data-dependent pointer ``p = d * n + 1`` dereferences column 1, which
    has held ``T`` since generation 9; taking the minimum with the own
    value resolves mutual super-node pairs to the smaller index (step 6).
    """

    label = "gen11"

    def active(self, layout: FieldLayout, index: int) -> bool:
        return layout.is_first_column(index) and not layout.is_last_row(index)

    def pointer(self, layout: FieldLayout, index: int, d: int) -> int:
        return d * layout.n + 1

    def data(self, layout: FieldLayout, index: int, d: int, a: int, d_star: int) -> int:
        return d_star if d_star < d else d
