"""Vectorised whole-field execution of the GCA algorithm.

Every generation of :mod:`repro.core.generations` has an equivalent
whole-array formulation; this module implements them with NumPy so large
fields run at array speed (the interpreter touches every cell in Python and
is ~1000x slower).  The two implementations are cross-validated by the
test-suite: after every generation the interpreter's ``D`` must equal the
vectorised ``D`` cell for cell.

The hot path is **fused and allocation-free**: the runner ping-pongs
between two preallocated field buffers (``D_a``/``D_b``).  Broadcast
generations (0/1/5/9) write the whole field into the back buffer and the
buffers swap; masking generations (2/6) and the column-slice generations
(3/4/7/8/10/11) update the front buffer in place.  No generation copies
the full ``(n+1) x n`` field.

The runner can also stop early: every outer iteration is a deterministic
function of the label column ``D[:n, 0]`` alone (generation 1 rebroadcasts
it over the whole field), so an iteration that leaves the labels unchanged
has reached a fixed point and all remaining iterations are no-ops.  With
``early_exit=True`` the runner detects this and stops, recording
``converged_at_iteration`` -- the same early stabilisation that label
propagation algorithms exploit (Liu & Tarjan 2019; Burkhardt 2018).  The
default remains the paper's full ``ceil(log2 n)`` schedule so the
Table 1/2 measurement paths are unchanged.

Besides the data transformation the module can compute, per generation,

* the **active mask** (which cells compute), and
* the **pointer targets** of the active cells,

from which per-generation read congestion follows via ``bincount`` --
giving the Table 1 measurements at sizes the interpreter cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.field import FieldLayout
from repro.core.schedule import ScheduledGeneration, full_schedule
from repro.gca.instrumentation import AccessLog, GenerationStats
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import outer_iterations

GraphLike = Union[AdjacencyMatrix, np.ndarray]


# ----------------------------------------------------------------------
# per-generation vector semantics
# ----------------------------------------------------------------------

def active_mask(sched: ScheduledGeneration, layout: FieldLayout) -> np.ndarray:
    """Boolean ``(n+1, n)`` mask of the cells active in this generation."""
    n = layout.n
    mask = np.zeros((n + 1, n), dtype=bool)
    num = sched.number
    if num in (0, 1, 5, 9):
        mask[:, :] = True
    elif num in (2, 6):
        mask[:n, :] = True
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        cols = np.arange(0, n, 2 * stride)
        cols = cols[cols + stride < n]
        mask[:n, cols] = True
    elif num in (4, 8, 10, 11):
        mask[:n, 0] = True
    else:  # pragma: no cover - schedule only emits 0..11
        raise ValueError(f"unknown generation number {num}")
    return mask


def pointer_targets(
    sched: ScheduledGeneration, D: np.ndarray, layout: FieldLayout
) -> Optional[np.ndarray]:
    """Linear pointer targets of the active cells (row-major order), or
    ``None`` for the read-free generation 0."""
    n = layout.n
    num = sched.number
    rows = np.arange(n + 1)[:, None]
    cols = np.arange(n)[None, :]
    if num == 0:
        return None
    if num in (1, 5):
        targets = np.broadcast_to(cols * n, (n + 1, n))
    elif num in (2,):
        targets = np.broadcast_to(layout.last_row_start + rows, (n + 1, n))
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        targets = rows * n + cols + stride
    elif num in (4, 8):
        targets = np.broadcast_to(layout.last_row_start + rows, (n + 1, n))
    elif num == 6:
        targets = np.broadcast_to(layout.last_row_start + cols, (n + 1, n))
    elif num == 9:
        targets = np.where(rows == n, cols * n, rows * n)
        targets = np.broadcast_to(targets, (n + 1, n))
    elif num == 10:
        targets = D * n
    elif num == 11:
        targets = D * n + 1
    else:  # pragma: no cover
        raise ValueError(f"unknown generation number {num}")
    mask = active_mask(sched, layout)
    return np.asarray(targets)[mask]


def apply_generation(
    sched: ScheduledGeneration,
    D: np.ndarray,
    A: np.ndarray,
    layout: FieldLayout,
) -> np.ndarray:
    """Return the field after executing ``sched`` on ``D``.

    ``D`` has shape ``(n+1, n)`` and is not modified; ``A`` is the ``n x n``
    adjacency matrix.
    """
    n = layout.n
    inf = layout.infinity
    num = sched.number
    new = D.copy()
    if num == 0:
        new[:, :] = np.arange(n + 1)[:, None]
    elif num == 1:
        c = D[:n, 0]
        new[:, :] = c[None, :]
    elif num == 2:
        d_star = D[n, :][:n, None]          # D_N[j] per row j
        keep = (A == 1) & (D[:n, :] != d_star)
        new[:n, :] = np.where(keep, D[:n, :], inf)
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        cols = np.arange(0, n, 2 * stride)
        cols = cols[cols + stride < n]
        new[:n, cols] = np.minimum(D[:n, cols], D[:n, cols + stride])
    elif num in (4, 8):
        c = D[:n, 0]
        new[:n, 0] = np.where(c == inf, D[n, :], c)
    elif num == 5:
        c = D[:n, 0]
        new[:n, :] = c[None, :]
    elif num == 6:
        j_col = np.arange(n)[:, None]
        keep = (D[n, :][None, :] == j_col) & (D[:n, :] != j_col)
        new[:n, :] = np.where(keep, D[:n, :], inf)
    elif num == 9:
        c = D[:n, 0]
        new[:n, :] = c[:, None]
        new[n, :] = c
    elif num == 10:
        c = D[:n, 0]
        new[:n, 0] = c[c]
    elif num == 11:
        c = D[:n, 0]
        new[:n, 0] = np.minimum(c, D[c, 1])
    else:  # pragma: no cover
        raise ValueError(f"unknown generation number {num}")
    return new


# ----------------------------------------------------------------------
# fused kernels: double-buffered, no full-field copies
# ----------------------------------------------------------------------

class FieldWorkspace:
    """Preallocated state for an allocation-free run on one graph.

    Holds the ping-pong field buffers plus the small scratch vectors and
    boolean masks the fused kernels write through, so the generation loop
    performs no ``(n+1) x n`` allocation at all.
    """

    __slots__ = (
        "front", "back", "col", "prev_labels", "mask", "mask2",
        "not_adjacent", "row_init",
    )

    def __init__(self, n: int, A: np.ndarray):
        self.front = np.zeros((n + 1, n), dtype=np.int64)
        self.back = np.empty((n + 1, n), dtype=np.int64)
        self.col = np.empty(n, dtype=np.int64)
        self.prev_labels = np.empty(n, dtype=np.int64)
        self.mask = np.empty((n, n), dtype=bool)
        self.mask2 = np.empty((n, n), dtype=bool)
        self.not_adjacent = A != 1
        self.row_init = np.arange(n + 1, dtype=np.int64)[:, None]


def _reduction_slices(n: int, sub_generation: int):
    """``(write, read)`` column slices of one reduction sub-generation.

    Both column sets are arithmetic progressions, so plain slices express
    them as views -- no fancy-index copies on the reduction ladder.
    """
    stride = 1 << sub_generation
    return slice(0, n - stride, 2 * stride), slice(stride, n, 2 * stride)


def apply_generation_fused(
    sched: ScheduledGeneration,
    cur: np.ndarray,
    other: np.ndarray,
    ws: FieldWorkspace,
    layout: FieldLayout,
) -> np.ndarray:
    """Execute ``sched`` without copying the field.

    ``cur`` holds the field before the generation; ``other`` is the spare
    buffer.  Returns the buffer holding the field afterwards: ``other``
    for the whole-field broadcast generations (the buffers ping-pong),
    ``cur`` for the generations that update in place.
    """
    n = layout.n
    inf = layout.infinity
    num = sched.number
    if num == 0:
        other[:, :] = ws.row_init
        return other
    if num == 1:
        other[:, :] = cur[:n, 0][None, :]
        return other
    if num == 2:
        np.equal(cur[:n, :], cur[n, :, None], out=ws.mask)
        np.logical_or(ws.mask, ws.not_adjacent, out=ws.mask)
        np.copyto(cur[:n, :], inf, where=ws.mask)
        return cur
    if num in (3, 7):
        write, read = _reduction_slices(n, sched.sub_generation)
        np.minimum(cur[:n, write], cur[:n, read], out=cur[:n, write])
        return cur
    if num in (4, 8):
        np.copyto(ws.col, cur[:n, 0])
        cur[:n, 0] = np.where(ws.col == inf, cur[n, :], ws.col)
        return cur
    if num == 5:
        other[:n, :] = cur[:n, 0][None, :]
        other[n, :] = cur[n, :]
        return other
    if num == 6:
        j_col = np.arange(n)[:, None]
        np.not_equal(cur[n, :][None, :], j_col, out=ws.mask)
        np.equal(cur[:n, :], j_col, out=ws.mask2)
        np.logical_or(ws.mask, ws.mask2, out=ws.mask)
        np.copyto(cur[:n, :], inf, where=ws.mask)
        return cur
    if num == 9:
        np.copyto(ws.col, cur[:n, 0])
        other[:n, :] = ws.col[:, None]
        other[n, :] = ws.col
        return other
    if num == 10:
        np.copyto(ws.col, cur[:n, 0])
        cur[:n, 0] = ws.col[ws.col]
        return cur
    if num == 11:
        np.copyto(ws.col, cur[:n, 0])
        cur[:n, 0] = np.minimum(ws.col, cur[ws.col, 1])
        return cur
    raise ValueError(f"unknown generation number {num}")  # pragma: no cover


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

@dataclass
class VectorizedResult:
    """Outcome of a vectorised run.

    ``iterations`` and ``total_generations`` count what actually executed;
    with ``early_exit`` they can fall short of the scheduled
    ``ceil(log2 n)`` iterations, in which case ``converged_at_iteration``
    holds the 0-based index of the first outer iteration that left the
    label column unchanged (``None`` when the full schedule ran).
    """

    labels: np.ndarray
    n: int
    iterations: int
    total_generations: int
    access_log: Optional[AccessLog] = None
    snapshots: List[np.ndarray] = field(default_factory=list)
    converged_at_iteration: Optional[int] = None

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


GenerationCallback = Callable[[ScheduledGeneration, np.ndarray], None]


def run_vectorized(
    graph: GraphLike,
    iterations: Optional[int] = None,
    record_access: bool = False,
    keep_snapshots: bool = False,
    on_generation: Optional[GenerationCallback] = None,
    early_exit: bool = False,
) -> VectorizedResult:
    """Run the GCA algorithm on ``graph`` with whole-array operations.

    Parameters
    ----------
    graph:
        Undirected input graph.
    iterations:
        Outer iterations (default ``ceil(log2 n)``).
    record_access:
        Build an :class:`~repro.gca.instrumentation.AccessLog` with the
        same per-generation statistics the interpreter measures (active
        cells, reads per cell).  Roughly doubles the run time.
    keep_snapshots:
        Keep a copy of ``D`` after every generation (Figure 3 material).
    on_generation:
        Callback ``(scheduled, D_after)`` per generation.  Without
        ``keep_snapshots`` the callback receives a *read-only view* of the
        live buffer, valid only for the duration of the call; enable
        ``keep_snapshots`` to retain per-generation copies.
    early_exit:
        Stop as soon as an outer iteration leaves the label column
        unchanged (a fixed point of the iteration map).  The labels are
        bit-identical to the full run; only the generation count shrinks.
        Off by default so the measurement paths execute the paper's exact
        schedule.
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    layout = FieldLayout(n)
    A = g.matrix.astype(np.int64)
    total_iters = outer_iterations(n) if iterations is None else iterations
    schedule = full_schedule(n, iterations=total_iters)

    ws = FieldWorkspace(n, A)
    cur, other = ws.front, ws.back
    np.copyto(ws.prev_labels, np.arange(n, dtype=np.int64))
    log = AccessLog() if record_access else None
    snapshots: List[np.ndarray] = []

    executed_generations = 0
    executed_iterations = 0
    converged_at: Optional[int] = None
    for sched in schedule:
        if record_access:
            targets = pointer_targets(sched, cur, layout)
            active = int(active_mask(sched, layout).sum())
        result = apply_generation_fused(sched, cur, other, ws, layout)
        if result is other:
            cur, other = other, cur
        executed_generations += 1
        if record_access:
            counts = (
                np.bincount(targets, minlength=layout.size)
                if targets is not None and targets.size
                # opt-in instrumentation path; size-0 sentinel, not a buffer
                else np.zeros(0, dtype=np.int64)  # repro-check: allow[DB101]
            )
            log.record(
                GenerationStats(
                    label=sched.label, active_cells=active, read_counts=counts
                )
            )
        if keep_snapshots:
            # opt-in debugging mode: a per-generation copy is the point
            snap = cur.copy()  # repro-check: allow[DB101]
            snapshots.append(snap)
        if on_generation is not None:
            view = snap.view() if keep_snapshots else cur.view()
            view.setflags(write=False)
            on_generation(sched, view)
        if sched.number == 11:
            executed_iterations += 1
            if early_exit:
                if np.array_equal(cur[:n, 0], ws.prev_labels):
                    converged_at = sched.iteration
                    break
                np.copyto(ws.prev_labels, cur[:n, 0])

    return VectorizedResult(
        labels=cur[:n, 0].copy(),
        n=n,
        iterations=executed_iterations,
        total_generations=executed_generations,
        access_log=log,
        snapshots=snapshots,
        converged_at_iteration=converged_at,
    )


def connected_components_vectorized(
    graph: GraphLike, iterations: Optional[int] = None, early_exit: bool = False
) -> np.ndarray:
    """Convenience wrapper returning only the canonical labels."""
    return run_vectorized(
        graph, iterations=iterations, early_exit=early_exit
    ).labels
