"""Vectorised whole-field execution of the GCA algorithm.

Every generation of :mod:`repro.core.generations` has an equivalent
whole-array formulation; this module implements them with NumPy so large
fields run at array speed (the interpreter touches every cell in Python and
is ~1000x slower).  The two implementations are cross-validated by the
test-suite: after every generation the interpreter's ``D`` must equal the
vectorised ``D`` cell for cell.

Besides the data transformation the module can compute, per generation,

* the **active mask** (which cells compute), and
* the **pointer targets** of the active cells,

from which per-generation read congestion follows via ``bincount`` --
giving the Table 1 measurements at sizes the interpreter cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.field import FieldLayout
from repro.core.schedule import ScheduledGeneration, full_schedule
from repro.gca.instrumentation import AccessLog, GenerationStats
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import outer_iterations

GraphLike = Union[AdjacencyMatrix, np.ndarray]


# ----------------------------------------------------------------------
# per-generation vector semantics
# ----------------------------------------------------------------------

def active_mask(sched: ScheduledGeneration, layout: FieldLayout) -> np.ndarray:
    """Boolean ``(n+1, n)`` mask of the cells active in this generation."""
    n = layout.n
    mask = np.zeros((n + 1, n), dtype=bool)
    num = sched.number
    if num in (0, 1, 5, 9):
        mask[:, :] = True
    elif num in (2, 6):
        mask[:n, :] = True
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        cols = np.arange(0, n, 2 * stride)
        cols = cols[cols + stride < n]
        mask[:n, cols] = True
    elif num in (4, 8, 10, 11):
        mask[:n, 0] = True
    else:  # pragma: no cover - schedule only emits 0..11
        raise ValueError(f"unknown generation number {num}")
    return mask


def pointer_targets(
    sched: ScheduledGeneration, D: np.ndarray, layout: FieldLayout
) -> Optional[np.ndarray]:
    """Linear pointer targets of the active cells (row-major order), or
    ``None`` for the read-free generation 0."""
    n = layout.n
    num = sched.number
    rows = np.arange(n + 1)[:, None]
    cols = np.arange(n)[None, :]
    if num == 0:
        return None
    if num in (1, 5):
        targets = np.broadcast_to(cols * n, (n + 1, n))
    elif num in (2,):
        targets = np.broadcast_to(layout.last_row_start + rows, (n + 1, n))
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        targets = rows * n + cols + stride
    elif num in (4, 8):
        targets = np.broadcast_to(layout.last_row_start + rows, (n + 1, n))
    elif num == 6:
        targets = np.broadcast_to(layout.last_row_start + cols, (n + 1, n))
    elif num == 9:
        targets = np.where(rows == n, cols * n, rows * n)
        targets = np.broadcast_to(targets, (n + 1, n))
    elif num == 10:
        targets = D * n
    elif num == 11:
        targets = D * n + 1
    else:  # pragma: no cover
        raise ValueError(f"unknown generation number {num}")
    mask = active_mask(sched, layout)
    return np.asarray(targets)[mask]


def apply_generation(
    sched: ScheduledGeneration,
    D: np.ndarray,
    A: np.ndarray,
    layout: FieldLayout,
) -> np.ndarray:
    """Return the field after executing ``sched`` on ``D``.

    ``D`` has shape ``(n+1, n)`` and is not modified; ``A`` is the ``n x n``
    adjacency matrix.
    """
    n = layout.n
    inf = layout.infinity
    num = sched.number
    new = D.copy()
    if num == 0:
        new[:, :] = np.arange(n + 1)[:, None]
    elif num == 1:
        c = D[:n, 0]
        new[:, :] = c[None, :]
    elif num == 2:
        d_star = D[n, :][:n, None]          # D_N[j] per row j
        keep = (A == 1) & (D[:n, :] != d_star)
        new[:n, :] = np.where(keep, D[:n, :], inf)
    elif num in (3, 7):
        stride = 1 << sched.sub_generation
        cols = np.arange(0, n, 2 * stride)
        cols = cols[cols + stride < n]
        new[:n, cols] = np.minimum(D[:n, cols], D[:n, cols + stride])
    elif num in (4, 8):
        c = D[:n, 0]
        new[:n, 0] = np.where(c == inf, D[n, :], c)
    elif num == 5:
        c = D[:n, 0]
        new[:n, :] = c[None, :]
    elif num == 6:
        j_col = np.arange(n)[:, None]
        keep = (D[n, :][None, :] == j_col) & (D[:n, :] != j_col)
        new[:n, :] = np.where(keep, D[:n, :], inf)
    elif num == 9:
        c = D[:n, 0]
        new[:n, :] = c[:, None]
        new[n, :] = c
    elif num == 10:
        c = D[:n, 0]
        new[:n, 0] = c[c]
    elif num == 11:
        c = D[:n, 0]
        new[:n, 0] = np.minimum(c, D[c, 1])
    else:  # pragma: no cover
        raise ValueError(f"unknown generation number {num}")
    return new


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

@dataclass
class VectorizedResult:
    """Outcome of a vectorised run."""

    labels: np.ndarray
    n: int
    iterations: int
    total_generations: int
    access_log: Optional[AccessLog] = None
    snapshots: List[np.ndarray] = field(default_factory=list)

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


GenerationCallback = Callable[[ScheduledGeneration, np.ndarray], None]


def run_vectorized(
    graph: GraphLike,
    iterations: Optional[int] = None,
    record_access: bool = False,
    keep_snapshots: bool = False,
    on_generation: Optional[GenerationCallback] = None,
) -> VectorizedResult:
    """Run the GCA algorithm on ``graph`` with whole-array operations.

    Parameters
    ----------
    graph:
        Undirected input graph.
    iterations:
        Outer iterations (default ``ceil(log2 n)``).
    record_access:
        Build an :class:`~repro.gca.instrumentation.AccessLog` with the
        same per-generation statistics the interpreter measures (active
        cells, reads per cell).  Roughly doubles the run time.
    keep_snapshots:
        Keep a copy of ``D`` after every generation (Figure 3 material).
    on_generation:
        Callback ``(scheduled, D_after)`` per generation.
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    layout = FieldLayout(n)
    A = g.matrix.astype(np.int64)
    total_iters = outer_iterations(n) if iterations is None else iterations
    schedule = full_schedule(n, iterations=total_iters)

    D = np.zeros((n + 1, n), dtype=np.int64)
    log = AccessLog() if record_access else None
    snapshots: List[np.ndarray] = []

    for sched in schedule:
        if record_access:
            targets = pointer_targets(sched, D, layout)
            active = int(active_mask(sched, layout).sum())
        D = apply_generation(sched, D, A, layout)
        if record_access:
            reads: dict = {}
            if targets is not None and targets.size:
                counts = np.bincount(targets, minlength=layout.size)
                nz = np.flatnonzero(counts)
                reads = {int(k): int(counts[k]) for k in nz}
            log.record(
                GenerationStats(
                    label=sched.label, active_cells=active, reads_per_cell=reads
                )
            )
        if keep_snapshots:
            snapshots.append(D.copy())
        if on_generation is not None:
            on_generation(sched, D.copy())

    return VectorizedResult(
        labels=D[:n, 0].copy(),
        n=n,
        iterations=total_iters,
        total_generations=len(schedule),
        access_log=log,
        snapshots=snapshots,
    )


def connected_components_vectorized(
    graph: GraphLike, iterations: Optional[int] = None
) -> np.ndarray:
    """Convenience wrapper returning only the canonical labels."""
    return run_vectorized(graph, iterations=iterations).labels
