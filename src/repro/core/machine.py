"""The cell-accurate GCA interpreter for the connected-components algorithm.

This solver runs the generation rules of :mod:`repro.core.generations` on
the generic :class:`~repro.gca.automaton.GlobalCellularAutomaton` engine,
cell by cell, with full access instrumentation.  It is the measurement
instrument behind the Table 1 / Figure 3 reproductions; for large inputs
use :mod:`repro.core.vectorized`, which computes the same fields (verified
by cross-validation tests) at array speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.field import CellField, FieldLayout
from repro.core.generations import Generation
from repro.core.state_machine import HirschbergStateMachine
from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import KEEP, CellUpdate, CellView, Neighbor
from repro.gca.instrumentation import AccessLog, GenerationStats
from repro.gca.rules import Rule
from repro.graphs.adjacency import AdjacencyMatrix

GraphLike = Union[AdjacencyMatrix, np.ndarray]


class GenerationRuleAdapter(Rule):
    """Adapts a scalar :class:`~repro.core.generations.Generation` to the
    generic engine's :class:`~repro.gca.rules.Rule` interface.

    Active cells always perform their global read (when the generation
    reads at all) -- like the synthesized hardware, where the neighbour
    multiplexer is wired regardless of whether the data operation ends up
    selecting the own value -- so congestion measurements reflect the
    hardware access pattern, not a software short-circuit.
    """

    def __init__(self, generation: Generation, layout: FieldLayout):
        self._generation = generation
        self._layout = layout

    @property
    def generation(self) -> Generation:
        return self._generation

    def is_active(self, cell: CellView) -> bool:
        return self._generation.active(self._layout, cell.index)

    def pointer(self, cell: CellView) -> int:
        return self._generation.pointer(self._layout, cell.index, cell.data)

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        new_data = self._generation.data(
            self._layout, cell.index, cell.data, cell.aux["a"], neighbor.data
        )
        # Store the pointer that was actually used, mirroring the paper's
        # "the pointer is computed in the current generation" semantics.
        return CellUpdate(data=new_data, pointer=neighbor.index)

    def step(self, cell: CellView, read) -> CellUpdate:
        if not self.is_active(cell):
            return KEEP
        if not self._generation.reads:
            new_data = self._generation.data(
                self._layout, cell.index, cell.data, cell.aux["a"], cell.data
            )
            return CellUpdate(data=new_data)
        return self.update(cell, read(self.pointer(cell)))


@dataclass
class InterpreterResult:
    """Outcome of an interpreter run."""

    labels: np.ndarray
    n: int
    iterations: int
    access_log: AccessLog
    generation_stats: List[GenerationStats] = field(default_factory=list)
    #: Set on sanitized runs: the
    #: :class:`repro.check.sanitizer.SanitizerReport` of the write-barrier
    #: engine.  ``None`` for plain runs.
    sanitizer: Optional[object] = None

    @property
    def total_generations(self) -> int:
        """Generations executed (the measured side of the paper's
        ``1 + log n (3 log n + 8)`` bound)."""
        return len(self.generation_stats)

    @property
    def component_count(self) -> int:
        return int(np.unique(self.labels).size)


GenerationCallback = Callable[[str, "GCAConnectedComponents"], None]


class GCAConnectedComponents:
    """The instrumented GCA connected-components machine.

    Parameters
    ----------
    graph:
        Undirected input graph.
    iterations:
        Outer iterations (default ``ceil(log2 n)``).
    record_access:
        Keep the per-generation access statistics (needed for Table 1).
    engine_factory:
        Callable building the underlying engine (same signature as
        :class:`~repro.gca.automaton.GlobalCellularAutomaton`); pass
        :class:`repro.check.sanitizer.SanitizedAutomaton` to run with
        the CROW write barrier armed.

    Attributes
    ----------
    field:
        The :class:`~repro.core.field.CellField` layout wrapper (kept in
        sync with the engine after every generation).
    engine:
        The underlying :class:`~repro.gca.automaton.GlobalCellularAutomaton`.
    """

    def __init__(
        self,
        graph: GraphLike,
        iterations: Optional[int] = None,
        record_access: bool = True,
        engine_factory: Optional[Callable[..., GlobalCellularAutomaton]] = None,
    ):
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        self.field = CellField(g)
        self.layout = self.field.layout
        self.state_machine = HirschbergStateMachine(g.n, iterations=iterations)
        factory = engine_factory or GlobalCellularAutomaton
        self.engine = factory(
            size=self.layout.size,
            initial_data=0,
            initial_pointer=0,
            aux={"a": self.field.A_plane},
            hands=1,
            record_access=record_access,
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def D(self) -> np.ndarray:
        """Current data matrix, shape ``(n+1, n)``."""
        return self.engine.data.reshape(self.layout.rows, self.layout.cols)

    @property
    def P(self) -> np.ndarray:
        """Current pointer matrix, shape ``(n+1, n)``."""
        return self.engine.pointers.reshape(self.layout.rows, self.layout.cols)

    @property
    def labels(self) -> np.ndarray:
        """The C vector: first column of ``D_square``."""
        return self.D[: self.n, 0].copy()

    # ------------------------------------------------------------------
    def step_generation(self) -> GenerationStats:
        """Execute the next scheduled generation; returns its statistics."""
        scheduled = self.state_machine.advance()
        adapter = GenerationRuleAdapter(scheduled.rule, self.layout)
        stats = self.engine.step(adapter, label=scheduled.label)
        return stats

    def run(
        self, on_generation: Optional[GenerationCallback] = None
    ) -> InterpreterResult:
        """Run the full schedule and return the result."""
        all_stats: List[GenerationStats] = []
        while not self.state_machine.done:
            stats = self.step_generation()
            all_stats.append(stats)
            if on_generation is not None:
                on_generation(stats.label, self)
        self.field.load_flat(
            data=self.engine.data, pointers=self.engine.pointers
        )
        return InterpreterResult(
            labels=self.labels,
            n=self.n,
            iterations=self.state_machine.iterations,
            access_log=self.engine.access_log,
            generation_stats=all_stats,
            sanitizer=getattr(self.engine, "sanitizer_report", None),
        )


def connected_components_interpreter(
    graph: GraphLike, iterations: Optional[int] = None
) -> InterpreterResult:
    """One-shot convenience: build the machine, run it, return the result."""
    return GCAConnectedComponents(graph, iterations=iterations).run()
