"""The top-level convenience API of the library.

Most users want one call::

    from repro import gca_connected_components
    result = gca_connected_components(graph)
    result.labels          # node -> component representative (minimum index)
    result.components()    # the components as node lists

``method`` selects the execution engine:

* ``"vectorized"`` (default) -- whole-array NumPy execution, fast;
* ``"interpreter"`` -- the cell-accurate engine with full congestion
  instrumentation (slow; use for measurement, small ``n``);
* ``"reference"`` -- the plain data-parallel Listing-1 program (no GCA
  field; the specification the others are validated against);
* ``"pram"`` -- the Listing-1 program on the access-checked PRAM simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.hirschberg.reference import hirschberg_reference

GraphLike = Union[AdjacencyMatrix, np.ndarray]

_METHODS = ("vectorized", "interpreter", "reference", "pram")


@dataclass
class ComponentsResult:
    """Result of a connected-components run.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the representative (minimum node index) of node
        ``i``'s component -- the paper's super-node convention.
    method:
        The engine that produced the result.
    detail:
        The engine-specific result object (``VectorizedResult``,
        ``InterpreterResult``, ``ReferenceResult`` or ``PRAMRunResult``)
        for callers that need instrumentation data.
    """

    labels: np.ndarray
    method: str
    detail: object

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.labels.shape[0])

    @property
    def component_count(self) -> int:
        """Number of connected components."""
        return int(np.unique(self.labels).size)

    def components(self) -> List[List[int]]:
        """The components as sorted node lists, ordered by representative."""
        groups: dict = {}
        for node, label in enumerate(self.labels.tolist()):
            groups.setdefault(label, []).append(node)
        return [sorted(groups[k]) for k in sorted(groups)]

    def same_component(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` are connected."""
        return bool(self.labels[a] == self.labels[b])


def gca_connected_components(
    graph: GraphLike,
    method: str = "vectorized",
    iterations: Optional[int] = None,
    early_exit: bool = False,
) -> ComponentsResult:
    """Compute the connected components of ``graph`` with the GCA algorithm.

    Parameters
    ----------
    graph:
        An :class:`~repro.graphs.adjacency.AdjacencyMatrix` or a square
        symmetric 0/1 array.
    method:
        One of ``"vectorized"``, ``"interpreter"``, ``"reference"``,
        ``"pram"`` (see module docstring).
    iterations:
        Override the outer-iteration count (default ``ceil(log2 n)``).
    early_exit:
        Stop the vectorised engine at the label fixed point instead of
        running the full schedule (``method="vectorized"`` only; the
        labels are identical either way).

    Returns
    -------
    ComponentsResult
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if early_exit and method != "vectorized":
        raise ValueError(
            f"early_exit is only supported by the vectorized engine, "
            f"not {method!r}"
        )
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    if method == "vectorized":
        detail = run_vectorized(g, iterations=iterations, early_exit=early_exit)
        labels = detail.labels
    elif method == "interpreter":
        detail = connected_components_interpreter(g, iterations=iterations)
        labels = detail.labels
    elif method == "reference":
        detail = hirschberg_reference(g, iterations=iterations)
        labels = detail.labels
    else:  # pram
        detail = hirschberg_on_pram(g, iterations=iterations)
        labels = detail.labels
    return ComponentsResult(labels=labels, method=method, detail=detail)
