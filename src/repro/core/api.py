"""The top-level convenience API of the library.

Most users want one call::

    from repro import connected_components
    result = connected_components(graph)     # engine="auto"
    result.labels          # node -> component representative (minimum index)
    result.components()    # the components as node lists

``engine`` selects the execution engine:

* ``"auto"`` (default for :func:`connected_components`) -- pick the
  cheapest feasible engine from the workload shape via the measured cost
  model in :mod:`repro.core.dispatch`;
* ``"vectorized"`` -- whole-array NumPy execution over the dense field;
* ``"batched"`` -- the stacked batched field (one graph here; shines on
  many graphs via :func:`repro.core.batched.connected_components_batch`);
* ``"edgelist"`` -- the work-efficient ``O((n + m) log n)`` sparse
  variant;
* ``"contracting"`` -- the contracting sparse variant: every outer
  iteration relabels supervertices and drops settled edges, so iteration
  ``t`` runs on the surviving ``(n_t, m_t)`` only (fastest at large
  sparse scale);
* ``"parallel"`` -- the chunk-parallel Liu--Tarjan/FastSV engine:
  synchronous hook/combine/jump label-propagation rounds whose phases
  fan out across a pre-forked shared-memory worker pool (serial through
  the same kernels when no workers are available); ``engine="auto"``
  routes here only when the per-round scatter work amortises the
  measured barrier cost on a multi-core host;
* ``"sharded"`` -- the out-of-core engine: the edge list is partitioned
  into disk-backed shards, each solved by the contracting engine under a
  bounded memory budget, and the per-shard label frontiers merged with a
  log-step label-propagation pass (capacity bounded by disk, not RAM;
  ``engine="auto"`` routes here when the estimated working set exceeds
  the host's available memory);
* ``"interpreter"`` -- the cell-accurate engine with full congestion
  instrumentation (slow; use for measurement, small ``n``);
* ``"reference"`` -- the plain data-parallel Listing-1 program (no GCA
  field; the specification the others are validated against);
* ``"pram"`` -- the Listing-1 program on the access-checked PRAM simulator.

:func:`gca_connected_components` is the historical entry point; its
``method=`` is the same selector (default ``"vectorized"``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.dispatch import (
    DEFAULT_COST_MODEL,
    CostModel,
    choose_engine,
    probe_available_memory,
)
from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import EdgeListGraph, connected_components_edgelist
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.hirschberg.reference import hirschberg_reference

GraphLike = Union[AdjacencyMatrix, np.ndarray, EdgeListGraph]

_METHODS = (
    "auto", "vectorized", "batched", "edgelist", "contracting",
    "parallel", "sharded", "interpreter", "reference", "pram",
)

#: Engines that need the dense adjacency field.
_DENSE_METHODS = ("vectorized", "batched", "interpreter", "reference", "pram")

#: Largest ``n`` for which an :class:`EdgeListGraph` input is silently
#: densified when a dense engine is requested explicitly.
_DENSE_CONVERT_LIMIT = 8192


@dataclass
class ComponentsResult:
    """Result of a connected-components run.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the representative (minimum node index) of node
        ``i``'s component -- the paper's super-node convention.
    method:
        The engine that produced the result.
    detail:
        The engine-specific result object (``VectorizedResult``,
        ``InterpreterResult``, ``ReferenceResult``, ``PRAMRunResult``,
        ``EdgeListResult``, ``ContractingResult``, ``ParallelResult``,
        ``ShardedResult`` or ``BatchedResult``) for callers that need
        instrumentation data.
    requested_method:
        What the caller asked for; differs from ``method`` only for
        ``"auto"``, where ``method`` records the dispatched engine.
    """

    labels: np.ndarray
    method: str
    detail: object
    requested_method: Optional[str] = None

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.labels.shape[0])

    @property
    def component_count(self) -> int:
        """Number of connected components."""
        return int(np.unique(self.labels).size)

    def components(self) -> List[List[int]]:
        """The components as sorted node lists, ordered by representative."""
        groups: dict = {}
        for node, label in enumerate(self.labels.tolist()):
            groups.setdefault(label, []).append(node)
        return [sorted(groups[k]) for k in sorted(groups)]

    def same_component(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` are connected."""
        return bool(self.labels[a] == self.labels[b])


def _to_adjacency(graph: GraphLike) -> AdjacencyMatrix:
    """Densify for the field engines (guarded for edge-list inputs)."""
    if isinstance(graph, AdjacencyMatrix):
        return graph
    if isinstance(graph, EdgeListGraph):
        if graph.n > _DENSE_CONVERT_LIMIT:
            raise ValueError(
                f"cannot densify an EdgeListGraph with n={graph.n} "
                f"(> {_DENSE_CONVERT_LIMIT}) for a dense engine; use "
                f"engine='edgelist', 'contracting' or 'auto'"
            )
        matrix = np.zeros((graph.n, graph.n), dtype=np.int64)
        matrix[graph.src, graph.dst] = 1
        return AdjacencyMatrix(matrix)
    return AdjacencyMatrix(np.asarray(graph))


def _to_edge_list(graph: GraphLike) -> EdgeListGraph:
    if isinstance(graph, EdgeListGraph):
        return graph
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    return EdgeListGraph.from_adjacency(g)


#: Lazily probed cost model for ``engine="auto"``: the shipped defaults
#: with the memory budget replaced by the host's available memory
#: (probed once per process; pass ``cost_model=`` to override).
_PROBED_MODEL: Optional[CostModel] = None


def _probed_cost_model() -> CostModel:
    global _PROBED_MODEL
    if _PROBED_MODEL is None:
        import os
        from dataclasses import replace

        _PROBED_MODEL = replace(
            DEFAULT_COST_MODEL,
            memory_budget=float(probe_available_memory()),
            parallel_workers=float(os.cpu_count() or 1),
        )
    return _PROBED_MODEL


#: Process-global worker pool for ``engine="parallel"``: forked once on
#: first use (keyed by worker count; a different request replaces it),
#: reused by every later parallel solve, torn down by the executor's
#: ``atexit`` hook.  ``None`` entries never exist -- 1-worker requests
#: run inline and skip the pool entirely.
_KERNEL_POOL: Optional[tuple] = None
_KERNEL_POOL_LOCK = threading.Lock()


def _kernel_pool(workers: int):
    global _KERNEL_POOL
    with _KERNEL_POOL_LOCK:
        if _KERNEL_POOL is not None and _KERNEL_POOL[0] == workers:
            return _KERNEL_POOL[1]
        from repro.serve.executor import PoolExecutor

        if _KERNEL_POOL is not None:
            _KERNEL_POOL[1].shutdown()
        pool = PoolExecutor(workers=workers, calibrate=False).start()
        _KERNEL_POOL = (workers, pool)
        return pool


def _graph_shape(graph: GraphLike):
    """Cheap ``(n, m)`` for the dispatcher, any input kind."""
    if isinstance(graph, EdgeListGraph):
        return graph.n, graph.edge_count
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    return g.n, g.edge_count


def connected_components(
    graph: GraphLike,
    engine: str = "auto",
    iterations: Optional[int] = None,
    early_exit: bool = False,
    cost_model: Optional[CostModel] = None,
    sanitize: bool = False,
    shards: Optional[int] = None,
    memory_budget: Optional[int] = None,
    variant: Optional[str] = None,
    kernel_workers: Optional[int] = None,
) -> ComponentsResult:
    """Compute the connected components of ``graph``.

    Parameters
    ----------
    graph:
        An :class:`~repro.graphs.adjacency.AdjacencyMatrix`, a square
        symmetric 0/1 array, or a sparse
        :class:`~repro.hirschberg.edgelist.EdgeListGraph`.
    engine:
        One of ``"auto"``, ``"vectorized"``, ``"batched"``,
        ``"edgelist"``, ``"contracting"``, ``"interpreter"``,
        ``"reference"``, ``"pram"`` (see module docstring).  ``"auto"``
        dispatches on ``(n, m)`` via
        :func:`repro.core.dispatch.choose_engine`.
    iterations:
        Override the outer-iteration count (default ``ceil(log2 n)``;
        for the contracting engine this caps the contraction levels).
    early_exit:
        Stop at the label fixed point instead of running the full
        schedule.  Supported by the vectorised engine only; with
        ``engine="auto"`` this forces the vectorised engine.
    cost_model:
        Override the measured :class:`~repro.core.dispatch.CostModel`
        used by ``"auto"`` (e.g. one from
        :func:`repro.core.dispatch.calibrate`).  When omitted, ``"auto"``
        uses the shipped constants with the memory budget set from a
        live probe of the host's available memory, so workloads whose
        working set exceeds what this machine can hold route to the
        sharded out-of-core engine.
    shards, memory_budget:
        Tuning knobs for the sharded engine (shard count override and
        resident byte budget); ignored by every other engine.  See
        :func:`repro.hirschberg.sharded.connected_components_sharded`.
    variant, kernel_workers:
        Tuning knobs for the parallel engine: the update rule
        (``"sv"``, ``"fastsv"`` (default), ``"stochastic"``) and how
        many pool workers to fan the rounds out on (default: the probed
        CPU count when ``"auto"`` dispatched here, else inline).
        ``kernel_workers=1`` forces the inline serial-kernel path;
        ignored by every other engine.  See
        :func:`repro.hirschberg.parallel.connected_components_parallel`.
    sanitize:
        Run under the CROW write-barrier engine
        (:class:`repro.check.sanitizer.SanitizedAutomaton`): every
        cross-cell write raises at the offending store and the read
        accounting is independently cross-checked.  Implies the
        interpreter engine (only ``engine="auto"`` or
        ``engine="interpreter"`` is accepted); slow -- use for
        validation at small ``n``.

    Returns
    -------
    ComponentsResult
    """
    if engine not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {engine!r}")
    requested = engine
    if sanitize:
        if engine not in ("auto", "interpreter"):
            raise ValueError(
                "sanitize=True runs on the write-barrier interpreter; "
                f"engine must be 'auto' or 'interpreter', got {engine!r}"
            )
        engine = "interpreter"
    n, m = _graph_shape(graph)
    if n == 0:
        # The empty graph has no components; every engine agrees trivially
        # and none of the field machinery needs to be built.
        return ComponentsResult(
            labels=np.empty(0, dtype=np.int64),
            method="vectorized" if engine == "auto" else engine,
            detail=None,
            requested_method=requested,
        )
    if engine == "auto":
        if early_exit:
            engine = "vectorized"
        else:
            model = cost_model if cost_model is not None else _probed_cost_model()
            engine = choose_engine(n, m, batch_size=1, model=model)
            if engine == "batched":  # never dispatched for one graph
                engine = "vectorized"
    if early_exit and engine != "vectorized":
        raise ValueError(
            f"early_exit is only supported by the vectorized engine, "
            f"not {engine!r}"
        )

    if engine == "vectorized":
        detail = run_vectorized(
            _to_adjacency(graph), iterations=iterations, early_exit=early_exit
        )
        labels = detail.labels
    elif engine == "batched":
        from repro.core.batched import BatchedGCA

        detail = BatchedGCA([_to_adjacency(graph)], iterations=iterations).run()
        labels = detail.labels[0]
    elif engine == "edgelist":
        detail = connected_components_edgelist(
            _to_edge_list(graph), iterations=iterations
        )
        labels = detail.labels
    elif engine == "contracting":
        detail = connected_components_contracting(
            _to_edge_list(graph), max_levels=iterations
        )
        labels = detail.labels
    elif engine == "parallel":
        from repro.hirschberg.parallel import connected_components_parallel

        if kernel_workers is not None and kernel_workers < 1:
            raise ValueError(
                f"kernel_workers must be >= 1, got {kernel_workers}"
            )
        workers = kernel_workers
        if workers is None:
            # auto-dispatch landed here because the probed worker count
            # amortises the barriers -- honour it; an explicit
            # engine="parallel" without kernel_workers stays inline.
            if requested == "auto":
                model = cost_model if cost_model is not None else _probed_cost_model()
                workers = max(1, int(model.parallel_workers))
            else:
                workers = 1
        detail = connected_components_parallel(
            _to_edge_list(graph),
            variant=variant if variant is not None else "fastsv",
            pool=_kernel_pool(workers) if workers > 1 else None,
            max_rounds=iterations,
        )
        labels = detail.labels
    elif engine == "sharded":
        if iterations is not None:
            raise ValueError(
                "the sharded engine does not support an iterations "
                "override (its merge runs to the fixed point)"
            )
        from repro.hirschberg.sharded import connected_components_sharded

        detail = connected_components_sharded(
            _to_edge_list(graph), shards=shards, memory_budget=memory_budget
        )
        labels = detail.labels
    elif engine == "interpreter":
        if sanitize:
            from repro.check.sanitizer import run_sanitized

            detail = run_sanitized(_to_adjacency(graph), iterations=iterations)
        else:
            detail = connected_components_interpreter(
                _to_adjacency(graph), iterations=iterations
            )
        labels = detail.labels
    elif engine == "reference":
        detail = hirschberg_reference(_to_adjacency(graph), iterations=iterations)
        labels = detail.labels
    else:  # pram
        detail = hirschberg_on_pram(_to_adjacency(graph), iterations=iterations)
        labels = detail.labels
    return ComponentsResult(
        labels=labels,
        method=engine,
        detail=detail,
        requested_method=requested,
    )


def gca_connected_components(
    graph: GraphLike,
    method: str = "vectorized",
    iterations: Optional[int] = None,
    early_exit: bool = False,
) -> ComponentsResult:
    """Compute the connected components of ``graph`` with the GCA algorithm.

    The historical entry point; identical to :func:`connected_components`
    with ``engine=method`` (default ``"vectorized"`` rather than
    ``"auto"``).
    """
    return connected_components(
        graph, engine=method, iterations=iterations, early_exit=early_exit
    )
