"""The generation schedule: which rule runs when (Tables 1 and 2).

The six steps of Hirschberg's algorithm expand into 12 numbered GCA
generations; generations 3, 7 and 10 consist of ``ceil(log2 n)``
sub-generations each.  Generation 0 runs once; generations 1-11 repeat in
every outer iteration.  This module builds the concrete, labelled schedule
for a given ``n`` and exposes the step <-> generation correspondence the
Table 2 bench reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.generations import (
    Gen0Initialise,
    Gen1CopyVectorToRows,
    Gen2MaskNonNeighbors,
    Gen3ReduceMin,
    Gen4FallbackToOwn,
    Gen5CopyVectorToRowsKeepLast,
    Gen6MaskNonMembers,
    Gen9DistributeAndArchive,
    Gen10PointerJump,
    Gen11ResolvePairs,
    Generation,
)
from repro.util.intmath import (
    jump_iterations,
    outer_iterations,
    reduction_subgenerations,
)
from repro.util.validation import check_positive

#: Hirschberg step implemented by each numbered generation (paper, Sec. 3).
STEP_OF_GENERATION: Dict[int, int] = {
    0: 1,
    1: 2, 2: 2, 3: 2, 4: 2,
    5: 3, 6: 3, 7: 3, 8: 3,
    9: 4,
    10: 5,
    11: 6,
}


@dataclass(frozen=True)
class ScheduledGeneration:
    """One entry of the concrete schedule."""

    iteration: int          # outer iteration index; -1 for generation 0
    number: int             # the paper's generation number 0..11
    sub_generation: int     # sub-generation index within 3/7/10, else 0
    rule: Generation

    @property
    def step(self) -> int:
        """The Hirschberg step (1..6) this generation belongs to."""
        return STEP_OF_GENERATION[self.number]

    @property
    def label(self) -> str:
        """Label like ``"it1.gen3.sub2"`` (iteration omitted for gen 0)."""
        if self.number == 0:
            return "gen0"
        base = f"it{self.iteration}.gen{self.number}"
        if self.number in (3, 7, 10):
            return f"{base}.sub{self.sub_generation}"
        return base


def iteration_generations(n: int, iteration: int) -> List[ScheduledGeneration]:
    """The schedule of one outer iteration (generations 1..11)."""
    check_positive("n", n)
    subgens = reduction_subgenerations(n)
    jumps = jump_iterations(n)
    out: List[ScheduledGeneration] = []

    def add(number: int, rule: Generation, sub: int = 0) -> None:
        out.append(
            ScheduledGeneration(
                iteration=iteration, number=number, sub_generation=sub, rule=rule
            )
        )

    add(1, Gen1CopyVectorToRows())
    add(2, Gen2MaskNonNeighbors())
    for s in range(subgens):
        add(3, Gen3ReduceMin(s, label="gen3"), sub=s)
    add(4, Gen4FallbackToOwn(label="gen4"))
    add(5, Gen5CopyVectorToRowsKeepLast())
    add(6, Gen6MaskNonMembers())
    for s in range(subgens):
        add(7, Gen3ReduceMin(s, label="gen7"), sub=s)
    add(8, Gen4FallbackToOwn(label="gen8"))
    add(9, Gen9DistributeAndArchive())
    for s in range(jumps):
        add(10, Gen10PointerJump(s), sub=s)
    add(11, Gen11ResolvePairs())
    return out


def full_schedule(n: int, iterations: int = None) -> List[ScheduledGeneration]:
    """The complete schedule: generation 0 plus ``iterations`` outer
    iterations (default ``ceil(log2 n)``)."""
    check_positive("n", n)
    total_iters = outer_iterations(n) if iterations is None else iterations
    if total_iters < 0:
        raise ValueError(f"iterations must be >= 0, got {total_iters}")
    schedule = [
        ScheduledGeneration(
            iteration=-1, number=0, sub_generation=0, rule=Gen0Initialise()
        )
    ]
    for it in range(total_iters):
        schedule.extend(iteration_generations(n, it))
    return schedule


# ----------------------------------------------------------------------
# closed-form generation counts (Table 2 & the total bound)
# ----------------------------------------------------------------------

def generations_per_step(n: int) -> Dict[int, int]:
    """Table 2: generations each Hirschberg step takes (per iteration;
    step 1 = the one-off initialisation generation).

    ======  =====================
    step    generations
    ======  =====================
    1       1
    2       1 + log(n) + 1 + 1
    3       1 + log(n) + 1 + 1
    4       1
    5       log(n)
    6       1
    ======  =====================
    """
    check_positive("n", n)
    log = reduction_subgenerations(n)
    jumps = jump_iterations(n)
    return {1: 1, 2: 3 + log, 3: 3 + log, 4: 1, 5: jumps, 6: 1}


def generations_per_iteration(n: int) -> int:
    """Generations in one outer iteration: ``3 log(n) + 8``."""
    per_step = generations_per_step(n)
    return sum(count for step, count in per_step.items() if step != 1)


def total_generations(n: int, iterations: int = None) -> int:
    """The paper's total bound ``1 + log(n) * (3 log(n) + 8)``.

    With ``ceil(log2 n)`` substituted for every ``log(n)``, and the actual
    iteration count if ``iterations`` is given.
    """
    check_positive("n", n)
    total_iters = outer_iterations(n) if iterations is None else iterations
    return 1 + total_iters * generations_per_iteration(n)
