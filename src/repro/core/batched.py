"""Batched whole-field execution: many graphs per NumPy dispatch.

The GCA's promise is that all ``n(n+1)`` cells compute simultaneously;
the throughput unit of a production deployment is *many graphs*.  This
module stacks ``B`` same-size graphs into one ``(B, n+1, n)`` field and
executes every generation as a single whole-batch NumPy operation, so the
Python dispatch overhead of the 12-generation schedule is paid once per
generation for the whole batch instead of once per graph.

Convergence is tracked per graph: an outer iteration that leaves a
graph's label column ``D[g, :n, 0]`` unchanged has reached that graph's
fixed point (the iteration map is a deterministic function of the label
column alone -- see :mod:`repro.core.vectorized`).  Converged graphs
retire from the batch -- their labels are written to the output and the
remaining graphs are compacted to a contiguous prefix -- so a batch's
cost tracks its stragglers, not its size times the worst case.

Two entry points:

* :class:`BatchedGCA` -- the engine for one bucket of same-size graphs;
* :func:`connected_components_batch` -- the mixed-size convenience API
  that buckets inputs by ``n`` and reassembles the labels in input order.

The per-generation kernels mirror :func:`repro.core.vectorized.apply_generation`
with a leading batch axis; the test-suite cross-validates the three
engines (interpreter, vectorised, batched) against each other and the
union-find oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.schedule import generations_per_iteration
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import (
    jump_iterations,
    outer_iterations,
    reduction_subgenerations,
)
from repro.util.sentinels import infinity_for

GraphLike = Union[AdjacencyMatrix, np.ndarray]


def _as_matrix(graph: GraphLike) -> np.ndarray:
    if isinstance(graph, AdjacencyMatrix):
        return graph.matrix
    return AdjacencyMatrix(np.asarray(graph)).matrix


@dataclass
class BatchedResult:
    """Outcome of a batched run over ``B`` same-size graphs.

    Attributes
    ----------
    labels:
        ``(B, n)`` -- canonical labels per graph, in input order.
    n:
        Graph size shared by the batch.
    batch_size:
        Number of graphs ``B``.
    iterations:
        Scheduled outer iterations (``ceil(log2 n)`` unless overridden).
    iterations_run:
        ``(B,)`` -- outer iterations each graph actually executed.
    converged_at_iteration:
        ``(B,)`` -- 0-based index of the first iteration that left the
        graph's labels unchanged, or ``-1`` if it ran the full schedule.
    """

    labels: np.ndarray
    n: int
    batch_size: int
    iterations: int
    iterations_run: np.ndarray
    converged_at_iteration: np.ndarray

    @property
    def component_counts(self) -> np.ndarray:
        """Number of components of each graph, shape ``(B,)``."""
        return np.array(
            [np.unique(row).size for row in self.labels], dtype=np.int64
        )

    def generations_run(self) -> np.ndarray:
        """Generations each graph executed: ``1 + iters * (3 log n + 8)``."""
        if self.n == 0:
            return np.zeros(self.batch_size, dtype=np.int64)
        return 1 + self.iterations_run * generations_per_iteration(self.n)


class BatchedGCA:
    """Run ``B`` same-size graphs as one stacked ``(B, n+1, n)`` field.

    Parameters
    ----------
    graphs:
        Non-empty sequence of graphs, all with the same node count.
    iterations:
        Outer-iteration override (default ``ceil(log2 n)``).
    early_exit:
        Retire graphs from the batch as soon as an iteration leaves their
        labels unchanged (default on -- labels are bit-identical either
        way, only the work shrinks).
    """

    def __init__(
        self,
        graphs: Sequence[GraphLike],
        iterations: Optional[int] = None,
        early_exit: bool = True,
    ):
        mats = [_as_matrix(g) for g in graphs]
        if not mats:
            raise ValueError("BatchedGCA needs at least one graph")
        n = mats[0].shape[0]
        for k, m in enumerate(mats):
            if m.shape[0] != n:
                raise ValueError(
                    f"graph {k} has n={m.shape[0]}, batch has n={n}; "
                    "use connected_components_batch for mixed sizes"
                )
        self.n = n
        self.batch_size = len(mats)
        self.iterations = outer_iterations(n) if iterations is None else iterations
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        self.early_exit = early_exit
        self._not_adjacent = np.stack(mats) != 1 if n else np.empty(
            (self.batch_size, 0, 0), dtype=bool
        )
        # the field only ever holds values 0..n(n+1); int32 halves the
        # memory traffic of the (memory-bound) whole-batch kernels
        self._dtype = (
            np.int32
            if n == 0 or infinity_for(n) <= np.iinfo(np.int32).max
            else np.int64
        )

    # ------------------------------------------------------------------
    def run(self) -> BatchedResult:
        n = self.n
        B = self.batch_size
        if n == 0:
            # A zero-node graph has no labels and needs no field at all.
            return BatchedResult(
                labels=np.empty((B, 0), dtype=np.int64),
                n=0,
                batch_size=B,
                iterations=self.iterations,
                iterations_run=np.zeros(B, dtype=np.int64),
                converged_at_iteration=np.full(B, -1, dtype=np.int64),
            )
        inf = infinity_for(n)
        subgens = reduction_subgenerations(n)
        jumps = jump_iterations(n)
        reduce_slices = [_stride_slices(n, s) for s in range(subgens)]

        out_labels = np.empty((B, n), dtype=np.int64)
        iterations_run = np.full(B, self.iterations, dtype=np.int64)
        converged_at = np.full(B, -1, dtype=np.int64)

        # generation 0 on the whole stacked field
        D = np.empty((B, n + 1, n), dtype=self._dtype)
        D[:, :, :] = np.arange(n + 1, dtype=self._dtype)[None, :, None]

        not_adjacent = self._not_adjacent
        index = np.arange(B)                     # original slot of each row
        prev = D[:, :n, 0].copy()
        # scratch, sliced down as the batch shrinks
        col = np.empty((B, n), dtype=self._dtype)
        m1 = np.empty((B, n, n), dtype=bool)
        m2 = np.empty((B, n, n), dtype=bool)

        for it in range(self.iterations):
            k = D.shape[0]
            _apply_iteration(
                D, not_adjacent, col[:k], m1[:k], m2[:k],
                n, inf, reduce_slices, jumps,
            )
            labels = D[:, :n, 0]
            if not self.early_exit:
                continue
            changed = np.any(labels != prev, axis=1)
            if changed.all():
                np.copyto(prev, labels)
                continue
            done = ~changed
            retired = index[done]
            out_labels[retired] = labels[done]
            iterations_run[retired] = it + 1
            converged_at[retired] = it
            # compact the survivors into a contiguous prefix -- this runs
            # once per retirement event, not per generation, and shrinks
            # every later generation's working set
            D = np.ascontiguousarray(D[changed])  # repro-check: allow[DB101]
            not_adjacent = np.ascontiguousarray(not_adjacent[changed])  # repro-check: allow[DB101]
            index = index[changed]
            prev = np.ascontiguousarray(labels[changed])  # repro-check: allow[DB101]
            if index.size == 0:
                break

        if index.size:
            out_labels[index] = D[:, :n, 0]

        return BatchedResult(
            labels=out_labels,
            n=n,
            batch_size=B,
            iterations=self.iterations,
            iterations_run=iterations_run,
            converged_at_iteration=converged_at,
        )


def _stride_slices(n: int, sub_generation: int):
    """``(write, read)`` column slices of one reduction sub-generation.

    The write columns are the even multiples of ``stride`` whose partner
    ``col + stride`` still exists; both sets are arithmetic progressions,
    so plain slices express them without fancy-index copies.
    """
    stride = 1 << sub_generation
    return slice(0, n - stride, 2 * stride), slice(stride, n, 2 * stride)


def _apply_iteration(
    D: np.ndarray,
    not_adjacent: np.ndarray,
    col: np.ndarray,
    m1: np.ndarray,
    m2: np.ndarray,
    n: int,
    inf: int,
    reduce_slices: Sequence[tuple],
    jumps: int,
) -> None:
    """One outer iteration (generations 1..11) on the stacked field.

    All arrays carry a leading batch axis ``k``; every generation is one
    whole-batch NumPy dispatch.  ``col``/``m1``/``m2`` are scratch buffers
    of shapes ``(k, n)``, ``(k, n, n)``, ``(k, n, n)``.
    """
    Dsq = D[:, :n, :]
    DN = D[:, n, :]
    j_col = np.arange(n, dtype=D.dtype).reshape(1, n, 1)

    # gen 1: broadcast the label column over the whole field
    np.copyto(col, Dsq[:, :, 0])
    D[:, :, :] = col[:, None, :]
    # gen 2: mask non-neighbors with infinity
    np.equal(Dsq, DN[:, :, None], out=m1)
    np.logical_or(m1, not_adjacent, out=m1)
    np.copyto(Dsq, inf, where=m1)
    # gen 3: log-depth row minimum reduction
    for write, read in reduce_slices:
        np.minimum(Dsq[:, :, write], Dsq[:, :, read], out=Dsq[:, :, write])
    # gen 4: fall back to the archived own label where the row was empty
    np.copyto(col, Dsq[:, :, 0])
    Dsq[:, :, 0] = np.where(col == inf, DN, col)
    # gen 5: rebroadcast (keeping the archive row)
    np.copyto(col, Dsq[:, :, 0])
    Dsq[:, :, :] = col[:, None, :]
    # gen 6: mask non-members with infinity
    np.not_equal(DN[:, None, :], j_col, out=m1)
    np.equal(Dsq, j_col, out=m2)
    np.logical_or(m1, m2, out=m1)
    np.copyto(Dsq, inf, where=m1)
    # gen 7: second minimum reduction
    for write, read in reduce_slices:
        np.minimum(Dsq[:, :, write], Dsq[:, :, read], out=Dsq[:, :, write])
    # gen 8: second fallback
    np.copyto(col, Dsq[:, :, 0])
    Dsq[:, :, 0] = np.where(col == inf, DN, col)
    # gen 9: distribute column-wise and archive into the bottom row
    np.copyto(col, Dsq[:, :, 0])
    Dsq[:, :, :] = col[:, :, None]
    DN[:, :] = col
    # gen 10: pointer jumping, log-depth
    for _ in range(jumps):
        np.copyto(col, Dsq[:, :, 0])
        Dsq[:, :, 0] = np.take_along_axis(col, col, axis=1)
    # gen 11: resolve mutual supernode pairs
    np.copyto(col, Dsq[:, :, 0])
    paired = np.take_along_axis(D[:, :, 1], col, axis=1)
    Dsq[:, :, 0] = np.minimum(col, paired)


def connected_components_batch(
    graphs: Sequence[GraphLike],
    iterations: Optional[int] = None,
    early_exit: bool = True,
) -> List[np.ndarray]:
    """Connected components of many graphs, batched by size.

    Buckets ``graphs`` by node count, runs one :class:`BatchedGCA` per
    bucket and returns the canonical label vectors in input order.
    """
    mats = [_as_matrix(g) for g in graphs]
    buckets: Dict[int, List[int]] = {}
    for pos, m in enumerate(mats):
        buckets.setdefault(m.shape[0], []).append(pos)
    out: List[Optional[np.ndarray]] = [None] * len(mats)
    for _, positions in sorted(buckets.items()):
        result = BatchedGCA(
            [mats[p] for p in positions],
            iterations=iterations,
            early_exit=early_exit,
        ).run()
        for row, pos in enumerate(positions):
            out[pos] = result.labels[row]
    return out  # type: ignore[return-value]
